// Dimension scaling: the paper's contribution is extending Software-Based
// routing beyond 2-D. This example runs the same workload on k-ary n-cubes
// for n = 2..4 (with comparable node counts) and shows that fault tolerance
// and deadlock freedom hold in every dimensionality.
#include <cstdio>

#include "src/harness/sweep.hpp"
#include "src/harness/table.hpp"

using namespace swft;

int main() {
  struct Shape {
    int k, n, nf;
  };
  // ~64..256 nodes per topology, fault count scaled with network size.
  const Shape shapes[] = {{8, 2, 4}, {4, 3, 4}, {6, 3, 8}, {4, 4, 8}, {3, 5, 8}};

  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const Shape& s : shapes) {
      SweepPoint p;
      char label[64];
      std::snprintf(label, sizeof label, "%s %d-ary %d-cube nf=%d",
                    mode == RoutingMode::Adaptive ? "adp" : "det", s.k, s.n, s.nf);
      p.label = label;
      p.cfg.radix = s.k;
      p.cfg.dims = s.n;
      p.cfg.vcs = 6;
      p.cfg.messageLength = 16;
      p.cfg.injectionRate = 0.004;
      p.cfg.routing = mode;
      p.cfg.faults.randomNodes = s.nf;
      p.cfg.warmupMessages = 400;
      p.cfg.measuredMessages = 3000;
      p.cfg.seed = 23;
      points.push_back(std::move(p));
    }
  }

  std::printf("SW-Based-nD across dimensionality (M=16, V=6, lambda=0.004)\n\n");
  const auto rows = runSweep(points);
  std::printf("%s\n",
              formatTable(rows, {"latency", "hops", "queued", "escalations"}).c_str());

  for (const auto& row : rows) {
    if (row.result.deadlockSuspected || !row.result.completed) {
      std::printf("FAILURE at %s\n", row.point.label.c_str());
      return 1;
    }
  }
  std::printf("All dimensionalities delivered every measured message; the\n"
              "dimension-pair extension (paper Fig. 2) handled every fault.\n");
  return 0;
}
