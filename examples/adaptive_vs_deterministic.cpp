// Head-to-head: deterministic vs adaptive Software-Based routing as load
// rises, fault-free and with 5 random faults — a miniature of the paper's
// central comparison (Figs. 3, 5, 6, 7) on a single page of output.
#include <cstdio>

#include "src/harness/sweep.hpp"
#include "src/harness/table.hpp"

using namespace swft;

int main() {
  std::vector<SweepPoint> points;
  for (const int nf : {0, 5}) {
    for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
      for (const double rate : rateGrid(0.012, 4)) {
        SweepPoint p;
        char label[64];
        std::snprintf(label, sizeof label, "nf%d %s l=%.3f", nf,
                      mode == RoutingMode::Adaptive ? "adp" : "det", rate);
        p.label = label;
        p.cfg.radix = 8;
        p.cfg.dims = 2;
        p.cfg.vcs = 6;
        p.cfg.messageLength = 32;
        p.cfg.injectionRate = rate;
        p.cfg.routing = mode;
        p.cfg.faults.randomNodes = nf;
        p.cfg.warmupMessages = 400;
        p.cfg.measuredMessages = 3000;
        p.cfg.maxCycles = 400'000;
        p.cfg.seed = 31;
        points.push_back(std::move(p));
      }
    }
  }

  std::printf("Deterministic vs adaptive SW-Based routing, 8-ary 2-cube, M=32, V=6\n\n");
  const auto rows = runSweep(points);
  std::printf("%s\n", formatTable(rows, {"latency", "throughput", "queued"}).c_str());
  std::printf("Expected shape (paper): adaptive saturates later, and under faults\n"
              "it queues far fewer messages because it only absorbs when ALL\n"
              "profitable channels are faulty.\n");
  return 0;
}
