// Quickstart: simulate an 8-ary 2-cube with 3 random node faults under
// deterministic and adaptive Software-Based routing, and print the headline
// statistics. Mirrors the paper's Fig. 3 setup at a single traffic rate.
#include <cstdio>

#include "src/sim/network.hpp"

int main() {
  using namespace swft;

  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    SimConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.vcs = 4;
    cfg.messageLength = 32;
    cfg.injectionRate = 0.004;  // messages/node/cycle
    cfg.routing = mode;
    cfg.faults.randomNodes = 3;
    cfg.warmupMessages = 500;
    cfg.measuredMessages = 3000;
    cfg.seed = 42;

    Network net(cfg);
    std::printf("--- %s routing, 8-ary 2-cube, V=%d, M=%d, nf=%d, lambda=%.4f ---\n",
                cfg.routingName().c_str(), cfg.vcs, cfg.messageLength,
                cfg.faults.randomNodes, cfg.injectionRate);
    const SimResult r = net.run();
    std::printf("  cycles           %llu\n", static_cast<unsigned long long>(r.cycles));
    std::printf("  delivered        %llu (measured %llu)\n",
                static_cast<unsigned long long>(r.deliveredTotal),
                static_cast<unsigned long long>(r.deliveredMeasured));
    std::printf("  mean latency     %.1f cycles (max %.0f)\n", r.meanLatency, r.maxLatency);
    std::printf("  mean hops        %.2f\n", r.meanHops);
    std::printf("  throughput       %.5f msgs/node/cycle (offered %.5f)\n", r.throughput,
                r.offeredLoad);
    std::printf("  messages queued  %llu (distinct absorbed %llu)\n",
                static_cast<unsigned long long>(r.messagesQueued),
                static_cast<unsigned long long>(r.absorbedMessages));
    std::printf("  reversals/detours/escalations  %llu/%llu/%llu\n",
                static_cast<unsigned long long>(r.reversals),
                static_cast<unsigned long long>(r.detours),
                static_cast<unsigned long long>(r.escalations));
    std::printf("  completed=%d saturated=%d deadlock=%d\n\n", r.completed, r.saturated,
                r.deadlockSuspected);
    if (r.deadlockSuspected || !r.completed) return 1;
  }
  return 0;
}
