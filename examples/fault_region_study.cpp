// Fault-region study: place each of the paper's coalesced fault-region
// shapes (Fig. 1 / Fig. 5) in an 8-ary 2-cube and compare how hard it is to
// route around them: latency, absorption counts, reversal/detour mix.
//
// Usage: fault_region_study [lambda]   (default 0.006 messages/node/cycle)
#include <cstdio>
#include <cstdlib>

#include "src/harness/heatmap.hpp"
#include "src/harness/sweep.hpp"
#include "src/harness/table.hpp"

using namespace swft;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 0.006;
  const TorusTopology topo(8, 2);

  struct Entry {
    const char* name;
    RegionSpec spec;
  };
  const Entry entries[] = {
      {"rect-20 (convex)", fig5Rect20(topo)}, {"plus-16 (concave)", fig5Plus16(topo)},
      {"T-10   (concave)", fig5T10(topo)},    {"L-9    (concave)", fig5L9(topo)},
      {"U-8    (concave)", fig5U8(topo)},
  };

  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const Entry& e : entries) {
      SweepPoint p;
      p.label = std::string(mode == RoutingMode::Adaptive ? "adp " : "det ") + e.name;
      p.cfg.radix = 8;
      p.cfg.dims = 2;
      p.cfg.vcs = 10;
      p.cfg.messageLength = 32;
      p.cfg.injectionRate = rate;
      p.cfg.routing = mode;
      p.cfg.faults.regions.push_back(e.spec);
      p.cfg.warmupMessages = 500;
      p.cfg.measuredMessages = 4000;
      p.cfg.seed = 11;
      points.push_back(std::move(p));
    }
  }

  std::printf("Fault-region study: 8-ary 2-cube, M=32, V=10, lambda=%.4f\n\n", rate);
  const auto rows = runSweep(points);
  std::printf("%s\n", formatTable(rows, {"latency", "queued", "absorbed", "reversals",
                                         "detours", "hops"})
                          .c_str());
  std::printf("Reading guide: concave shapes (U/T/plus) absorb the same message\n"
              "repeatedly while it feels its way around the pocket, so 'queued'\n"
              "exceeds 'absorbed' by more than for the convex block.\n\n");

  // Where does the software load land? Re-run the U pocket under
  // deterministic routing and draw the absorption heat map ('#' = faulty,
  // digits = log2 absorption intensity at that node's messaging layer).
  {
    SimConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.vcs = 10;
    cfg.messageLength = 32;
    cfg.injectionRate = rate;
    cfg.faults.regions.push_back(fig5U8(topo));
    cfg.warmupMessages = 500;
    cfg.measuredMessages = 4000;
    cfg.seed = 11;
    Network net(cfg);
    net.run();
    std::printf("U-region absorption heat map (deterministic):\n%s",
                renderAbsorptionHeatmap(net).c_str());
  }

  for (const auto& row : rows) {
    if (row.result.deadlockSuspected || !row.result.completed) return 1;
  }
  return 0;
}
