// swft_bench — one front-end for every registered experiment (the paper's
// figure sweeps, the ablations, and the beyond-paper workloads).
//
//   swft_bench --list
//   swft_bench --run fig6
//   swft_bench --run all --threads 8 --format json --out results/
//   swft_bench --run fig3 --shard 2/4       # quarter of the grid, merge-safe
//
// Sharding partitions a grid by a stable label hash, so N machines each
// running `--shard i/N` produce disjoint artifacts whose union is exactly
// the unsharded run (concatenate, or stable-sort by label to compare).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/harness/experiment_registry.hpp"
#include "src/harness/table.hpp"
#include "src/traffic/patterns.hpp"

namespace {

void printUsage() {
  std::cout
      << "usage: swft_bench --list\n"
         "       swft_bench --run <name[,name...]|all> [--run <name>...] [options]\n"
         "       swft_bench --cache-stats [--cache-dir DIR]\n"
         "options:\n"
         "  --shard i/N        run only the points whose stable label hash lands in\n"
         "                     residue class i (0-based); outputs are merge-safe\n"
         "  --threads T        sweep thread-pool size (default: hardware concurrency)\n"
         "  --sim-threads N    run every point on the sparse-mt engine with N domain\n"
         "                     workers (bit-identical results; the sweep pool is derated\n"
         "                     so pool x N stays within hardware concurrency)\n"
         "  --phase-timers     report each point's per-phase wall-clock breakdown on\n"
         "                     stderr (cards/linkq/gen/inj/walk/commit/barrier, one line\n"
         "                     per engine thread); cache hits skip simulation and print\n"
         "                     nothing — combine with --no-cache to time every point\n"
         "  --format csv|json  artifact format (default csv)\n"
         "  --out DIR          artifact directory (default: $SWFT_RESULTS_DIR or results/)\n"
         "  --cache            consult the content-addressed result cache (default on):\n"
         "                     cached points short-circuit, misses simulate and store\n"
         "  --no-cache         simulate every point, touch no cache state\n"
         "  --cache-dir DIR    cache store directory (default: $SWFT_CACHE_DIR or\n"
         "                     <results>/cache); implies --cache\n"
         "  --cache-stats      print aggregate hit/miss/insert counts and the on-disk\n"
         "                     store size after the runs (usable without --run)\n"
         "  --quiet            suppress per-point progress lines\n"
         "environment:\n"
         "  SWFT_SCALE=paper   full paper-scale runs (default: reduced, ~1/10 cost)\n";
}

void printList() {
  const auto specs = swft::ExperimentRegistry::instance().all();
  std::cout << specs.size() << " registered experiments:\n";
  std::size_t width = 4;
  for (const auto* spec : specs) width = std::max(width, spec->name.size());
  for (const auto* spec : specs) {
    std::cout << "  " << spec->name << std::string(width - spec->name.size() + 2, ' ')
              << "(" << spec->build().size() << " points)  " << spec->description << "\n";
  }
  std::cout << "traffic patterns:";
  for (const swft::TrafficPattern p : swft::kAllTrafficPatterns) {
    std::cout << " " << swft::trafficPatternName(p);
  }
  std::cout << "\n";
}

}  // namespace

/// Split a comma-separated --run value ("fig3,fig4,fig7") into names; empty
/// segments (",," or trailing commas) are rejected by the registry lookup
/// below, which already handles unknown names.
void appendNames(std::vector<std::string>& names, const std::string& value) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    names.push_back(value.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

int main(int argc, char** argv) {
  bool list = false;
  bool cacheStats = false;
  std::vector<std::string> names;
  swft::RunOptions opt;
  opt.useCache = true;  // the production default: re-runs pay only for misses

  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    try {
      if (std::strcmp(arg, "--list") == 0) {
        list = true;
      } else if (std::strcmp(arg, "--run") == 0) {
        appendNames(names, needValue(i));
      } else if (std::strcmp(arg, "--shard") == 0) {
        opt.shard = swft::parseShard(needValue(i));
      } else if (std::strcmp(arg, "--threads") == 0) {
        opt.threads = std::stoi(needValue(i));
      } else if (std::strcmp(arg, "--sim-threads") == 0) {
        opt.simThreads = std::stoi(needValue(i));
        if (opt.simThreads < 1) {
          std::cerr << "error: --sim-threads needs a positive integer\n";
          return 2;
        }
      } else if (std::strcmp(arg, "--phase-timers") == 0) {
        opt.phaseTimers = true;
      } else if (std::strcmp(arg, "--format") == 0) {
        const std::string fmt = needValue(i);
        if (fmt == "csv") {
          opt.format = swft::OutputFormat::Csv;
        } else if (fmt == "json") {
          opt.format = swft::OutputFormat::Json;
        } else {
          std::cerr << "error: --format must be csv|json, got '" << fmt << "'\n";
          return 2;
        }
      } else if (std::strcmp(arg, "--out") == 0) {
        opt.outDir = needValue(i);
      } else if (std::strcmp(arg, "--cache") == 0) {
        opt.useCache = true;
      } else if (std::strcmp(arg, "--no-cache") == 0) {
        opt.useCache = false;
      } else if (std::strcmp(arg, "--cache-dir") == 0) {
        opt.cacheDir = needValue(i);
        opt.useCache = true;
      } else if (std::strcmp(arg, "--cache-stats") == 0) {
        cacheStats = true;
      } else if (std::strcmp(arg, "--quiet") == 0) {
        opt.progress = false;
      } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        printUsage();
        return 0;
      } else {
        std::cerr << "error: unknown argument '" << arg << "'\n\n";
        printUsage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  if (list) {
    printList();
    return 0;
  }
  if (names.empty() && cacheStats) {
    // Inspect-only mode: report the store without running anything.
    const std::string dir = opt.cacheDir.empty() ? swft::defaultCacheDir() : opt.cacheDir;
    const auto info = swft::ResultCache::scanDir(dir);
    std::cout << "cache stats: hits=0 misses=0 inserts=0 entries=" << info.entries
              << " bytes=" << info.bytes << " dir=" << dir << "\n";
    return 0;
  }
  if (names.empty()) {
    printUsage();
    return 2;
  }

  auto& registry = swft::ExperimentRegistry::instance();
  std::vector<const swft::ExperimentSpec*> toRun;
  auto addOnce = [&toRun](const swft::ExperimentSpec* spec) {
    // Dedup repeated --run names (and `--run x --run all`): running a spec
    // twice would redo the sweep and silently overwrite its artifact.
    if (std::find(toRun.begin(), toRun.end(), spec) == toRun.end()) toRun.push_back(spec);
  };
  for (const std::string& name : names) {
    if (name == "all") {
      for (const auto* spec : registry.all()) addOnce(spec);
      continue;
    }
    const swft::ExperimentSpec* spec = registry.find(name);
    if (spec == nullptr) {
      std::cerr << "error: unknown experiment '" << name << "' (see --list)\n";
      return 2;
    }
    addOnce(spec);
  }

  int failures = 0;
  swft::CacheStats totals;
  std::string cacheDirUsed;
  for (const auto* spec : toRun) {
    try {
      const swft::ExperimentRun run = swft::runExperiment(*spec, opt, std::cout);
      if (run.cacheUsed) {
        totals.hits += run.cache.hits;
        totals.misses += run.cache.misses;
        totals.inserts += run.cache.inserts;
        cacheDirUsed = run.cacheDir;
      }
      for (const swft::SweepRow& row : run.rows) {
        if (row.result.deadlockSuspected) {
          std::cerr << "warning: deadlock watchdog fired at " << spec->name << "/"
                    << row.point.label << "\n";
          ++failures;
        }
      }
      std::cout << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: experiment '" << spec->name << "' failed: " << e.what() << "\n";
      ++failures;
    }
  }
  if (cacheStats) {
    const std::string dir = !cacheDirUsed.empty()
                                ? cacheDirUsed
                                : (opt.cacheDir.empty() ? swft::defaultCacheDir()
                                                        : opt.cacheDir);
    const auto info = swft::ResultCache::scanDir(dir);
    std::cout << "cache stats: hits=" << totals.hits << " misses=" << totals.misses
              << " inserts=" << totals.inserts << " entries=" << info.entries
              << " bytes=" << info.bytes << " dir=" << dir << "\n";
  }
  return failures == 0 ? 0 : 1;
}
