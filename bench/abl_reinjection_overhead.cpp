// Ablation A2: software re-injection overhead Delta (paper assumption (i)).
// The paper sets Delta = 0 ("negligible compared to the channel cycle
// time"); this bench quantifies how much latency a real messaging-layer
// delay would add under faults, validating that assumption's impact.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/harness/sweep.hpp"

using namespace swft;

namespace {

std::vector<SweepPoint> buildAblation() {
  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const int delta : {0, 8, 16, 32, 64, 128}) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 6;
      cfg.messageLength = 32;
      cfg.injectionRate = 0.006;
      cfg.routing = mode;
      cfg.reinjectDelay = delta;
      cfg.faults.randomNodes = 5;
      cfg.seed = 7000;
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "%s/delta%d",
                    mode == RoutingMode::Adaptive ? "adp" : "det", delta);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  auto store = bench::registerSweep("abl_reinjection_overhead", buildAblation());
  return bench::benchMain(argc, argv, "abl_reinjection_overhead", store,
                          {"latency", "queued", "throughput"},
                          "ablation: software re-injection overhead Delta");
}
