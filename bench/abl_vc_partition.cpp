// Ablation A1: size of the Duato escape pool (2 vs 4 escape VCs of V=6/10)
// under random faults. More escape bandwidth helps downgraded (deterministic)
// messages after absorption, at the cost of adaptive flexibility.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/harness/sweep.hpp"

using namespace swft;

namespace {

std::vector<SweepPoint> buildAblation() {
  std::vector<SweepPoint> points;
  for (const int vcs : {6, 10}) {
    for (const int escape : {2, 4}) {
      for (const int nf : {0, 5}) {
        for (const double rate : rateGrid(0.016, 4)) {
          SweepPoint p;
          SimConfig& cfg = p.cfg;
          cfg.radix = 8;
          cfg.dims = 2;
          cfg.vcs = vcs;
          cfg.escapeVcs = escape;
          cfg.messageLength = 32;
          cfg.injectionRate = rate;
          cfg.routing = RoutingMode::Adaptive;
          cfg.faults.randomNodes = nf;
          cfg.seed = 6000 + static_cast<std::uint64_t>(nf);
          bench::applyEnvScale(cfg);
          cfg.maxCycles = 300'000;
          char label[64];
          std::snprintf(label, sizeof label, "V%d/esc%d/nf%d/l%.4f", vcs, escape, nf,
                        rate);
          p.label = label;
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  auto store = bench::registerSweep("abl_vc_partition", buildAblation());
  return bench::benchMain(argc, argv, "abl_vc_partition", store,
                          {"latency", "throughput", "queued"},
                          "ablation: Duato escape-pool size under faults");
}
