// Ablation A3: per-VC flit buffer depth. The paper lists buffer length among
// the simulator parameters without reporting a sweep; this bench fills that
// gap and shows the latency/saturation sensitivity to buffering.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/harness/sweep.hpp"

using namespace swft;

namespace {

std::vector<SweepPoint> buildAblation() {
  std::vector<SweepPoint> points;
  for (const int depth : {1, 2, 4, 8, 16}) {
    for (const double rate : rateGrid(0.014, 4)) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 4;
      cfg.bufferDepth = depth;
      cfg.messageLength = 32;
      cfg.injectionRate = rate;
      cfg.routing = RoutingMode::Deterministic;
      cfg.faults.randomNodes = 3;
      cfg.seed = 8000;
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "B%d/l%.4f", depth, rate);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  auto store = bench::registerSweep("abl_buffer_depth", buildAblation());
  return bench::benchMain(argc, argv, "abl_buffer_depth", store,
                          {"latency", "throughput", "saturated"},
                          "ablation: per-VC flit buffer depth");
}
