// Shared scaffolding for the figure-reproduction benches.
//
// Each bench binary registers one google-benchmark entry per sweep point
// (Iterations(1): a simulation is a fixed experiment, not a microbenchmark),
// exports the headline statistics as benchmark counters, and after the run
// prints a paper-style table and writes a CSV into the results directory.
//
// Scale: SWFT_SCALE=paper reproduces the paper's 100k-message runs; the
// default reduced scale preserves curve shapes at ~1/10 the cost.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <mutex>
#include <vector>

#include "src/harness/table.hpp"
#include "src/sim/network.hpp"

namespace swft::bench {

/// Collects finished rows across benchmark invocations (gbench may shuffle
/// or repeat; we keep the registration order via fixed indices).
class RowStore {
 public:
  explicit RowStore(std::size_t n) : rows_(n), done_(n, false) {}

  void put(std::size_t i, SweepRow row) {
    const std::lock_guard<std::mutex> lock(mu_);
    rows_[i] = std::move(row);
    done_[i] = true;
  }

  [[nodiscard]] std::vector<SweepRow> finished() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<SweepRow> out;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (done_[i]) out.push_back(rows_[i]);
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<SweepRow> rows_;
  std::vector<bool> done_;
};

inline void applyEnvScale(SimConfig& cfg) { applyScale(cfg, scaleFromEnv()); }

/// Register every sweep point as a google-benchmark entry named
/// `<figure>/<label>` and wire the result counters.
inline std::shared_ptr<RowStore> registerSweep(const std::string& figure,
                                               std::vector<SweepPoint> points) {
  auto store = std::make_shared<RowStore>(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint point = points[i];
    benchmark::RegisterBenchmark(
        (figure + "/" + point.label).c_str(),
        [store, point, i](benchmark::State& state) {
          SimResult result;
          for (auto _ : state) {
            result = runSimulation(point.cfg);
          }
          state.counters["latency"] = result.meanLatency;
          state.counters["throughput"] = result.throughput;
          state.counters["queued"] = static_cast<double>(result.messagesQueued);
          state.counters["hops"] = result.meanHops;
          state.counters["saturated"] = result.saturated ? 1 : 0;
          if (result.deadlockSuspected) {
            state.SkipWithError("deadlock watchdog fired");
          }
          SweepRow row;
          row.point = point;
          row.result = result;
          store->put(i, std::move(row));
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return store;
}

/// Run gbench, then emit the paper-style table and the CSV artifact.
inline int benchMain(int argc, char** argv, const std::string& figure,
                     const std::shared_ptr<RowStore>& store,
                     const std::vector<std::string>& columns,
                     const std::string& caption) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto rows = store->finished();
  std::cout << "\n=== " << figure << ": " << caption << " ===\n";
  std::cout << formatTable(rows, columns);
  const std::string csvPath = resultsDir() + "/" + figure + ".csv";
  toCsv(rows).writeFile(csvPath);
  std::cout << "wrote " << csvPath << " (" << rows.size() << " rows)\n";
  return 0;
}

/// Shorthand for a fixed-duration run (Fig. 6/7 protocol): the run length is
/// bounded by cycles, not by a delivered-message target.
inline void makeFixedDuration(SimConfig& cfg, std::uint64_t cycles) {
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.maxCycles = cycles;
}

}  // namespace swft::bench
