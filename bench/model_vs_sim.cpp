// Model-vs-simulation comparison (extension): evaluates the analytic
// latency model of src/model against the flit-level simulator across the
// Fig. 3 load grid, fault-free and with 5 random faults.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/harness/sweep.hpp"
#include "src/model/analytic.hpp"

using namespace swft;

namespace {

std::vector<SweepPoint> buildGrid() {
  std::vector<SweepPoint> points;
  for (const int nf : {0, 5}) {
    for (const double rate : rateGrid(0.010, 5)) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 4;
      cfg.messageLength = 32;
      cfg.injectionRate = rate;
      cfg.faults.randomNodes = nf;
      cfg.seed = 9000 + static_cast<std::uint64_t>(nf);
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "nf%d/l%.4f", nf, rate);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const auto points = buildGrid();
  auto store = bench::registerSweep("model_vs_sim", points);
  const int rc = bench::benchMain(argc, argv, "model_vs_sim", store, {"latency", "hops"},
                                  "flit-level simulation vs analytic model");
  // Append the model side of the comparison.
  std::printf("\nanalytic model:\n%-18s %12s %12s %12s\n", "point", "model_lat",
              "abs_prob", "sat_est");
  for (const SweepPoint& p : points) {
    const ModelResult m = analyticLatency(p.cfg);
    std::printf("%-18s %12.1f %12.3f %12.4f%s\n", p.label.c_str(), m.meanLatency,
                m.absorbProbability, m.saturationRate, m.saturated ? "  [saturated]" : "");
  }
  return rc;
}
