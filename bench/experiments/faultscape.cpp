// faultscape (beyond-paper workload): fault-count × traffic-pattern
// landscape on an 8-ary 2-cube. The paper reports uniform traffic over a
// handful of fault shapes; this experiment crosses every traffic pattern
// with a growing random-fault population and renders the result as
// heatmaps — a latency matrix over the (nf, pattern) grid, plus the ASCII
// fault map and software-absorption heatmap (src/harness/heatmap) for the
// heaviest fault population.
#include <cstdio>

#include <sstream>

#include "bench/experiments/experiment_common.hpp"
#include "src/harness/heatmap.hpp"

namespace swft {
namespace {

constexpr int kFaultGrid[] = {0, 4, 8, 12, 16};

std::vector<SweepPoint> buildFaultscape() {
  std::vector<SweepPoint> points;
  for (const int nf : kFaultGrid) {
    for (const TrafficPattern pattern : kAllTrafficPatterns) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 6;
      cfg.messageLength = 32;
      cfg.injectionRate = 0.006;
      cfg.pattern = pattern;
      cfg.routing = RoutingMode::Adaptive;
      cfg.faults.randomNodes = nf;
      cfg.seed = 12000 + static_cast<std::uint64_t>(nf);  // same faults across patterns
      bench::applyEnvScale(cfg);
      cfg.maxCycles = scaleFromEnv() == ScalePreset::Paper ? 4'000'000 : 150'000;
      char label[64];
      std::snprintf(label, sizeof label, "nf%02d/%s", nf,
                    std::string(trafficPatternName(pattern)).c_str());
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

// Latency matrix over the grid plus the spatial heatmaps for the heaviest
// fault population (re-simulated once to recover per-node absorption counts,
// which SimResult deliberately does not carry).
std::string faultscapeEpilogue(const std::vector<SweepRow>& rows) {
  std::ostringstream os;
  os << "\nmean latency heatmap (rows: faults, cols: traffic):\n";
  os << "      ";
  for (const TrafficPattern pattern : kAllTrafficPatterns) {
    char cell[16];
    std::snprintf(cell, sizeof cell, "%10s", std::string(trafficPatternName(pattern)).c_str());
    os << cell;
  }
  os << '\n';
  for (const int nf : kFaultGrid) {
    char head[16];
    std::snprintf(head, sizeof head, "nf%02d  ", nf);
    os << head;
    for (const TrafficPattern pattern : kAllTrafficPatterns) {
      char want[64];
      std::snprintf(want, sizeof want, "nf%02d/%s", nf,
                    std::string(trafficPatternName(pattern)).c_str());
      double latency = -1.0;
      bool saturated = false;
      for (const SweepRow& row : rows) {
        if (row.point.label == want) {
          latency = row.result.meanLatency;
          saturated = row.result.saturated;
          break;
        }
      }
      char cell[16];
      if (latency < 0.0) {
        std::snprintf(cell, sizeof cell, "%10s", "-");  // other shard
      } else {
        std::snprintf(cell, sizeof cell, "%9.1f%c", latency, saturated ? '*' : ' ');
      }
      os << cell;
    }
    os << '\n';
  }
  os << "(* = saturated)\n";

  // Spatial view of the heaviest fault population under uniform traffic.
  const SweepRow* heaviest = nullptr;
  char want[64];
  std::snprintf(want, sizeof want, "nf%02d/%s", kFaultGrid[std::size(kFaultGrid) - 1],
                std::string(trafficPatternName(TrafficPattern::Uniform)).c_str());
  for (const SweepRow& row : rows) {
    if (row.point.label == want) heaviest = &row;
  }
  if (heaviest != nullptr) {
    Network net(heaviest->point.cfg);
    (void)net.run();
    os << "\nfault map (" << heaviest->point.label << "):\n"
       << renderFaultMap(net.topology(), net.faults());
    os << "software-absorption heatmap:\n" << renderAbsorptionHeatmap(net);
  }
  return os.str();
}

const ExperimentRegistrar reg{{
    .name = "faultscape",
    .description = "fault-count x traffic-pattern heatmap, 8-ary 2-cube",
    .build = buildFaultscape,
    .columns = {"latency", "throughput", "queued", "absorbed"},
    .epilogue = faultscapeEpilogue,
}};

}  // namespace
}  // namespace swft
