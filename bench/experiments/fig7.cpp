// Fig. 7 reproduction: number of messages queued (software absorptions) vs
// number of random node faults in an 8-ary 3-cube, M=32, V=10, generation
// rates "70" and "100" — interpreted as messages/node per 10,000 cycles
// (lambda = 0.007 / 0.010; see EXPERIMENTS.md, E5).
//
// Protocol: fixed-duration runs — at a higher generation rate more messages
// enter the network over the same interval, so more encounter the static
// faults; a message contributes once per absorption, as in the paper.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildFig7() {
  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const double rate : {0.0070, 0.0100}) {
      for (int nf = 0; nf <= 12; ++nf) {
        SweepPoint p;
        SimConfig& cfg = p.cfg;
        cfg.radix = 8;
        cfg.dims = 3;
        cfg.vcs = 10;
        cfg.messageLength = 32;
        cfg.injectionRate = rate;
        cfg.routing = mode;
        cfg.faults.randomNodes = nf;
        cfg.seed = 5000 + static_cast<std::uint64_t>(nf);
        bench::makeFixedDuration(cfg,
                                 scaleFromEnv() == ScalePreset::Paper ? 200'000 : 30'000);
        char label[64];
        std::snprintf(label, sizeof label, "%s/rate%d/nf%d",
                      mode == RoutingMode::Adaptive ? "adp" : "det",
                      static_cast<int>(rate * 10000), nf);
        p.label = label;
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

const ExperimentRegistrar reg{{
    .name = "fig7",
    .description = "messages queued vs number of random faulty nodes, 8-ary 3-cube "
                   "(paper Fig. 7)",
    .build = buildFig7,
    .columns = {"queued", "absorbed", "reversals", "detours", "throughput"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
