// Fig. 6 reproduction: mean network throughput vs number of random node
// faults in a 16-ary 2-cube, M=32, V=6, deterministic and adaptive routing.
//
// Protocol: fixed-duration runs at a near-saturation offered load; the
// reported metric is the accepted throughput (messages/node/cycle delivered
// over the measurement window), matching the paper's definition of
// throughput as the delivered fraction of the traffic pattern.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildFig6() {
  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (int nf = 0; nf <= 11; ++nf) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 16;
      cfg.dims = 2;
      cfg.vcs = 6;
      cfg.messageLength = 32;
      cfg.injectionRate = 0.012;  // just above the V=6 saturation point
      cfg.routing = mode;
      cfg.faults.randomNodes = nf;
      cfg.seed = 4000 + static_cast<std::uint64_t>(nf);
      bench::makeFixedDuration(cfg,
                               scaleFromEnv() == ScalePreset::Paper ? 400'000 : 60'000);
      char label[64];
      std::snprintf(label, sizeof label, "%s/nf%d",
                    mode == RoutingMode::Adaptive ? "adp" : "det", nf);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

const ExperimentRegistrar reg{{
    .name = "fig6",
    .description = "throughput vs number of random faulty nodes, 16-ary 2-cube "
                   "(paper Fig. 6)",
    .build = buildFig6,
    .columns = {"throughput", "queued", "latency"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
