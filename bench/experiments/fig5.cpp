// Fig. 5 reproduction: mean message latency vs traffic rate in an 8-ary
// 2-cube with the paper's five coalesced fault regions: rect (nf=20),
// T (nf=10), plus (nf=16), L (nf=9), U (nf=8); M=32, V=10, deterministic
// and adaptive routing.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildFig5() {
  const TorusTopology topo(8, 2);
  struct Entry {
    const char* name;
    RegionSpec spec;
  };
  const Entry regions[] = {
      {"rect20", fig5Rect20(topo)}, {"T10", fig5T10(topo)}, {"plus16", fig5Plus16(topo)},
      {"L9", fig5L9(topo)},         {"U8", fig5U8(topo)},
  };

  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const Entry& region : regions) {
      for (const double rate : rateGrid(0.020, 6)) {
        SweepPoint p;
        SimConfig& cfg = p.cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.vcs = 10;
        cfg.messageLength = 32;
        cfg.injectionRate = rate;
        cfg.routing = mode;
        cfg.faults.regions.push_back(region.spec);
        cfg.seed = 3000;
        bench::applyEnvScale(cfg);
        cfg.maxCycles = scaleFromEnv() == ScalePreset::Paper ? 8'000'000 : 150'000;
        char label[96];
        std::snprintf(label, sizeof label, "%s/%s/l%.4f",
                      mode == RoutingMode::Adaptive ? "adp" : "det", region.name, rate);
        p.label = label;
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

const ExperimentRegistrar reg{{
    .name = "fig5",
    .description = "mean message latency vs traffic rate under convex/concave fault "
                   "regions (paper Fig. 5)",
    .build = buildFig5,
    .columns = {"latency", "throughput", "queued", "detours"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
