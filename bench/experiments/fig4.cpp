// Fig. 4 reproduction: mean message latency vs traffic rate in an 8-ary
// 3-cube, deterministic + adaptive Software-Based routing, M in {32, 64},
// V in {4, 6, 10}, nf in {0, 12} random node faults.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildFig4() {
  std::vector<SweepPoint> points;
  const double maxRateByV[] = {0.014, 0.018, 0.021};
  const int vcsGrid[] = {4, 6, 10};

  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (int vi = 0; vi < 3; ++vi) {
      for (const int msgLen : {32, 64}) {
        for (const int nf : {0, 12}) {
          for (const double rate : rateGrid(maxRateByV[vi], 6)) {
            SweepPoint p;
            SimConfig& cfg = p.cfg;
            cfg.radix = 8;
            cfg.dims = 3;
            cfg.vcs = vcsGrid[vi];
            cfg.messageLength = msgLen;
            cfg.injectionRate = rate;
            cfg.routing = mode;
            cfg.faults.randomNodes = nf;
            cfg.seed = 2000 + static_cast<std::uint64_t>(nf);
            bench::applyEnvScale(cfg);
            // 512 nodes: latency convergence needs fewer cycles per message.
            cfg.maxCycles = scaleFromEnv() == ScalePreset::Paper ? 4'000'000 : 50'000;
            char label[96];
            std::snprintf(label, sizeof label, "%s/M%d/V%d/nf%d/l%.4f",
                          mode == RoutingMode::Adaptive ? "adp" : "det", msgLen,
                          cfg.vcs, nf, rate);
            p.label = label;
            points.push_back(std::move(p));
          }
        }
      }
    }
  }
  return points;
}

const ExperimentRegistrar reg{{
    .name = "fig4",
    .description = "mean message latency vs traffic rate, 8-ary 3-cube (paper Fig. 4)",
    .build = buildFig4,
    .columns = {"latency", "throughput", "queued"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
