// Shared scaffolding for the registered experiment specs.
//
// Each TU in this directory registers one or more ExperimentSpecs via a
// static ExperimentRegistrar; `swft_bench` (and tests) link the whole
// directory, so registration is purely additive — no central list.
//
// Scale: SWFT_SCALE=paper reproduces the paper's 100k-message runs; the
// default reduced scale preserves curve shapes at ~1/10 the cost.
#pragma once

#include "src/harness/experiment_registry.hpp"
#include "src/harness/sweep.hpp"
#include "src/sim/network.hpp"

namespace swft::bench {

inline void applyEnvScale(SimConfig& cfg) { applyScale(cfg, scaleFromEnv()); }

/// Shorthand for a fixed-duration run (Fig. 6/7 protocol): the run length is
/// bounded by cycles, not by a delivered-message target.
inline void makeFixedDuration(SimConfig& cfg, std::uint64_t cycles) {
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.maxCycles = cycles;
}

}  // namespace swft::bench
