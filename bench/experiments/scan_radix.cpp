// scan_radix (beyond-paper workload): radix/dimension scan over 4…16-ary
// 2-cubes and 4…8-ary 3-cubes under the permutation traffic patterns. The
// paper evaluates uniform traffic on 8/16-ary machines only; this scan shows
// how the Software-Based layer behaves as the machine grows and as traffic
// stops being benign (tornado stresses wrap links, bitrev/shuffle stress
// bisection).
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildScanRadix() {
  struct Machine {
    int radix;
    int dims;
  };
  const Machine machines[] = {
      {4, 2}, {6, 2}, {8, 2}, {10, 2}, {12, 2}, {16, 2}, {4, 3}, {6, 3}, {8, 3},
  };
  const TrafficPattern patterns[] = {
      TrafficPattern::Uniform,
      TrafficPattern::BitReversal,
      TrafficPattern::Shuffle,
      TrafficPattern::Tornado,
  };

  std::vector<SweepPoint> points;
  for (const Machine& m : machines) {
    for (const TrafficPattern pattern : patterns) {
      for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
        SweepPoint p;
        SimConfig& cfg = p.cfg;
        cfg.radix = m.radix;
        cfg.dims = m.dims;
        cfg.vcs = 6;
        cfg.messageLength = 32;
        // Offered load shrinks with the ring length so every machine sits at
        // a comparable, sub-saturation fraction of its uniform-traffic
        // capacity (the adversarial permutations may still saturate — that
        // contrast is the point of the scan).
        cfg.injectionRate = (m.dims == 2 ? 0.06 : 0.045) / m.radix;
        cfg.pattern = pattern;
        cfg.routing = mode;
        cfg.seed = 11000 + static_cast<std::uint64_t>(m.radix * 10 + m.dims);
        bench::applyEnvScale(cfg);
        cfg.maxCycles = scaleFromEnv() == ScalePreset::Paper ? 2'000'000 : 200'000;
        char label[96];
        std::snprintf(label, sizeof label, "k%02d/n%d/%s/%s", m.radix, m.dims,
                      std::string(trafficPatternName(pattern)).c_str(),
                      mode == RoutingMode::Adaptive ? "adp" : "det");
        p.label = label;
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

const ExperimentRegistrar reg{{
    .name = "scan_radix",
    .description = "radix/dimension scan (4..16-ary 2/3-cubes) under permutation traffic",
    .build = buildScanRadix,
    .columns = {"latency", "throughput", "hops", "saturated"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
