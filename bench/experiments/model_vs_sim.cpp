// Model-vs-simulation comparison (extension): evaluates the analytic
// latency model of src/model against the flit-level simulator across the
// Fig. 3 load grid, fault-free and with 5 random faults.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"
#include "src/model/analytic.hpp"

namespace swft {
namespace {

std::vector<SweepPoint> buildGrid() {
  std::vector<SweepPoint> points;
  for (const int nf : {0, 5}) {
    for (const double rate : rateGrid(0.010, 5)) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 4;
      cfg.messageLength = 32;
      cfg.injectionRate = rate;
      cfg.faults.randomNodes = nf;
      cfg.seed = 9000 + static_cast<std::uint64_t>(nf);
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "nf%d/l%.4f", nf, rate);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

// Append the model side of the comparison below the simulation table.
std::string modelEpilogue(const std::vector<SweepRow>& rows) {
  std::string out = "\nanalytic model:\n";
  char line[160];
  std::snprintf(line, sizeof line, "%-18s %12s %12s %12s\n", "point", "model_lat",
                "abs_prob", "sat_est");
  out += line;
  for (const SweepRow& row : rows) {
    const ModelResult m = analyticLatency(row.point.cfg);
    std::snprintf(line, sizeof line, "%-18s %12.1f %12.3f %12.4f%s\n",
                  row.point.label.c_str(), m.meanLatency, m.absorbProbability,
                  m.saturationRate, m.saturated ? "  [saturated]" : "");
    out += line;
  }
  return out;
}

const ExperimentRegistrar reg{{
    .name = "model_vs_sim",
    .description = "flit-level simulation vs analytic model",
    .build = buildGrid,
    .columns = {"latency", "hops"},
    .epilogue = modelEpilogue,
}};

}  // namespace
}  // namespace swft
