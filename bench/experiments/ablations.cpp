// The three ablation experiments (A1–A3): parameters the paper fixes or
// leaves unreported, swept to quantify their impact.
#include <cstdio>

#include "bench/experiments/experiment_common.hpp"

namespace swft {
namespace {

// A1: size of the Duato escape pool (2 vs 4 escape VCs of V=6/10) under
// random faults. More escape bandwidth helps downgraded (deterministic)
// messages after absorption, at the cost of adaptive flexibility.
std::vector<SweepPoint> buildVcPartition() {
  std::vector<SweepPoint> points;
  for (const int vcs : {6, 10}) {
    for (const int escape : {2, 4}) {
      for (const int nf : {0, 5}) {
        for (const double rate : rateGrid(0.016, 4)) {
          SweepPoint p;
          SimConfig& cfg = p.cfg;
          cfg.radix = 8;
          cfg.dims = 2;
          cfg.vcs = vcs;
          cfg.escapeVcs = escape;
          cfg.messageLength = 32;
          cfg.injectionRate = rate;
          cfg.routing = RoutingMode::Adaptive;
          cfg.faults.randomNodes = nf;
          cfg.seed = 6000 + static_cast<std::uint64_t>(nf);
          bench::applyEnvScale(cfg);
          cfg.maxCycles = 300'000;
          char label[64];
          std::snprintf(label, sizeof label, "V%d/esc%d/nf%d/l%.4f", vcs, escape, nf,
                        rate);
          p.label = label;
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

// A2: software re-injection overhead Delta (paper assumption (i)). The paper
// sets Delta = 0 ("negligible compared to the channel cycle time"); this
// experiment quantifies how much latency a real messaging-layer delay would
// add under faults, validating that assumption's impact.
std::vector<SweepPoint> buildReinjection() {
  std::vector<SweepPoint> points;
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    for (const int delta : {0, 8, 16, 32, 64, 128}) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 6;
      cfg.messageLength = 32;
      cfg.injectionRate = 0.006;
      cfg.routing = mode;
      cfg.reinjectDelay = delta;
      cfg.faults.randomNodes = 5;
      cfg.seed = 7000;
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "%s/delta%d",
                    mode == RoutingMode::Adaptive ? "adp" : "det", delta);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

// A3: per-VC flit buffer depth. The paper lists buffer length among the
// simulator parameters without reporting a sweep; this experiment fills that
// gap and shows the latency/saturation sensitivity to buffering.
std::vector<SweepPoint> buildBufferDepth() {
  std::vector<SweepPoint> points;
  for (const int depth : {1, 2, 4, 8, 16}) {
    for (const double rate : rateGrid(0.014, 4)) {
      SweepPoint p;
      SimConfig& cfg = p.cfg;
      cfg.radix = 8;
      cfg.dims = 2;
      cfg.vcs = 4;
      cfg.bufferDepth = depth;
      cfg.messageLength = 32;
      cfg.injectionRate = rate;
      cfg.routing = RoutingMode::Deterministic;
      cfg.faults.randomNodes = 3;
      cfg.seed = 8000;
      bench::applyEnvScale(cfg);
      cfg.maxCycles = 300'000;
      char label[64];
      std::snprintf(label, sizeof label, "B%d/l%.4f", depth, rate);
      p.label = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

const ExperimentRegistrar regVc{{
    .name = "abl_vc_partition",
    .description = "ablation: Duato escape-pool size under faults",
    .build = buildVcPartition,
    .columns = {"latency", "throughput", "queued"},
    .epilogue = {},
}};

const ExperimentRegistrar regReinject{{
    .name = "abl_reinjection_overhead",
    .description = "ablation: software re-injection overhead Delta",
    .build = buildReinjection,
    .columns = {"latency", "queued", "throughput"},
    .epilogue = {},
}};

const ExperimentRegistrar regBuffer{{
    .name = "abl_buffer_depth",
    .description = "ablation: per-VC flit buffer depth",
    .build = buildBufferDepth,
    .columns = {"latency", "throughput", "saturated"},
    .epilogue = {},
}};

}  // namespace
}  // namespace swft
