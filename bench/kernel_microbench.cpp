// Kernel microbenchmarks: per-cycle engine cost, topology arithmetic, RNG
// throughput, CDG construction. Two modes:
//
//   (default)       google-benchmark microbenchmarks (adaptive iteration
//                   counts), used for interactive profiling. The engine
//                   benches take the engine kind as the last argument
//                   (0 = sparse, 1 = dense reference).
//
//   --emit-json=F   the repeatable before/after harness: times the dense
//                   reference engine against the event-sparse engine on
//                   four pinned operating points (low load, saturation,
//                   faulty adaptive) and writes machine-readable JSON
//                   (schema swft-bench-engine-v1, see README.md). The two
//                   saturation points additionally run a sparse-mt
//                   thread-scaling sweep (sim_threads 1/2/4/8) recording
//                   mtN_cps, the best self-speedup over thread counts the
//                   machine can actually host, and hardware_concurrency.
//   --check=REF     additionally compares the sparse-engine cycles/sec of
//                   this run against a checked-in reference JSON and exits
//                   non-zero if any point regressed by more than
//                   --tolerance (default 0.30). Used by the perf-smoke CI
//                   job to catch order-of-magnitude regressions without
//                   flaking on runner noise. A per-point min_self_speedup
//                   in the reference gates the sparse-mt scaling; the
//                   requirement is derated by the runner's core count so
//                   the gate is runner-speed- and runner-width-insensitive
//                   (trivially satisfied on a single-core machine, armed on
//                   multi-core CI).
#ifdef SWFT_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/result_cache.hpp"
#include "src/sim/config_parse.hpp"
#include "src/sim/link_qual.hpp"
#include "src/sim/network.hpp"
#include "src/util/simd.hpp"
#include "src/verify/cdg.hpp"

using namespace swft;

#ifdef SWFT_HAVE_GBENCH
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngGeometric(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.geometric(0.01));
}
BENCHMARK(BM_RngGeometric);

void BM_TopoCoordsRoundTrip(benchmark::State& state) {
  const TorusTopology topo(8, static_cast<int>(state.range(0)));
  NodeId id = 0;
  for (auto _ : state) {
    const Coordinates c = topo.coordsOf(id);
    benchmark::DoNotOptimize(topo.idOf(c));
    id = (id + 97) % topo.nodeCount();
  }
}
BENCHMARK(BM_TopoCoordsRoundTrip)->Arg(2)->Arg(3)->Arg(4);

void BM_TopoNeighbor(benchmark::State& state) {
  const TorusTopology topo(8, 3);
  NodeId id = 0;
  int port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.neighbor(id, port));
    port = (port + 1) % topo.networkPorts();
    id = (id + 31) % topo.nodeCount();
  }
}
BENCHMARK(BM_TopoNeighbor);

EngineKind kindArg(std::int64_t v) {
  return v == 0 ? EngineKind::Sparse : EngineKind::Dense;
}

void BM_EngineCyclesPerSecond(benchmark::State& state) {
  // Steady-state stepping cost of a loaded 8-ary n-cube.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = static_cast<int>(state.range(0));
  cfg.vcs = 4;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.004;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.engine = kindArg(state.range(1));
  Network net(cfg);
  net.step(2000);  // warm the network to steady state
  for (auto _ : state) {
    net.step(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EngineCyclesPerSecond)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_EngineSaturated(benchmark::State& state) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 10;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.05;  // deep saturation: worst-case per-cycle cost
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.engine = kindArg(state.range(0));
  Network net(cfg);
  net.step(5000);
  for (auto _ : state) {
    net.step(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EngineSaturated)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_LinkBatch(benchmark::State& state) {
  // The batched link pass in isolation-by-dominance: a knee-loaded 8-ary
  // 2-cube at the production router shape (V=4, depth 4). Warmed to steady
  // state, ~90% of per-cycle time is the router phase (per `phase_timers=1`),
  // so this kernel tracks the single-pass switch arbitration + traversal
  // commit rather than generation or injection.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.015;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.engine = kindArg(state.range(0));
  Network net(cfg);
  net.step(5000);
  for (auto _ : state) {
    net.step(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_LinkBatch)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_Qualify(benchmark::State& state) {
  // The link-qualification pass in isolation on a synthetic saturated
  // 5-port V=10 router (the `saturation` operating-point router shape,
  // 50 units): arg 0 = the pre-bitmap per-candidate loop (route-word
  // gather + arrival compare + downstream size probe per live unit),
  // arg 1 = the arena-bitmap pass with the SIMD port sweep forced scalar,
  // arg 2 = the bitmap pass with the vector sweep.
  constexpr int kPorts = 5, kVcs = 10, kDepth = 4;
  RouterArena a(2, kPorts, kPorts - 1, kVcs, kDepth);
  const int units = a.unitsPerRouter();
  // Node 0 is the router under test; spread its routed units across all
  // ports (ejection = port 4 targets the credit sink), downstream rows on
  // node 1, with every third downstream full so the credit axis is live.
  for (int u = 0; u < units; ++u) {
    a.push(0, u, Flit{static_cast<MsgId>(u), FlitKind::Body}, 0);
    const int port = u % kPorts;
    const int vc = u / kPorts % kVcs;
    const int du = port == kPorts - 1 ? a.creditSinkBase() + vc
                                      : a.unitIndex(1, port, vc);
    a.allocateRoute(0, u, port, vc, du);
    if (port != kPorts - 1 && u % 3 == 0) {
      for (int d = 0; d < kDepth; ++d) {
        a.push(1, du, Flit{static_cast<MsgId>(u), FlitKind::Body}, 0);
      }
    }
  }
  a.matureFreshness();  // mature: every front arrived before "cycle 1"
  const std::uint64_t cycle = 1;
  std::uint64_t okp[64];
  if (state.range(0) == 0) {
    const std::uint32_t* rw = a.routeRow(0);
    const auto fullDepth = a.depth();
    const int sink = a.creditSinkBase();
    for (auto _ : state) {
      for (int p = 0; p < kPorts; ++p) okp[p] = 0;
      std::uint64_t pm = 0;
      std::uint64_t m = a.occWords(0)[0] & a.routedWords(0)[0];
      while (m != 0) {
        const int u = std::countr_zero(m);
        m &= m - 1;
        const std::uint32_t r = rw[u];
        const int port = RouterArena::wordOutPort(r);
        const int down = port == kPorts - 1
                             ? sink
                             : a.unitIndex(1, port, 0);
        const auto fresh = static_cast<std::uint64_t>(a.frontArrival(u) < cycle);
        const auto cred = static_cast<std::uint64_t>(
            a.size(down + RouterArena::wordOutVc(r)) != fullDepth);
        const std::uint64_t q = fresh & cred;
        okp[port] |= q << u;
        pm |= q << port;
      }
      benchmark::DoNotOptimize(pm);
      benchmark::DoNotOptimize(okp[0]);
    }
  } else {
    const bool prev = simd::forceScalar();
    simd::setForceScalar(state.range(0) == 1);
    for (auto _ : state) {
      benchmark::DoNotOptimize(qualifyLinkCandidates(a, 0, okp, kPorts));
      benchmark::DoNotOptimize(okp[0]);
    }
    simd::setForceScalar(prev);
  }
  state.SetItemsProcessed(state.iterations() * units);
}
BENCHMARK(BM_Qualify)->Arg(0)->Arg(1)->Arg(2);

void BM_CdgBuild(benchmark::State& state) {
  const TorusTopology topo(static_cast<int>(state.range(0)), 2);
  const FaultSet faults(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildEcubeCdg(topo, faults, true).hasCycle());
  }
}
BENCHMARK(BM_CdgBuild)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SoftwareLayerTables(benchmark::State& state) {
  const TorusTopology topo(8, 3);
  FaultSet faults(topo);
  Rng rng(1);
  applyRandomNodeFaults(faults, 12, rng);
  for (auto _ : state) {
    const SoftwareLayer layer(topo, faults, 96);
    benchmark::DoNotOptimize(layer.tables(0).healthyLinkMask);
  }
}
BENCHMARK(BM_SoftwareLayerTables)->Unit(benchmark::kMicrosecond);

void BM_ResultCacheHit(benchmark::State& state) {
  // Full warm-path cost per sweep point: canonical key derivation + entry
  // read + key verification + exact-double deserialization.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "swft_bm_result_cache").string();
  std::filesystem::remove_all(dir);
  ResultCache cache(dir);
  SimConfig cfg;
  cache.store(cfg, SimResult{});
  for (auto _ : state) benchmark::DoNotOptimize(cache.lookup(cfg));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ResultCacheHit)->Unit(benchmark::kMicrosecond);

}  // namespace
#endif  // SWFT_HAVE_GBENCH

namespace {

// --- before/after harness ---------------------------------------------------

struct OperatingPoint {
  const char* name;
  SimConfig cfg;
  std::uint64_t warmCycles;
  std::uint64_t chunkCycles;  // cycles per timed repetition
  bool threadScaling = false; // also sweep sparse-mt sim_threads 1/2/4/8
};

std::vector<OperatingPoint> operatingPoints() {
  std::vector<OperatingPoint> points;

  // Low load: lambda ~4% of the saturation knee (~0.0073 for this config)
  // on a 256-node torus. Most PEs are idle most cycles — the event-sparse
  // engine's home turf, and the regime every latency-curve figure sweeps
  // through for most of its points.
  {
    OperatingPoint p{"low_load", {}, 4000, 60'000};
    p.cfg.radix = 16;
    p.cfg.dims = 2;
    p.cfg.vcs = 4;
    p.cfg.messageLength = 32;
    p.cfg.injectionRate = 0.0003;
    points.push_back(p);
  }

  // Saturation knee (accepted throughput peaks at ~0.0146 for this config):
  // every router busy every cycle with bounded queues — the worst case for
  // activity tracking, where any win must come from the contiguous arena
  // alone and the realistic expectation is parity.
  {
    OperatingPoint p{"saturation", {}, 8000, 20'000};
    p.cfg.radix = 8;
    p.cfg.dims = 2;
    p.cfg.vcs = 10;
    p.cfg.messageLength = 32;
    p.cfg.injectionRate = 0.015;
    p.threadScaling = true;
    points.push_back(p);
  }

  // Paper scale: a 4096-node 16-ary 3-cube at its saturation knee
  // (accepted throughput peaks at ~0.0057 msgs/node/cycle for this config;
  // probed empirically). Every router column of the arena is in play, so
  // cache behaviour — not just branch shape — differs from the 64-node
  // saturation point above. Short chunks keep the dense side of a full
  // harness run in tens of seconds.
  {
    OperatingPoint p{"saturation_16ary3", {}, 3000, 3'000};
    p.cfg.radix = 16;
    p.cfg.dims = 3;
    p.cfg.vcs = 4;
    p.cfg.messageLength = 32;
    p.cfg.injectionRate = 0.006;
    p.threadScaling = true;
    points.push_back(p);
  }

  // Faulty adaptive: software-layer absorptions and reinjection queues in
  // the loop at a moderate load.
  {
    OperatingPoint p{"faulty_adaptive", {}, 4000, 20'000};
    p.cfg.radix = 8;
    p.cfg.dims = 2;
    p.cfg.vcs = 4;
    p.cfg.messageLength = 32;
    p.cfg.injectionRate = 0.004;
    p.cfg.routing = RoutingMode::Adaptive;
    p.cfg.faults.randomNodes = 10;
    p.cfg.reinjectDelay = 20;
    points.push_back(p);
  }

  for (OperatingPoint& p : points) {
    p.cfg.warmupMessages = 0;
    p.cfg.measuredMessages = ~std::uint32_t{0};
    p.cfg.maxCycles = ~std::uint64_t{0};
    p.cfg.seed = 1;
  }
  return points;
}

/// Median cycles/second for both engines, measured in interleaved pairs
/// (dense chunk, sparse chunk, dense chunk, ...) so slow machine-load drift
/// hits both sides equally instead of biasing whichever ran second.
struct MeasuredPair {
  double denseCps;
  double sparseCps;
};

MeasuredPair measureCyclesPerSecond(const OperatingPoint& point, int reps = 7) {
  SimConfig denseCfg = point.cfg;
  denseCfg.engine = EngineKind::Dense;
  SimConfig sparseCfg = point.cfg;
  sparseCfg.engine = EngineKind::Sparse;
  Network dense(denseCfg);
  Network sparse(sparseCfg);
  dense.step(point.warmCycles);
  sparse.step(point.warmCycles);
  std::vector<double> denseSamples;
  std::vector<double> sparseSamples;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    dense.step(point.chunkCycles);
    auto t1 = std::chrono::steady_clock::now();
    sparse.step(point.chunkCycles);
    auto t2 = std::chrono::steady_clock::now();
    denseSamples.push_back(static_cast<double>(point.chunkCycles) /
                           std::chrono::duration<double>(t1 - t0).count());
    sparseSamples.push_back(static_cast<double>(point.chunkCycles) /
                            std::chrono::duration<double>(t2 - t1).count());
  }
  std::sort(denseSamples.begin(), denseSamples.end());
  std::sort(sparseSamples.begin(), sparseSamples.end());
  return MeasuredPair{denseSamples[denseSamples.size() / 2],
                      sparseSamples[sparseSamples.size() / 2]};
}

// The sparse-mt thread-scaling axis: the single-domain baseline, two
// intermediate widths, and the tentpole's 8-thread target.
constexpr int kMtThreadAxis[] = {1, 2, 4, 8};
constexpr std::size_t kMtAxisLen = sizeof(kMtThreadAxis) / sizeof(kMtThreadAxis[0]);

/// Thread counts worth crediting on this machine: no point demanding (or
/// rewarding) an 8-way speedup on a 2-core runner.
unsigned usableCores() {
  return std::min(std::max(1u, std::thread::hardware_concurrency()), 8u);
}

struct MtScaling {
  std::vector<double> cps;      // median cycles/sec per kMtThreadAxis entry
  std::vector<double> parFrac;  // measured parallel fraction per entry
};

/// Median sparse-mt cycles/sec at each axis thread count. Each count is
/// measured in its own scope — idle MtEngine workers spin (with yield)
/// between phases, so two mt networks alive at once would steal cycles from
/// each other and distort every sample on narrow machines. The
/// self-speedup gate consumes ratios of numbers taken seconds apart, which
/// machine-load drift moves together.
///
/// Each run also measures its *parallel fraction* from the engine's phase
/// shards: 1 - serial / work, where serial is the baton thread's P2 time
/// (gen + inj + walk) and work is every thread's phase time excluding
/// barrier waits. This is the Amdahl input that explains the mtN_cps curve
/// — the PhaseClock overhead (a few steady_clock reads per cycle per
/// thread) is far below the run-to-run noise floor.
MtScaling measureMtScaling(const OperatingPoint& point, int reps = 5) {
  MtScaling out;
  out.cps.reserve(kMtAxisLen);
  out.parFrac.reserve(kMtAxisLen);
  for (const int t : kMtThreadAxis) {
    SimConfig cfg = point.cfg;
    cfg.engine = EngineKind::SparseMt;
    cfg.simThreads = t;
    cfg.phaseTimers = true;
    Network net(cfg);
    net.step(point.warmCycles);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      net.step(point.chunkCycles);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(static_cast<double>(point.chunkCycles) /
                        std::chrono::duration<double>(t1 - t0).count());
    }
    std::sort(samples.begin(), samples.end());
    out.cps.push_back(samples[samples.size() / 2]);
    const std::vector<PhaseBreakdown>& shards = net.phaseShards();
    double serial = shards.empty() ? 0.0 : shards[0].serial();
    double work = 0.0;
    for (const PhaseBreakdown& s : shards) {
      work += s.total() - s.sec[PhaseBreakdown::kBarrier];
    }
    out.parFrac.push_back(work > 0.0 ? 1.0 - serial / work : 0.0);
  }
  return out;
}

struct PointResult {
  std::string name;
  std::string config;
  double denseCps = 0.0;
  double sparseCps = 0.0;
  std::vector<double> mtCps;      // per kMtThreadAxis entry; empty = no sweep
  std::vector<double> mtParFrac;  // measured parallel fraction per entry
  // The result-cache point (name "result_cache") carries per-operation
  // nanoseconds instead of engine cycles/sec.
  double cacheKeyNs = 0.0;    // canonical key derivation + FNV hash
  double cacheStoreNs = 0.0;  // serialize + temp write + atomic rename
  double cacheHitNs = 0.0;    // lookup: read + key verify + deserialize
};

/// Per-point cost of the content-addressed result cache, measured on a
/// store in the temp filesystem. This is the bookkeeping a cold sweep pays
/// per grid point (one key + one miss-lookup + one store) and a warm sweep
/// pays per hit (one key + one hit-lookup) — tracked here so cache overhead
/// regressions surface in perf-smoke artifacts like any other hot path.
/// Against even the cheapest real point (~10ms of simulation) the measured
/// few-microsecond totals are << the 2% cold-run overhead budget.
PointResult measureCachePoint(int reps = 2000) {
  PointResult r;
  r.name = "result_cache";

  SimConfig cfg;  // the default 8-ary 2-cube latency-curve point
  r.config = "canonical key + store round trip, " + describeConfig(cfg);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "swft_cache_bench").string() + "." +
      std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  ResultCache cache(dir);
  const SimResult result{};

  const auto perOpNs = [reps](auto&& op) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) op(static_cast<std::uint64_t>(i));
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() / reps;
  };
  // Distinct seeds per iteration: every op touches a fresh content address,
  // as in a real sweep, instead of hammering one hot inode.
  r.cacheKeyNs = perOpNs([&](std::uint64_t i) {
    cfg.seed = i;
    volatile std::uint64_t h = canonicalConfigHash(cfg);
    (void)h;
  });
  r.cacheStoreNs = perOpNs([&](std::uint64_t i) {
    cfg.seed = i;
    cache.store(cfg, result);
  });
  r.cacheHitNs = perOpNs([&](std::uint64_t i) {
    cfg.seed = i;
    (void)cache.lookup(cfg);
  });
  std::filesystem::remove_all(dir);
  return r;
}

/// Best sparse-mt self-speedup over the thread counts this machine can host
/// concurrently (1.0 when only the single-domain run fits).
double bestSelfSpeedup(const PointResult& r) {
  if (r.mtCps.size() != kMtAxisLen || r.mtCps[0] <= 0.0) return 0.0;
  const unsigned usable = usableCores();
  double best = 1.0;
  for (std::size_t i = 0; i < kMtAxisLen; ++i) {
    if (static_cast<unsigned>(kMtThreadAxis[i]) > usable) continue;
    best = std::max(best, r.mtCps[i] / r.mtCps[0]);
  }
  return best;
}

/// Compiler id + version, for the bench-metadata header.
std::string compilerString() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

std::string resultsToJson(const std::vector<PointResult>& results) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  os << "{\n";
  os << "  \"schema\": \"swft-bench-engine-v1\",\n";
  os << "  \"description\": \"cycles/sec of the dense reference engine (the "
        "seed implementation) vs the event-sparse engine, medians of 7 "
        "interleaved steady-state chunks per point; saturation points also "
        "sweep the sparse-mt engine at 1/2/4/8 domain threads (mtN_cps), "
        "each run's measured parallel fraction from the engine phase timers "
        "(mtN_parallel_fraction = 1 - serial baton time / total phase work), "
        "and record the best self-speedup over thread counts this machine's "
        "hardware_concurrency can host\",\n";
  // Machine/toolchain metadata, so cross-machine comparisons of the numbers
  // below are honest about what produced them.
  os << "  \"simd_isa\": \"" << simd::isaName() << "\",\n";
  os << "  \"simd_mode\": \""
     << (simd::forceScalar() ? "scalar-forced" : "vector") << "\",\n";
  os << "  \"compiler\": \"" << compilerString() << "\",\n";
  os << "  \"hardware_concurrency\": "
     << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"config\": \"" << r.config << "\",\n";
    if (r.cacheKeyNs > 0.0) {
      // The result-cache point: per-operation nanoseconds, no engine pair.
      os << "      \"cache_key_ns\": " << r.cacheKeyNs << ",\n";
      os << "      \"cache_store_ns\": " << r.cacheStoreNs << ",\n";
      os << "      \"cache_hit_ns\": " << r.cacheHitNs << "\n";
      os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
      continue;
    }
    os << "      \"dense_cps\": " << r.denseCps << ",\n";
    os << "      \"sparse_cps\": " << r.sparseCps << ",\n";
    if (r.mtCps.size() == kMtAxisLen) {
      for (std::size_t t = 0; t < kMtAxisLen; ++t) {
        os << "      \"mt" << kMtThreadAxis[t] << "_cps\": " << r.mtCps[t] << ",\n";
      }
      if (r.mtParFrac.size() == kMtAxisLen) {
        os.precision(3);
        for (std::size_t t = 0; t < kMtAxisLen; ++t) {
          os << "      \"mt" << kMtThreadAxis[t]
             << "_parallel_fraction\": " << r.mtParFrac[t] << ",\n";
        }
        os.precision(1);
      }
      os.precision(3);
      os << "      \"self_speedup\": " << bestSelfSpeedup(r) << ",\n";
      os.precision(1);
      os << "      \"hardware_concurrency\": "
         << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
    }
    os.precision(3);
    os << "      \"speedup\": " << (r.sparseCps / r.denseCps) << "\n";
    os.precision(1);
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal extraction from our own JSON schema: the number following
/// `"<key>": ` after the occurrence of `"name": "<point>"`. Returns -1 when
/// absent (treated as "no reference for this point").
double extractPointValue(const std::string& json, const std::string& point,
                         const std::string& key) {
  const std::string anchor = "\"name\": \"" + point + "\"";
  const std::size_t at = json.find(anchor);
  if (at == std::string::npos) return -1.0;
  const std::string field = "\"" + key + "\": ";
  const std::size_t fieldAt = json.find(field, at);
  if (fieldAt == std::string::npos) return -1.0;
  // Stay within this point's object: a key found past the next point's
  // "name" would silently read a different point's value.
  const std::size_t nextPoint = json.find("\"name\":", at + anchor.size());
  if (nextPoint != std::string::npos && fieldAt > nextPoint) return -1.0;
  return std::strtod(json.c_str() + fieldAt + field.size(), nullptr);
}

/// Measure one point in a child process re-running this binary with
/// --point=<name>. Measuring every point in a pristine process makes the
/// numbers independent of point order: a prior point's heap and
/// predictor history inside one process was observed to shift a later
/// point's sparse-engine figure by ~20%.
bool measureInSubprocess(const std::string& exe, PointResult& r) {
  const std::string part = "kernel_microbench." + r.name + ".part.json";
  const std::string cmd =
      "\"" + exe + "\" --point=" + r.name + " --emit-json=" + part;
  if (std::system(cmd.c_str()) != 0) return false;
  std::ifstream in(part);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::remove(part.c_str());
  r.denseCps = extractPointValue(json, r.name, "dense_cps");
  r.sparseCps = extractPointValue(json, r.name, "sparse_cps");
  std::vector<double> mt;
  std::vector<double> frac;
  for (const int t : kMtThreadAxis) {
    const double v =
        extractPointValue(json, r.name, "mt" + std::to_string(t) + "_cps");
    if (v <= 0.0) break;
    mt.push_back(v);
    frac.push_back(extractPointValue(
        json, r.name, "mt" + std::to_string(t) + "_parallel_fraction"));
  }
  if (mt.size() == kMtAxisLen) {
    r.mtCps = std::move(mt);
    r.mtParFrac = std::move(frac);
  }
  return r.denseCps > 0.0 && r.sparseCps > 0.0;
}

int runHarness(const std::string& exe, const std::string& emitPath,
               const std::string& checkPath, double tolerance,
               const std::string& only) {
  std::vector<PointResult> results;
  for (const OperatingPoint& point : operatingPoints()) {
    if (!only.empty() && only != point.name) continue;
    PointResult r;
    r.name = point.name;
    r.config = describeConfig(point.cfg);
    if (only.empty() && !exe.empty()) {
      if (!measureInSubprocess(exe, r)) {
        std::fprintf(stderr, "subprocess measurement of %s failed\n",
                     r.name.c_str());
        return 2;
      }
    } else {
      const MeasuredPair pair = measureCyclesPerSecond(point);
      r.denseCps = pair.denseCps;
      r.sparseCps = pair.sparseCps;
      std::printf("%-16s dense %12.0f c/s   sparse %12.0f c/s   speedup %.2fx\n",
                  point.name, r.denseCps, r.sparseCps, r.sparseCps / r.denseCps);
      if (point.threadScaling) {
        MtScaling scaling = measureMtScaling(point);
        r.mtCps = std::move(scaling.cps);
        r.mtParFrac = std::move(scaling.parFrac);
        std::printf("%-16s sparse-mt", point.name);
        for (std::size_t t = 0; t < kMtAxisLen; ++t) {
          std::printf("  T=%d %10.0f c/s (par %.2f)", kMtThreadAxis[t],
                      r.mtCps[t], r.mtParFrac[t]);
        }
        std::printf("   self-speedup %.2fx (on %u cores)\n", bestSelfSpeedup(r),
                    std::max(1u, std::thread::hardware_concurrency()));
      }
    }
    results.push_back(r);
  }

  // The result-cache bookkeeping point rides along with every harness run.
  // It is cheap and filesystem-bound, so it is measured in-process even in
  // subprocess mode; `--point=result_cache` restricts the run to it.
  if (only.empty() || only == "result_cache") {
    PointResult r = measureCachePoint();
    std::printf("%-16s key %7.0f ns   store %7.0f ns   hit %7.0f ns\n",
                r.name.c_str(), r.cacheKeyNs, r.cacheStoreNs, r.cacheHitNs);
    results.push_back(std::move(r));
  }

  if (!emitPath.empty()) {
    std::ofstream out(emitPath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", emitPath.c_str());
      return 2;
    }
    out << resultsToJson(results);
    std::printf("wrote %s\n", emitPath.c_str());
  }

  if (!checkPath.empty()) {
    std::ifstream in(checkPath);
    if (!in) {
      std::fprintf(stderr, "cannot read reference %s\n", checkPath.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string ref = buf.str();
    int failures = 0;
    int matched = 0;
    for (const PointResult& r : results) {
      if (r.cacheKeyNs > 0.0) continue;  // bookkeeping point: no cps gates
      const double refCps = extractPointValue(ref, r.name, "sparse_cps");
      if (refCps <= 0.0) {
        std::fprintf(stderr, "reference has no sparse_cps for %s — skipping\n",
                     r.name.c_str());
        continue;
      }
      ++matched;
      const double floor = (1.0 - tolerance) * refCps;
      if (r.sparseCps < floor) {
        std::fprintf(stderr,
                     "PERF REGRESSION at %s: %.0f cycles/sec < %.0f "
                     "(reference %.0f, tolerance %.0f%%)\n",
                     r.name.c_str(), r.sparseCps, floor, refCps, tolerance * 100);
        ++failures;
      } else {
        std::printf("%s ok: %.0f cycles/sec vs reference %.0f (floor %.0f)\n",
                    r.name.c_str(), r.sparseCps, refCps, floor);
      }
      // Sparse-vs-dense ratio gate: unlike absolute cycles/sec, the ratio is
      // insensitive to runner speed, so it can be gated much tighter. The
      // reference carries an explicit (already derated) min_speedup per
      // point where the batched link pass must hold its win.
      const double minSpeedup = extractPointValue(ref, r.name, "min_speedup");
      if (minSpeedup > 0.0) {
        const double speedup = r.sparseCps / r.denseCps;
        if (speedup < minSpeedup) {
          std::fprintf(stderr,
                       "PERF REGRESSION at %s: sparse/dense speedup %.2fx < "
                       "required %.2fx\n",
                       r.name.c_str(), speedup, minSpeedup);
          ++failures;
        } else {
          std::printf("%s speedup ok: %.2fx >= %.2fx\n", r.name.c_str(), speedup,
                      minSpeedup);
        }
      }
      // Sparse-mt self-speedup gate: like min_speedup this is a ratio, so
      // it is insensitive to runner *speed* — but not to runner *width*, so
      // the reference value (the requirement on a full 8-core machine) is
      // scaled linearly down to the cores this runner can actually host and
      // then halved to absorb shared-vCPU jitter. A single-core machine
      // requires exactly 1.0 (the gate disarms rather than flakes); an
      // 8-core runner with min_self_speedup 3.5 requires 2.25x.
      const double minSelf = extractPointValue(ref, r.name, "min_self_speedup");
      if (minSelf > 0.0) {
        if (r.mtCps.size() != kMtAxisLen) {
          std::fprintf(stderr,
                       "PERF REGRESSION at %s: reference demands sparse-mt "
                       "scaling but this run has no mtN_cps sweep\n",
                       r.name.c_str());
          ++failures;
        } else {
          const unsigned usable = usableCores();
          const double required =
              1.0 + (minSelf - 1.0) * static_cast<double>(usable - 1) / 7.0 * 0.5;
          const double best = bestSelfSpeedup(r);
          if (best < required) {
            std::fprintf(stderr,
                         "PERF REGRESSION at %s: sparse-mt self-speedup %.2fx < "
                         "required %.2fx (reference %.2fx at 8 cores, %u usable)\n",
                         r.name.c_str(), best, required, minSelf, usable);
            ++failures;
          } else {
            std::printf("%s self-speedup ok: %.2fx >= %.2fx (%u usable cores)\n",
                        r.name.c_str(), best, required, usable);
          }
        }
      }
    }
    if (matched == 0) {
      // Every point unmatched means the reference is stale or malformed —
      // a vacuous pass here would disarm the CI gate permanently.
      std::fprintf(stderr, "no operating point matched the reference %s\n",
                   checkPath.c_str());
      return 2;
    }
    if (failures > 0) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emitPath;
  std::string checkPath;
  std::string only;
  double tolerance = 0.30;
  bool harness = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--emit-json=", 12) == 0) {
      emitPath = arg + 12;
      harness = true;
    } else if (std::strncmp(arg, "--check=", 8) == 0) {
      checkPath = arg + 8;
      harness = true;
    } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::strtod(arg + 12, nullptr);
    } else if (std::strncmp(arg, "--point=", 8) == 0) {
      only = arg + 8;  // restrict the harness to one operating point
      harness = true;
    }
  }
  if (harness) {
    return runHarness(argv[0] != nullptr ? argv[0] : "", emitPath, checkPath,
                      tolerance, only);
  }

#ifdef SWFT_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "kernel_microbench was built without google-benchmark; only the\n"
               "harness mode is available (--emit-json/--check/--point).\n");
  return 2;
#endif
}
