// Kernel microbenchmarks: per-cycle engine cost, topology arithmetic, RNG
// throughput, CDG construction. These are true microbenchmarks (adaptive
// iteration counts), used to track simulator performance regressions.
#include <benchmark/benchmark.h>

#include "src/sim/network.hpp"
#include "src/verify/cdg.hpp"

using namespace swft;

namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngGeometric(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.geometric(0.01));
}
BENCHMARK(BM_RngGeometric);

void BM_TopoCoordsRoundTrip(benchmark::State& state) {
  const TorusTopology topo(8, static_cast<int>(state.range(0)));
  NodeId id = 0;
  for (auto _ : state) {
    const Coordinates c = topo.coordsOf(id);
    benchmark::DoNotOptimize(topo.idOf(c));
    id = (id + 97) % topo.nodeCount();
  }
}
BENCHMARK(BM_TopoCoordsRoundTrip)->Arg(2)->Arg(3)->Arg(4);

void BM_TopoNeighbor(benchmark::State& state) {
  const TorusTopology topo(8, 3);
  NodeId id = 0;
  int port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.neighbor(id, port));
    port = (port + 1) % topo.networkPorts();
    id = (id + 31) % topo.nodeCount();
  }
}
BENCHMARK(BM_TopoNeighbor);

void BM_EngineCyclesPerSecond(benchmark::State& state) {
  // Steady-state stepping cost of a loaded 8-ary n-cube.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = static_cast<int>(state.range(0));
  cfg.vcs = 4;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.004;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  Network net(cfg);
  net.step(2000);  // warm the network to steady state
  for (auto _ : state) {
    net.step(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EngineCyclesPerSecond)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_EngineSaturated(benchmark::State& state) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 10;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.05;  // deep saturation: worst-case per-cycle cost
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  Network net(cfg);
  net.step(5000);
  for (auto _ : state) {
    net.step(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EngineSaturated)->Unit(benchmark::kMicrosecond);

void BM_CdgBuild(benchmark::State& state) {
  const TorusTopology topo(static_cast<int>(state.range(0)), 2);
  const FaultSet faults(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildEcubeCdg(topo, faults, true).hasCycle());
  }
}
BENCHMARK(BM_CdgBuild)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SoftwareLayerTables(benchmark::State& state) {
  const TorusTopology topo(8, 3);
  FaultSet faults(topo);
  Rng rng(1);
  applyRandomNodeFaults(faults, 12, rng);
  for (auto _ : state) {
    const SoftwareLayer layer(topo, faults, 96);
    benchmark::DoNotOptimize(layer.tables(0).healthyLinkMask);
  }
}
BENCHMARK(BM_SoftwareLayerTables)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
