#include "src/routing/software_layer.hpp"

#include <algorithm>
#include <cassert>

namespace swft {

SoftwareLayer::SoftwareLayer(const TorusTopology& topo, const FaultSet& faults,
                             int livelockThreshold)
    : topo_(&topo),
      faults_(&faults),
      ecube_(topo),
      livelockThreshold_(livelockThreshold),
      tables_(topo.nodeCount()),
      healthyNodes_(faults.healthyNodes()),
      absorptionsAt_(topo.nodeCount(), 0) {
  // Precompute the three per-node software tables from the static fault map.
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    NodeTables& t = tables_[id];
    for (int dim = 0; dim < topo.dims(); ++dim) {
      for (Dir dir : {Dir::Pos, Dir::Neg}) {
        const int port = portOf(dim, dir);
        if (!faults.linkFaulty(id, dim, dir)) {
          t.healthyLinkMask |= static_cast<std::uint16_t>(1u << port);
        }
      }
    }
    for (int dim = 0; dim < topo.dims(); ++dim) {
      for (Dir dir : {Dir::Pos, Dir::Neg}) {
        const int port = portOf(dim, dir);
        const int revPort = portOf(dim, opposite(dir));
        // Table 2: blocked in (dim, dir) -> can we leave via (dim, -dir)?
        if (t.healthyLinkMask & (1u << revPort)) {
          t.reversalUsable |= static_cast<std::uint16_t>(1u << port);
        }
      }
      // Table 3: preferred orthogonal escape for a message blocked in `dim`:
      // the active-plane partner first, then any other healthy dimension.
      t.detourDim[dim] = -1;
      t.detourDirStep[dim] = 0;
      const int partner = planePartner(dim);
      auto tryDim = [&](int e) {
        if (e == dim || e < 0 || t.detourDirStep[dim] != 0) return;
        for (Dir dir : {Dir::Pos, Dir::Neg}) {
          if (t.healthyLinkMask & (1u << portOf(e, dir))) {
            t.detourDim[dim] = static_cast<std::int8_t>(e);
            t.detourDirStep[dim] = static_cast<std::int8_t>(dirStep(dir));
            return;
          }
        }
      };
      tryDim(partner);
      for (int e = 0; e < topo.dims(); ++e) tryDim(e);
    }
  }
}

int SoftwareLayer::planePartner(int dim) const noexcept {
  const int n = topo_->dims();
  if (n < 2) return -1;
  return dim < n - 1 ? dim + 1 : n - 2;
}

bool SoftwareLayer::linkHealthy(NodeId at, int dim, int dirStep) const noexcept {
  const Dir dir = dirStep > 0 ? Dir::Pos : Dir::Neg;
  return (tables_[at].healthyLinkMask & (1u << portOf(dim, dir))) != 0;
}

void SoftwareLayer::planReroute(Message& msg, NodeId at, Rng& rng) {
  ++stats_.absorptions;
  ++absorptionsAt_[at];
  ++msg.absorptions;

  // An adaptive message is downgraded to deterministic routing after its
  // first encounter with a fault (paper §4).
  msg.mode = RoutingMode::Deterministic;

  // Arrived at a planned software intermediate: promote the pending second
  // detour leg if one exists, otherwise resume toward the final destination;
  // then re-examine the locally known fault state.
  if (msg.absorbAtTarget && msg.curTarget == at) {
    if (msg.pendingTarget != kInvalidNode && msg.pendingTarget != at) {
      msg.curTarget = msg.pendingTarget;
      msg.pendingTarget = kInvalidNode;
      msg.absorbAtTarget = (msg.curTarget != msg.finalDest);
    } else {
      msg.pendingTarget = kInvalidNode;
      msg.curTarget = msg.finalDest;
      msg.absorbAtTarget = false;
    }
    ++stats_.reEvaluations;
  }

  // A direction override exists to steer one ring traversal around a fault;
  // once the message sits at a node where that dimension is already correct
  // (w.r.t. the final destination), the override has served its purpose.
  // Keeping it would force full ring orbits through the same fault cluster
  // on every later visit to the dimension (livelock).
  {
    const Coordinates cc = topo_->coordsOf(at);
    const Coordinates fc = topo_->coordsOf(msg.finalDest);
    for (int d = 0; d < topo_->dims(); ++d) {
      if (cc[d] == fc[d]) msg.dirOverride[d] = kNoOverride;
    }
  }

  int blockedDim = -1;
  int blockedStep = 0;
  if (msg.blockedValid) {
    blockedDim = msg.blockedDim;
    blockedStep = msg.blockedDirStep;
  } else {
    // Re-evaluation: does the next e-cube hop from here lead into a fault?
    const auto hop = ecube_.nextHop(msg, at);
    if (hop && faults_->linkFaulty(at, hop->dim, hop->dir)) {
      blockedDim = hop->dim;
      blockedStep = dirStep(hop->dir);
    }
  }
  msg.blockedValid = false;

  if (blockedDim >= 0) {
    handleBlocked(msg, at, blockedDim, blockedStep, rng);
  } else {
    // Clean resume: header simply continues toward the final destination.
    msg.consecutiveDetours = 0;
  }
}

void SoftwareLayer::handleBlocked(Message& msg, NodeId at, int dim, int step, Rng& rng) {
  if (livelockThreshold_ > 0 && msg.absorptions > livelockThreshold_) {
    escalate(msg, at, rng);
    return;
  }

  const NodeTables& t = tables_[at];
  const Dir blockedDir = step > 0 ? Dir::Pos : Dir::Neg;

  // Step 1 (paper §4): "when a message encounters a fault, it is first
  // re-routed in the same dimension in the opposite direction" — a header
  // rewrite that installs a direction override; the path stays
  // dimension-ordered. Applicable only if this dimension has not been
  // reversed already and table 2 says the surviving direction is usable.
  const bool alreadyOverridden = msg.dirOverride[dim] != kNoOverride;
  const bool reversalOk =
      (t.reversalUsable & (1u << portOf(dim, blockedDir))) != 0 && topo_->radix() >= 3;
  if (!alreadyOverridden && reversalOk) {
    msg.dirOverride[dim] = static_cast<std::int8_t>(-step);
    msg.consecutiveDetours = 0;
    ++stats_.reversals;
    return;
  }

  // Step 2: "if another fault is encountered, the message is routed in an
  // orthogonal dimension in an attempt to route around the faulty region" —
  // compute an intermediate node address in the active plane's partner
  // dimension; the message will be absorbed there and re-evaluated.
  const Coordinates cc = topo_->coordsOf(at);
  const Coordinates fc = topo_->coordsOf(msg.finalDest);

  int detourDim = -1;
  int detourStep = 0;
  // Boundary-following memory: keep sliding the same way along a region.
  if (msg.lastDetourDim >= 0 && msg.lastDetourDim != dim &&
      linkHealthy(at, msg.lastDetourDim, msg.lastDetourDirStep)) {
    detourDim = msg.lastDetourDim;
    detourStep = msg.lastDetourDirStep;
  }
  // Otherwise prefer the plane partner, minimal-direction first.
  if (detourDim < 0) {
    const int partner = planePartner(dim);
    if (partner >= 0) {
      InlineVector<int, 2> prefs;
      if (cc[partner] != fc[partner]) {
        prefs.push_back(dirStep(topo_->minimalDir(cc[partner], fc[partner])));
        prefs.push_back(-prefs[0]);
      } else {
        prefs.push_back(+1);
        prefs.push_back(-1);
      }
      for (int s : prefs) {
        if (linkHealthy(at, partner, s)) {
          detourDim = partner;
          detourStep = s;
          break;
        }
      }
    }
  }
  // Fall back to table 3's precomputed preference (any healthy orthogonal
  // dimension), then to reversing despite an existing override.
  if (detourDim < 0 && t.detourDirStep[dim] != 0) {
    detourDim = t.detourDim[dim];
    detourStep = t.detourDirStep[dim];
  }
  if (detourDim < 0) {
    if (reversalOk) {
      msg.dirOverride[dim] = static_cast<std::int8_t>(-step);
      msg.consecutiveDetours = 0;
      ++stats_.reversals;
      return;
    }
    escalate(msg, at, rng);
    return;
  }

  // Escalating detour length defeats ping-pong cycles along concave regions.
  const int maxLen = topo_->radix() - 1;
  int len = 1 + std::max(0, static_cast<int>(msg.consecutiveDetours) - 2);
  len = std::min(len, maxLen);

  // Walk up to `len` hops in the detour direction, stopping at the last
  // healthy node (the first hop is healthy: the link is).
  Coordinates ic = cc;
  NodeId inter = at;
  for (int i = 0; i < len; ++i) {
    Coordinates next = ic;
    next[detourDim] = topo_->space().wrap(next[detourDim] + detourStep);
    const NodeId nid = topo_->idOf(next);
    if (faults_->nodeFaulty(nid)) break;
    ic = next;
    inter = nid;
  }
  assert(inter != at && "detour link was healthy, first hop must succeed");

  msg.curTarget = inter;
  msg.absorbAtTarget = (inter != msg.finalDest);
  msg.lastDetourDim = static_cast<std::int8_t>(detourDim);
  msg.lastDetourDirStep = static_cast<std::int8_t>(detourStep);
  if (msg.consecutiveDetours < 255) ++msg.consecutiveDetours;
  ++stats_.detours;

  // Two-leg detour: when the sidestep dimension is LOWER than the blocked
  // dimension, dimension-order routing would restore it first and walk
  // straight back into the same fault. Plan a second intermediate that
  // advances past the fault in the blocked dimension before the lower
  // dimension is corrected again (chained software hops, assumption (i) ii).
  msg.pendingTarget = kInvalidNode;
  if (detourDim < dim) {
    const int k = topo_->radix();
    for (const int adv : {2, 3, 1, 4, 5, 6}) {
      if (adv >= k) continue;
      Coordinates rc = ic;
      rc[dim] = topo_->space().wrap(rc[dim] + adv * step);
      const NodeId leg2 = topo_->idOf(rc);
      if (!faults_->nodeFaulty(leg2)) {
        msg.pendingTarget = leg2;
        break;
      }
    }
  }
}

void SoftwareLayer::escalate(Message& msg, NodeId at, Rng& rng) {
  // Livelock guard: Valiant-style random healthy intermediate. The paper's
  // configurations never trigger this (asserted by tests); it exists so that
  // adversarial fault patterns still terminate.
  NodeId pick = at;
  for (int tries = 0; tries < 64 && (pick == at); ++tries) {
    pick = healthyNodes_[rng.uniform(static_cast<std::uint32_t>(healthyNodes_.size()))];
  }
  msg.curTarget = pick;
  msg.absorbAtTarget = (pick != msg.finalDest);
  msg.pendingTarget = kInvalidNode;
  std::fill(std::begin(msg.dirOverride), std::end(msg.dirOverride), kNoOverride);
  msg.lastDetourDim = -1;
  msg.lastDetourDirStep = 0;
  msg.consecutiveDetours = 0;
  ++stats_.escalations;
}

}  // namespace swft
