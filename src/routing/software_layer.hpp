// The messaging-layer side of Software-Based fault-tolerant routing
// (Suh et al. [1], extended to n dimensions per the paper, §4).
//
// When a header requires a faulty output channel, the router absorbs the
// message: it is ejected and handed to this layer at the local node. The
// layer rewrites the header using three per-node tables and re-injects the
// message (with priority over newly generated traffic, after Δ cycles):
//
//   table 1 (fault table)     — health of the 2n incident links;
//   table 2 (direction table) — per (blocked dim, dir): is the surviving
//                               ring direction usable for a same-dimension
//                               reversal?
//   table 3 (detour table)    — per dimension: the preferred orthogonal
//                               (dimension, direction) in the active
//                               dimension pair for routing around a region.
//
// The rewrite produces either a per-dimension direction override (option i
// of assumption (i): "modifies the header so the message may follow an
// alternative path") or an intermediate node address (option ii) at which
// the message will be absorbed again — chained software hops. Every
// in-network segment stays dimension-ordered, which keeps the channel
// dependency graph acyclic (see src/verify/cdg and DESIGN.md §2).
//
// The n-D extension: the active plane of a message blocked in dimension a is
// the consecutive pair (a, a+1) — or (n-2, n-1) when a is the last dimension
// — exactly the SW-Based-nD pairing of the paper's Fig. 2 pseudocode.
#pragma once

#include <vector>

#include "src/fault/fault_set.hpp"
#include "src/router/message.hpp"
#include "src/routing/ecube.hpp"
#include "src/util/rng.hpp"

namespace swft {

struct SoftwareLayerStats {
  std::uint64_t absorptions = 0;   // total software absorptions (= "messages queued")
  std::uint64_t reversals = 0;     // same-dimension direction reversals
  std::uint64_t detours = 0;       // orthogonal intermediate-node hops
  std::uint64_t escalations = 0;   // livelock-guard random intermediates
  std::uint64_t reEvaluations = 0; // absorptions at planned intermediates
};

class SoftwareLayer {
 public:
  SoftwareLayer(const TorusTopology& topo, const FaultSet& faults, int livelockThreshold);

  /// Rewrite the header of a message absorbed at node `at`. Mutates the
  /// message routing state; the caller handles queueing/re-injection timing.
  void planReroute(Message& msg, NodeId at, Rng& rng);

  [[nodiscard]] const SoftwareLayerStats& stats() const noexcept { return stats_; }

  /// Absorption events handled by the messaging layer of `node` so far.
  /// Identifies the hot software nodes around a fault region.
  [[nodiscard]] std::uint64_t absorptionsAt(NodeId node) const noexcept {
    return absorptionsAt_[node];
  }

  /// Active-plane partner of dimension `dim` (paper Fig. 2 pairing).
  [[nodiscard]] int planePartner(int dim) const noexcept;

  /// Exposed for tests: the per-node reroute tables.
  struct NodeTables {
    std::uint16_t healthyLinkMask = 0;       // table 1: bit portOf(dim,dir)
    std::uint16_t reversalUsable = 0;        // table 2: bit portOf(dim,dir) set iff
                                             //   reversing a hop blocked in (dim,dir)
                                             //   can leave via (dim, -dir)
    std::int8_t detourDim[kMaxDims] = {};    // table 3: preferred orthogonal dim
    std::int8_t detourDirStep[kMaxDims] = {};//   and direction (0 if none usable)
  };
  [[nodiscard]] const NodeTables& tables(NodeId node) const noexcept {
    return tables_[node];
  }

 private:
  void handleBlocked(Message& msg, NodeId at, int dim, int dirStep, Rng& rng);
  void escalate(Message& msg, NodeId at, Rng& rng);
  [[nodiscard]] bool linkHealthy(NodeId at, int dim, int dirStep) const noexcept;

  const TorusTopology* topo_;
  const FaultSet* faults_;
  EcubeRouting ecube_;
  int livelockThreshold_;
  SoftwareLayerStats stats_;
  std::vector<NodeTables> tables_;
  std::vector<NodeId> healthyNodes_;
  std::vector<std::uint64_t> absorptionsAt_;
};

}  // namespace swft
