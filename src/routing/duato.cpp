#include "src/routing/duato.hpp"

namespace swft {

InlineVector<Hop, kMaxDims> DuatoRouting::profitableHops(const Message& msg,
                                                         NodeId cur) const {
  InlineVector<Hop, kMaxDims> hops;
  const Coordinates cc = topo_->coordsOf(cur);
  const Coordinates tc = topo_->coordsOf(msg.curTarget);
  for (int d = 0; d < topo_->dims(); ++d) {
    if (cc[d] == tc[d]) continue;
    hops.push_back(Hop{static_cast<std::uint8_t>(d), topo_->minimalDir(cc[d], tc[d])});
  }
  return hops;
}

RouteDecision DuatoRouting::route(const Message& msg, NodeId cur, const FaultSet& faults,
                                  const VcPartition& part) const {
  const auto profitable = profitableHops(msg, cur);
  if (profitable.empty()) return RouteDecision::deliver();

  RouteDecision d;
  d.kind = RouteDecision::Kind::Forward;

  // Fully adaptive candidates: any healthy minimal hop on an adaptive VC.
  const VcMask adaptive = part.adaptiveMask();
  int healthyProfitable = 0;
  for (const Hop& hop : profitable) {
    if (faults.linkFaulty(cur, hop.dim, hop.dir)) continue;
    ++healthyProfitable;
    if (adaptive != 0) {
      d.candidates.push_back(
          RouteCandidate{static_cast<std::uint8_t>(portOf(hop.dim, hop.dir)), adaptive});
    }
  }

  // Escape candidate: the e-cube hop on the escape VC of the wrap class.
  const auto escapeHop = ecube_.nextHop(msg, cur);  // non-null: target not reached
  if (!faults.linkFaulty(cur, escapeHop->dim, escapeHop->dir)) {
    const int wrapClass = msg.wrapped(escapeHop->dim) ? 1 : 0;
    d.candidates.push_back(
        RouteCandidate{static_cast<std::uint8_t>(portOf(escapeHop->dim, escapeHop->dir)),
                       part.escapeMask(wrapClass)});
  }

  if (healthyProfitable == 0) {
    // "Once a message finds the outgoing channel at a node leads to a fault
    // [with no profitable alternative], the message is absorbed" (§4).
    return RouteDecision::absorb(escapeHop->dim, escapeHop->dir);
  }
  return d;
}

}  // namespace swft
