// Virtual-channel organisation (paper §2, §4).
//
// Torus deterministic routing needs two VC classes per physical channel to
// break the wrap-around cycle (Dally–Seitz): class 0 before a message crosses
// the dimension's wrap link, class 1 after. We map class c to the VCs whose
// index has parity c, so every class keeps V/2 buffers.
//
// Duato's Protocol reserves VC0/VC1 as the escape pair (classes 0/1 of the
// e-cube sub-function) and offers VC2..V-1 as fully adaptive channels.
#pragma once

#include <cstdint>

#include "src/router/message.hpp"

namespace swft {

/// Bitmask over virtual channel indices (V <= 16).
using VcMask = std::uint16_t;
inline constexpr int kMaxVcs = 16;

class VcPartition {
 public:
  /// `escapeVcs` (adaptive mode only) sets the size of the escape pool;
  /// it must be even (half per wrap class) and >= 2. The remaining
  /// VCs are fully adaptive. Deterministic mode ignores it (all VCs escape).
  explicit VcPartition(RoutingMode mode, int vcs, int escapeVcs = 2);

  [[nodiscard]] int vcs() const noexcept { return vcs_; }
  [[nodiscard]] RoutingMode mode() const noexcept { return mode_; }

  /// VCs usable by the e-cube (escape / deterministic) sub-function for a
  /// message in wrap class `wrapClass` (0 or 1).
  [[nodiscard]] VcMask escapeMask(int wrapClass) const noexcept {
    return escape_[wrapClass];
  }

  /// VCs usable by fully adaptive hops (empty under deterministic routing).
  [[nodiscard]] VcMask adaptiveMask() const noexcept { return adaptive_; }

  /// Number of escape VCs (both classes combined).
  [[nodiscard]] int escapeCount() const noexcept { return escapeCount_; }

 private:
  RoutingMode mode_;
  int vcs_;
  int escapeCount_;
  VcMask escape_[2]{};
  VcMask adaptive_ = 0;
};

}  // namespace swft
