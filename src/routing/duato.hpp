// Duato's Protocol (DP) fully adaptive routing [Duato 1993] on top of the
// e-cube escape sub-function — the adapRouting2D/SW-Based-nD adaptive
// routing function.
//
// A header may take any minimal ("profitable") hop on an adaptive VC, or the
// e-cube hop on the escape VC of its wrap class. Deadlock freedom follows
// from the escape sub-function's acyclic extended dependency graph.
//
// Fault handling per the paper (§4): the message is absorbed only when every
// profitable output channel is faulty; after the first absorption it is
// downgraded to deterministic routing permanently.
#pragma once

#include "src/fault/fault_set.hpp"
#include "src/router/message.hpp"
#include "src/routing/ecube.hpp"
#include "src/routing/types.hpp"

namespace swft {

class DuatoRouting {
 public:
  explicit DuatoRouting(const TorusTopology& topo) : topo_(&topo), ecube_(topo) {}

  /// Route decision for an adaptive-mode header. Messages downgraded to
  /// deterministic mode must be routed through EcubeRouting instead.
  [[nodiscard]] RouteDecision route(const Message& msg, NodeId cur, const FaultSet& faults,
                                    const VcPartition& part) const;

  /// Profitable (minimal) hops from cur toward the target, healthy or not.
  [[nodiscard]] InlineVector<Hop, kMaxDims> profitableHops(const Message& msg,
                                                           NodeId cur) const;

 private:
  const TorusTopology* topo_;
  EcubeRouting ecube_;
};

}  // namespace swft
