// Deterministic dimension-order (e-cube) routing with per-dimension direction
// overrides — the detRouting2D/SW-Based-nD deterministic sub-function.
//
// In the fault-free case this is exactly e-cube: correct the lowest unmatched
// dimension first, taking the minimal ring direction. A direction override
// installed by the messaging layer forces the non-minimal ring direction in a
// dimension (the "re-route in the same dimension in the opposite direction"
// step of the Software-Based scheme); the path remains dimension-ordered, so
// every in-network segment keeps the acyclic e-cube dependency structure.
#pragma once

#include <optional>

#include "src/fault/fault_set.hpp"
#include "src/router/message.hpp"
#include "src/routing/types.hpp"

namespace swft {

struct Hop {
  std::uint8_t dim = 0;
  Dir dir = Dir::Pos;

  friend bool operator==(const Hop&, const Hop&) = default;
};

class EcubeRouting {
 public:
  explicit EcubeRouting(const TorusTopology& topo) : topo_(&topo) {}

  /// Next hop from `cur` toward `msg.curTarget`, honouring overrides.
  /// nullopt iff cur == curTarget.
  [[nodiscard]] std::optional<Hop> nextHop(const Message& msg, NodeId cur) const;

  /// Full route decision: Deliver / Forward(single candidate) / Absorb.
  [[nodiscard]] RouteDecision route(const Message& msg, NodeId cur, const FaultSet& faults,
                                    const VcPartition& part) const;

  /// The complete hop-by-hop path from `cur` to the target assuming no
  /// faults interrupt it (used by the CDG verifier and tests).
  [[nodiscard]] std::vector<Hop> tracePath(const Message& msg, NodeId cur) const;

 private:
  const TorusTopology* topo_;
};

}  // namespace swft
