// Shared routing-decision types exchanged between the routing functions and
// the router pipeline.
#pragma once

#include "src/routing/vc_partition.hpp"
#include "src/topology/torus.hpp"
#include "src/util/inline_vector.hpp"

namespace swft {

/// One admissible (output port, VC set) pair for a header flit.
struct RouteCandidate {
  std::uint8_t outPort = 0;
  VcMask vcs = 0;

  friend bool operator==(const RouteCandidate&, const RouteCandidate&) = default;
};

/// Outcome of route computation for a header at an intermediate router.
struct RouteDecision {
  enum class Kind : std::uint8_t {
    Forward,  // proceed through one of `candidates`
    Deliver,  // current node is the routing target: eject
    Absorb,   // required channel(s) faulty: eject to the messaging layer
  };

  Kind kind = Kind::Forward;
  InlineVector<RouteCandidate, 2 * kMaxDims + 1> candidates;
  // Valid when kind == Absorb: the hop that was blocked by the fault.
  std::uint8_t blockedDim = 0;
  std::int8_t blockedDirStep = 0;

  static RouteDecision deliver() {
    RouteDecision d;
    d.kind = Kind::Deliver;
    return d;
  }
  static RouteDecision absorb(int dim, Dir dir) {
    RouteDecision d;
    d.kind = Kind::Absorb;
    d.blockedDim = static_cast<std::uint8_t>(dim);
    d.blockedDirStep = static_cast<std::int8_t>(dirStep(dir));
    return d;
  }
};

}  // namespace swft
