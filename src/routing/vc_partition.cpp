#include "src/routing/vc_partition.hpp"

#include <stdexcept>

namespace swft {

VcPartition::VcPartition(RoutingMode mode, int vcs, int escapeVcs)
    : mode_(mode), vcs_(vcs) {
  if (vcs < 2 || vcs > kMaxVcs) {
    throw std::invalid_argument("VcPartition: need 2 <= V <= 16 (torus wrap classes)");
  }
  if (mode == RoutingMode::Deterministic) {
    // All VCs belong to the e-cube function, split into the two wrap classes
    // by index parity so both classes keep buffers for any V >= 2.
    escapeCount_ = vcs;
    for (int v = 0; v < vcs; ++v) {
      escape_[v & 1] |= static_cast<VcMask>(1u << v);
    }
    adaptive_ = 0;
  } else {
    // Duato's protocol: an escape pool (default VC0/VC1) split between the
    // two wrap classes by parity, the rest fully adaptive.
    if (escapeVcs < 2 || escapeVcs > vcs || escapeVcs % 2 != 0) {
      throw std::invalid_argument("VcPartition: escapeVcs must be even, in [2, V]");
    }
    escapeCount_ = escapeVcs;
    for (int v = 0; v < escapeVcs; ++v) {
      escape_[v & 1] |= static_cast<VcMask>(1u << v);
    }
    for (int v = escapeVcs; v < vcs; ++v) adaptive_ |= static_cast<VcMask>(1u << v);
  }
}

}  // namespace swft
