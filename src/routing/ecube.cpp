#include "src/routing/ecube.hpp"

namespace swft {

std::optional<Hop> EcubeRouting::nextHop(const Message& msg, NodeId cur) const {
  const Coordinates cc = topo_->coordsOf(cur);
  const Coordinates tc = topo_->coordsOf(msg.curTarget);
  for (int d = 0; d < topo_->dims(); ++d) {
    if (cc[d] == tc[d]) continue;
    Dir dir;
    if (msg.dirOverride[d] != kNoOverride) {
      dir = msg.dirOverride[d] > 0 ? Dir::Pos : Dir::Neg;
    } else {
      dir = topo_->minimalDir(cc[d], tc[d]);
    }
    return Hop{static_cast<std::uint8_t>(d), dir};
  }
  return std::nullopt;
}

RouteDecision EcubeRouting::route(const Message& msg, NodeId cur, const FaultSet& faults,
                                  const VcPartition& part) const {
  const auto hop = nextHop(msg, cur);
  if (!hop) return RouteDecision::deliver();
  if (faults.linkFaulty(cur, hop->dim, hop->dir)) {
    return RouteDecision::absorb(hop->dim, hop->dir);
  }
  RouteDecision d;
  d.kind = RouteDecision::Kind::Forward;
  const int wrapClass = msg.wrapped(hop->dim) ? 1 : 0;
  d.candidates.push_back(RouteCandidate{
      static_cast<std::uint8_t>(portOf(hop->dim, hop->dir)), part.escapeMask(wrapClass)});
  return d;
}

std::vector<Hop> EcubeRouting::tracePath(const Message& msg, NodeId cur) const {
  std::vector<Hop> path;
  Message probe = msg;  // local copy: we only read routing fields
  NodeId at = cur;
  while (auto hop = nextHop(probe, at)) {
    path.push_back(*hop);
    at = topo_->neighbor(at, hop->dim, hop->dir);
    // Guard against pathological overrides looping a full ring forever.
    if (path.size() > static_cast<std::size_t>(topo_->dims() * topo_->radix() + 1)) break;
  }
  return path;
}

}  // namespace swft
