// FNV-1a 64-bit hashing. One implementation shared by the experiment
// sharder and the result cache: both promise that the same bytes hash to
// the same value on every machine, compiler and standard library (which
// std::hash does not), so the function lives here rather than in either
// layer.
#pragma once

#include <cstdint>
#include <string_view>

namespace swft {

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t seed =
                                                  kFnv1a64OffsetBasis) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace swft
