#include "src/util/rng.hpp"

#include <bit>
#include <cmath>

namespace swft {

std::uint64_t Rng::geometric(double p) noexcept {
  if (p <= 0.0) return ~0ULL;  // effectively "never"
  if (p >= 1.0) return 1;
  // Inverse-CDF sampling: ceil(log(1-u)/log(1-p)) >= 1.
  const double u = uniform01();
  const double v = std::log1p(-u) / std::log1p(-p);
  const double n = std::ceil(v);
  return n < 1.0 ? 1 : static_cast<std::uint64_t>(n);
}

int Rng::randomSetBit(std::uint64_t mask) noexcept {
  const int n = std::popcount(mask);
  if (n == 0) return -1;
  int k = static_cast<int>(uniform(static_cast<std::uint32_t>(n)));
  while (k-- > 0) mask &= mask - 1;  // drop k lowest set bits
  return std::countr_zero(mask);
}

}  // namespace swft
