// A fixed-capacity vector that lives entirely on the stack.
//
// Routing candidate lists, coordinates and per-router scratch arrays are tiny
// (bounded by 2*n+1 ports or kMaxDims dimensions); using a heap-backed
// std::vector in the per-cycle hot path would dominate the simulation cost.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

namespace swft {

template <typename T, std::size_t Capacity>
class InlineVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVector is intended for small trivially copyable types");

 public:
  using value_type = T;

  constexpr InlineVector() noexcept = default;
  constexpr InlineVector(std::initializer_list<T> init) noexcept {
    assert(init.size() <= Capacity);
    for (const T& v : init) data_[size_++] = v;
  }

  constexpr void push_back(const T& v) noexcept {
    assert(size_ < Capacity);
    data_[size_++] = v;
  }
  constexpr void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }
  constexpr void clear() noexcept { size_ = 0; }
  constexpr void resize(std::size_t n, T fill = T{}) noexcept {
    assert(n <= Capacity);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return Capacity; }

  constexpr T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  constexpr T& back() noexcept { return (*this)[size_ - 1]; }
  constexpr const T& back() const noexcept { return (*this)[size_ - 1]; }

  constexpr T* begin() noexcept { return data_; }
  constexpr T* end() noexcept { return data_ + size_; }
  constexpr const T* begin() const noexcept { return data_; }
  constexpr const T* end() const noexcept { return data_ + size_; }

  friend constexpr bool operator==(const InlineVector& a, const InlineVector& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (!(a.data_[i] == b.data_[i])) return false;
    return true;
  }

 private:
  T data_[Capacity]{};
  std::size_t size_ = 0;
};

}  // namespace swft
