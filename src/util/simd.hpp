// Thin SIMD layer for the engine's multi-word row sweeps: active-set and
// work-set walks (find the next/previous nonzero word) and the
// switch-allocation port sweep (AND one qualified mask against consecutive
// per-port membership rows).
//
// Implementation: GCC/Clang generic vector extensions (vector_size), which
// compile to whatever the target ISA offers (SSE2/AVX2/NEON/...) and to
// plain scalar code elsewhere — no intrinsics, no runtime dispatch tables.
// Every helper also carries a scalar loop that is the *definition* of its
// result; the vector path merely skips ahead in bigger strides. The scalar
// path can be forced at runtime (SWFT_FORCE_SCALAR=1 in the environment, or
// setForceScalar() from tests), and the fuzz harness asserts bit-identical
// SimResults between the two modes.
//
// All loads go through std::memcpy, so no alignment is required of callers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace swft::simd {

#if defined(__GNUC__) || defined(__clang__)
#define SWFT_SIMD_VEC 1
typedef std::uint64_t V4 __attribute__((vector_size(32)));
#else
#define SWFT_SIMD_VEC 0
#endif

/// Compile-time ISA the vector extensions lower to (bench metadata).
[[nodiscard]] constexpr const char* isaName() noexcept {
#if !SWFT_SIMD_VEC
  return "scalar-only";
#elif defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

// -1 unset (read SWFT_FORCE_SCALAR on first use), else 0/1. Relaxed atomic:
// the flag is a mode switch flipped only between runs (tests, env), never
// mid-sweep, but mt workers read it concurrently.
inline std::atomic<int>& forceScalarState() noexcept {
  static std::atomic<int> state{-1};
  return state;
}

/// True when the scalar fallback paths are forced (SWFT_FORCE_SCALAR=1, or
/// setForceScalar(true)). Both modes produce bit-identical results; the
/// switch exists so the fallback stays tested and so benches can compare.
[[nodiscard]] inline bool forceScalar() noexcept {
  std::atomic<int>& s = forceScalarState();
  int v = s.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("SWFT_FORCE_SCALAR");
    v = (e != nullptr && e[0] != '\0' && e[0] != '0') ? 1 : 0;
    s.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

/// Test hook: override the environment-derived mode at runtime.
inline void setForceScalar(bool on) noexcept {
  forceScalarState().store(on ? 1 : 0, std::memory_order_relaxed);
}

inline constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// First index in [from, n) with w[i] != 0, or n when none.
[[nodiscard]] inline std::size_t findNonZero(const std::uint64_t* w,
                                             std::size_t from,
                                             std::size_t n) noexcept {
  std::size_t i = from;
#if SWFT_SIMD_VEC
  if (!forceScalar()) {
    while (i + 4 <= n) {
      V4 v;
      std::memcpy(&v, w + i, sizeof v);
      if ((v[0] | v[1] | v[2] | v[3]) != 0) break;
      i += 4;
    }
  }
#endif
  while (i < n && w[i] == 0) ++i;
  return i;
}

/// Last index in [0, from] with w[i] != 0, or kNone when none.
[[nodiscard]] inline std::size_t findNonZeroDown(const std::uint64_t* w,
                                                 std::size_t from) noexcept {
  std::size_t end = from + 1;  // exclusive upper bound of the scan
#if SWFT_SIMD_VEC
  if (!forceScalar()) {
    while (end >= 4) {
      V4 v;
      std::memcpy(&v, w + end - 4, sizeof v);
      if ((v[0] | v[1] | v[2] | v[3]) != 0) break;
      end -= 4;
    }
  }
#endif
  while (end > 0) {
    if (w[end - 1] != 0) return end - 1;
    --end;
  }
  return kNone;
}

/// The switch-allocation port sweep: okp[p] = ok & members[p] for p in
/// [0, ports), over `ports` consecutive 64-bit membership rows. Returns the
/// port mask with bit p set iff okp[p] != 0. The pass *assigns* every row —
/// callers need no zeroing prelude.
[[nodiscard]] inline std::uint64_t qualifyPorts(std::uint64_t ok,
                                               const std::uint64_t* members,
                                               std::uint64_t* okp,
                                               int ports) noexcept {
  std::uint64_t pm = 0;
  int p = 0;
#if SWFT_SIMD_VEC
  if (!forceScalar()) {
    const V4 okv = {ok, ok, ok, ok};
    for (; p + 4 <= ports; p += 4) {
      V4 m;
      std::memcpy(&m, members + p, sizeof m);
      const V4 q = m & okv;
      std::memcpy(okp + p, &q, sizeof q);
      pm |= (static_cast<std::uint64_t>(q[0] != 0) << p) |
            (static_cast<std::uint64_t>(q[1] != 0) << (p + 1)) |
            (static_cast<std::uint64_t>(q[2] != 0) << (p + 2)) |
            (static_cast<std::uint64_t>(q[3] != 0) << (p + 3));
    }
  }
#endif
  for (; p < ports; ++p) {
    const std::uint64_t q = ok & members[p];
    okp[p] = q;
    pm |= static_cast<std::uint64_t>(q != 0) << p;
  }
  return pm;
}

}  // namespace swft::simd
