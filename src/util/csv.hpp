// Minimal CSV emitter used by the benchmark harness to dump experiment rows
// in a form that plots directly (one row per sweep point).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace swft {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append one row; the number of cells must match the header.
  void addRow(std::vector<std::string> cells);

  template <typename... Ts>
  void addRowOf(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(Ts));
    (cells.push_back(toCell(values)), ...);
    addRow(std::move(cells));
  }

  [[nodiscard]] std::string str() const;
  void writeFile(const std::string& path) const;
  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  template <typename T>
  static std::string toCell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }
  static std::string escape(std::string_view cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swft
