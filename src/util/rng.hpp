// Deterministic, splittable pseudo-random number generation for simulations.
//
// All stochastic behaviour in the simulator (traffic generation, destination
// selection, virtual-channel choice, fault placement) is driven by streams
// derived from a single root seed, so every experiment is bit-reproducible.
#pragma once

#include <cstdint>

namespace swft {

/// SplitMix64: used to expand seeds into xoshiro state and to derive
/// independent sub-streams (one per node, per sweep point, ...).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDBA5EBA11ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Derive an independent stream; `salt` distinguishes sibling streams.
  [[nodiscard]] Rng split(std::uint64_t salt) const noexcept {
    std::uint64_t mix = s_[0] ^ (s_[1] * 0x9E3779B97F4A7C15ULL) ^ salt;
    return Rng{splitmix64(mix) ^ s_[2]};
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Unbiased via rejection (Lemire's method).
  std::uint32_t uniform(std::uint32_t bound) noexcept {
    auto x = static_cast<std::uint32_t>(next() >> 32);
    auto m = static_cast<std::uint64_t>(x) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        x = static_cast<std::uint32_t>(next() >> 32);
        m = static_cast<std::uint64_t>(x) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// One Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Geometric inter-arrival sample (number of cycles until next arrival,
  /// >= 1) for a Bernoulli-per-cycle approximation of a Poisson process.
  std::uint64_t geometric(double p) noexcept;

  /// Pick a uniformly random set bit position of a non-zero mask.
  int randomSetBit(std::uint64_t mask) noexcept;

  // Standard-library compatibility (UniformRandomBitGenerator).
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace swft
