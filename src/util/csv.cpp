#include "src/util/csv.hpp"

#include <stdexcept>

namespace swft {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needsQuoting = cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needsQuoting) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out += ',';
    out += escape(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  }
  return out;
}

void CsvWriter::writeFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvWriter: cannot open " + path);
  f << str();
}

}  // namespace swft
