#include "src/verify/cdg.hpp"

#include <algorithm>

namespace swft {

ChannelDependencyGraph::ChannelDependencyGraph(const TorusTopology& topo, int classes)
    : topo_(&topo), classes_(classes) {
  adjacency_.resize(static_cast<std::size_t>(topo.nodeCount()) *
                    static_cast<std::size_t>(topo.networkPorts()) *
                    static_cast<std::size_t>(classes));
}

std::size_t ChannelDependencyGraph::indexOf(const ChannelClass& c) const noexcept {
  return (static_cast<std::size_t>(c.node) * static_cast<std::size_t>(topo_->networkPorts()) +
          c.port) *
             static_cast<std::size_t>(classes_) +
         c.vcClass;
}

std::size_t ChannelDependencyGraph::edgeCount() const noexcept {
  std::size_t n = 0;
  for (const auto& adj : adjacency_) n += adj.size();
  return n;
}

void ChannelDependencyGraph::addDependency(const ChannelClass& from, const ChannelClass& to) {
  auto& adj = adjacency_[indexOf(from)];
  const auto v = static_cast<std::uint32_t>(indexOf(to));
  if (std::find(adj.begin(), adj.end(), v) == adj.end()) adj.push_back(v);
}

bool ChannelDependencyGraph::hasCycle() const {
  // Iterative three-colour DFS.
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> colour(adjacency_.size(), White);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t root = 0; root < adjacency_.size(); ++root) {
    if (colour[root] != White) continue;
    stack.emplace_back(root, 0);
    colour[root] = Grey;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adjacency_[v].size()) {
        const std::uint32_t u = adjacency_[v][next++];
        if (colour[u] == Grey) return true;
        if (colour[u] == White) {
          colour[u] = Grey;
          stack.emplace_back(u, 0);
        }
      } else {
        colour[v] = Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

ChannelDependencyGraph buildEcubeCdg(const TorusTopology& topo, const FaultSet& faults,
                                     bool wrapClasses) {
  ChannelDependencyGraph cdg(topo, 2);
  EcubeRouting ecube(topo);
  const auto healthy = faults.healthyNodes();
  for (NodeId src : healthy) {
    for (NodeId dst : healthy) {
      if (src == dst) continue;
      Message probe;
      probe.curTarget = dst;
      probe.finalDest = dst;
      NodeId at = src;
      bool havePrev = false;
      ChannelClass prev;
      std::uint8_t wrapped = 0;
      while (auto hop = ecube.nextHop(probe, at)) {
        ChannelClass cur;
        cur.node = at;
        cur.port = static_cast<std::uint8_t>(portOf(hop->dim, hop->dir));
        const bool w = wrapClasses && ((wrapped >> hop->dim) & 1u);
        cur.vcClass = w ? 1 : 0;
        if (havePrev) cdg.addDependency(prev, cur);
        if (topo.isWrapLink(at, hop->dim, hop->dir)) {
          wrapped |= static_cast<std::uint8_t>(1u << hop->dim);
        }
        at = topo.neighbor(at, hop->dim, hop->dir);
        prev = cur;
        havePrev = true;
      }
    }
  }
  return cdg;
}

}  // namespace swft
