// Channel-dependency-graph construction and acyclicity checking.
//
// Mechanizes the paper's §4 deadlock-freedom argument: a routing function is
// deadlock-free if its channel dependency graph (vertices = virtual channels,
// edges = "a message holding c1 may request c2") is acyclic [Dally-Seitz 87].
// We enumerate the e-cube sub-function's paths for every healthy (src, dst)
// pair and record the (channel, wrap-class) transitions. Tests assert
// acyclicity with the Dally-Seitz class split and demonstrate that removing
// the split (collapsing both classes) re-introduces cycles on rings k >= 3.
#pragma once

#include <cstdint>
#include <vector>

#include "src/fault/fault_set.hpp"
#include "src/routing/ecube.hpp"

namespace swft {

/// A virtual-channel resource class: directed link (node, port) + VC class.
struct ChannelClass {
  NodeId node = 0;
  std::uint8_t port = 0;
  std::uint8_t vcClass = 0;  // Dally-Seitz wrap class (0/1)

  friend bool operator==(const ChannelClass&, const ChannelClass&) = default;
};

class ChannelDependencyGraph {
 public:
  explicit ChannelDependencyGraph(const TorusTopology& topo, int classes = 2);

  [[nodiscard]] std::size_t vertexCount() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edgeCount() const noexcept;

  void addDependency(const ChannelClass& from, const ChannelClass& to);
  [[nodiscard]] bool hasCycle() const;

  [[nodiscard]] std::size_t indexOf(const ChannelClass& c) const noexcept;

 private:
  const TorusTopology* topo_;
  int classes_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

/// Build the CDG induced by dimension-order routing over all healthy
/// (src, dst) pairs. `wrapClasses` false collapses the two Dally-Seitz
/// classes into one (the negative control).
[[nodiscard]] ChannelDependencyGraph buildEcubeCdg(const TorusTopology& topo,
                                                   const FaultSet& faults,
                                                   bool wrapClasses = true);

}  // namespace swft
