#include "src/harness/experiment_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace swft {

ExperimentRegistry& ExperimentRegistry::instance() {
  // Function-local static: safe to call from other TUs' static initialisers.
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(ExperimentSpec spec) {
  if (spec.name.empty() || !spec.build) {
    throw std::invalid_argument("experiment registration needs a name and a builder");
  }
  if (find(spec.name) != nullptr) {
    throw std::invalid_argument("duplicate experiment name '" + spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::find(std::string_view name) const noexcept {
  for (const ExperimentSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::all() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const ExperimentSpec& s : specs_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) { return a->name < b->name; });
  return out;
}

}  // namespace swft
