#include "src/harness/sweep.hpp"

#include <atomic>
#include <mutex>
#include <thread>

namespace swft {

std::vector<SweepRow> runSweep(std::vector<SweepPoint> points, int threads,
                               const std::function<void(const SweepRow&)>& onDone) {
  std::vector<SweepRow> rows(points.size());
  if (points.empty()) return rows;

  unsigned nThreads = threads > 0 ? static_cast<unsigned>(threads)
                                  : std::max(1u, std::thread::hardware_concurrency());
  nThreads = std::min<unsigned>(nThreads, static_cast<unsigned>(points.size()));

  std::atomic<std::size_t> nextIndex{0};
  std::mutex doneMutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      SweepRow row;
      row.point = points[i];
      row.result = runSimulation(points[i].cfg);
      if (onDone) {
        const std::lock_guard<std::mutex> lock(doneMutex);
        onDone(row);
      }
      rows[i] = std::move(row);
    }
  };

  if (nThreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return rows;
}

std::vector<double> rateGrid(double maxRate, int steps) {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(steps));
  for (int i = 1; i <= steps; ++i) {
    grid.push_back(maxRate * static_cast<double>(i) / static_cast<double>(steps));
  }
  return grid;
}

}  // namespace swft
