#include "src/harness/sweep.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "src/sim/engine_mt.hpp"

namespace swft {

unsigned sweepPoolThreads(int requested, unsigned hardwareConcurrency,
                          int maxSimThreads) noexcept {
  const unsigned hc = std::max(1u, hardwareConcurrency);
  const unsigned sim = static_cast<unsigned>(std::max(1, maxSimThreads));
  const unsigned budget = std::max(1u, hc / sim);
  if (requested <= 0) return budget;
  const unsigned want = static_cast<unsigned>(requested);
  return sim <= 1 ? want : std::min(want, budget);
}

std::vector<SweepRow> runSweep(std::vector<SweepPoint> points, int threads,
                               const std::function<void(const SweepRow&)>& onDone) {
  std::vector<SweepRow> rows(points.size());
  if (points.empty()) return rows;

  // Oversubscription guard: a sparse-mt point spins up its own domain
  // workers, so the pool budget shrinks by the widest point in the grid.
  int maxSim = 1;
  for (const SweepPoint& p : points) {
    if (p.cfg.engine != EngineKind::SparseMt) continue;
    int nodes = 1;
    for (int d = 0; d < p.cfg.dims; ++d) nodes *= p.cfg.radix;
    maxSim = std::max(maxSim, mtEffectiveDomains(nodes, p.cfg.simThreads));
  }
  unsigned nThreads =
      sweepPoolThreads(threads, std::thread::hardware_concurrency(), maxSim);
  nThreads = std::min<unsigned>(nThreads, static_cast<unsigned>(points.size()));

  std::atomic<std::size_t> nextIndex{0};
  std::mutex doneMutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      SweepRow row;
      row.point = points[i];
      row.result = runSimulation(points[i].cfg);
      if (onDone) {
        const std::lock_guard<std::mutex> lock(doneMutex);
        onDone(row);
      }
      rows[i] = std::move(row);
    }
  };

  if (nThreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return rows;
}

std::vector<double> rateGrid(double maxRate, int steps) {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(steps));
  for (int i = 1; i <= steps; ++i) {
    grid.push_back(maxRate * static_cast<double>(i) / static_cast<double>(steps));
  }
  return grid;
}

}  // namespace swft
