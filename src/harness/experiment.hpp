// Declarative experiment subsystem: an experiment is a named grid of
// SweepPoints plus presentation metadata. Specs are registered once (see
// experiment_registry.hpp) and driven uniformly by the `swft_bench` tool:
// one code path for the thread pool, deterministic cross-machine sharding,
// table output and the CSV/JSON artifacts — instead of one hand-rolled
// main() per paper figure.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/harness/result_cache.hpp"
#include "src/harness/sweep.hpp"

namespace swft {

struct ExperimentSpec {
  std::string name;         // registry key and artifact basename, e.g. "fig6"
  std::string description;  // one-line caption shown by --list and above tables
  // Build the full point grid. Called at run time (not registration time) so
  // builders can consult SWFT_SCALE and other environment knobs.
  std::function<std::vector<SweepPoint>()> build;
  std::vector<std::string> columns;  // result columns for the text table
  // Optional: extra stdout after the table (analytic-model comparison,
  // heatmap renderings, ...). Receives the completed rows of this run.
  std::function<std::string(const std::vector<SweepRow>&)> epilogue;
};

/// Deterministic shard selector: shard i of N runs the points whose stable
/// label hash falls in residue class i. index is 0-based, 0 <= index < count.
struct ShardSpec {
  int index = 0;
  int count = 1;

  [[nodiscard]] bool isAll() const noexcept { return count <= 1; }
};

/// Parse "i/N" (e.g. "0/4"). Throws std::invalid_argument on malformed input
/// or out-of-range indices.
[[nodiscard]] ShardSpec parseShard(const std::string& text);

/// FNV-1a 64-bit over the label bytes. Stable across platforms, compilers and
/// standard libraries (unlike std::hash) — the sharding contract is that the
/// same label lands in the same shard on every machine.
[[nodiscard]] std::uint64_t stableLabelHash(std::string_view label) noexcept;

[[nodiscard]] bool inShard(std::string_view label, const ShardSpec& shard) noexcept;

/// Partition a point grid down to one shard, preserving order.
[[nodiscard]] std::vector<SweepPoint> shardPoints(std::vector<SweepPoint> points,
                                                  const ShardSpec& shard);

enum class OutputFormat : std::uint8_t { Csv, Json };

struct RunOptions {
  ShardSpec shard;
  int threads = 0;  // <= 0: hardware concurrency (runSweep convention)
  // > 0: run every point on the sparse-mt engine with this many domain
  // workers (engine=sparse-mt, sim_threads=N). Results are bit-identical to
  // the default engine; runSweep's oversubscription guard derates the pool
  // so pool_threads x sim_threads stays within hardware concurrency.
  int simThreads = 0;
  // Enable SimConfig::phaseTimers on every point: each simulation reports its
  // per-phase wall-clock breakdown on stderr as it finishes. Points served
  // from the result cache never simulate, so they print no timers (the flag
  // is excluded from the canonical cache key on purpose — timers don't
  // change results).
  bool phaseTimers = false;
  OutputFormat format = OutputFormat::Csv;
  std::string outDir;  // empty: resultsDir()
  bool writeArtifact = true;
  bool progress = true;  // per-point progress lines on `log`
  // Consult the content-addressed result cache before simulating: points
  // whose canonical config key is already stored short-circuit to the cached
  // SimResult (bit-identical to re-simulation by the engine-equivalence
  // guarantee), misses simulate through the pool and are stored. Artifacts
  // are byte-identical either way.
  bool useCache = false;
  std::string cacheDir;  // empty: defaultCacheDir()
};

struct ExperimentRun {
  std::vector<SweepRow> rows;
  std::size_t totalPoints = 0;  // grid size before sharding
  std::string artifactPath;     // empty when writeArtifact was false
  bool cacheUsed = false;       // RunOptions::useCache was honoured
  CacheStats cache;             // hit/miss/insert counts (cacheUsed only)
  std::string cacheDir;         // resolved store directory (cacheUsed only)
};

/// Rows serialised as a JSON array of objects: the CSV columns plus a
/// `traffic` field (the CSV schema is shared with the pre-refactor figure
/// drivers and `swft_sim --csv`, where the pattern lives in the label;
/// schema `swft-experiment-rows-v1`).
[[nodiscard]] std::string rowsToJson(const std::vector<SweepRow>& rows);

/// Artifact filename for a run: `<name>.csv` unsharded, or
/// `<name>.shard<i>-of-<N>.csv` so shard outputs never collide and can be
/// merged by concatenation (drop the header of all but the first).
[[nodiscard]] std::string artifactName(const ExperimentSpec& spec, const RunOptions& opt);

/// Build the grid, apply the shard, run through the runSweep thread pool,
/// print the paper-style table to `log`, and (by default) write the CSV/JSON
/// artifact. Rows keep grid order, so a fixed seed reproduces byte-identical
/// artifacts.
ExperimentRun runExperiment(const ExperimentSpec& spec, const RunOptions& opt,
                            std::ostream& log);

}  // namespace swft
