// ASCII visualisation of 2-D torus planes: fault maps and per-node
// software-absorption heat maps. Diagnostic aid for examples and debugging
// (which messaging layers carry the re-routing load around a region?).
#pragma once

#include <string>

#include "src/sim/network.hpp"

namespace swft {

/// Render one 2-D plane (dims `dim0` x `dim1`, other coordinates fixed at
/// `anchor`). Faulty nodes print '#', healthy nodes print a log-scaled
/// absorption intensity: '.' none, then '1'..'9' by powers of two.
[[nodiscard]] std::string renderAbsorptionHeatmap(const Network& net, int dim0 = 0,
                                                  int dim1 = 1,
                                                  const Coordinates* anchor = nullptr);

/// Render only the fault pattern of the plane ('#' faulty, '.' healthy).
[[nodiscard]] std::string renderFaultMap(const TorusTopology& topo, const FaultSet& faults,
                                         int dim0 = 0, int dim1 = 1,
                                         const Coordinates* anchor = nullptr);

}  // namespace swft
