// Parameter-sweep harness: runs a grid of independent simulations across a
// thread pool (each simulation owns all of its state, so points are
// embarrassingly parallel) and collects paper-style result rows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/sim/network.hpp"

namespace swft {

struct SweepPoint {
  std::string label;  // row label, e.g. "M=32 nf=3 V=4"
  SimConfig cfg;
};

struct SweepRow {
  SweepPoint point;
  SimResult result;
};

/// Sweep pool size under the oversubscription guard: with sparse-mt points
/// in the grid, each simulation brings its own `sim_threads` workers, so the
/// pool is budgeted to keep pool_threads x max_sim_threads <=
/// hardware_concurrency (floored at one). `requested` <= 0 means "auto"
/// (the full budget); an explicit request is honoured as-is when every
/// point is single-threaded (`maxSimThreads` <= 1, the historical
/// behaviour) and clamped to the budget otherwise.
[[nodiscard]] unsigned sweepPoolThreads(int requested, unsigned hardwareConcurrency,
                                        int maxSimThreads) noexcept;

/// Run all points; `threads` <= 0 means hardware concurrency, derated by the
/// sweepPoolThreads guard when the grid contains sparse-mt points. Points
/// run in submission order per thread but complete out of order; the
/// returned rows are in the original order. `onDone` (optional) is invoked
/// after each point completes (serialised), e.g. for progress output.
std::vector<SweepRow> runSweep(std::vector<SweepPoint> points, int threads = 0,
                               const std::function<void(const SweepRow&)>& onDone = {});

/// Standard λ grids used by the latency-vs-traffic figures: `maxRate` spread
/// over `steps` points (excluding zero).
[[nodiscard]] std::vector<double> rateGrid(double maxRate, int steps);

}  // namespace swft
