// Parameter-sweep harness: runs a grid of independent simulations across a
// thread pool (each simulation owns all of its state, so points are
// embarrassingly parallel) and collects paper-style result rows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/sim/network.hpp"

namespace swft {

struct SweepPoint {
  std::string label;  // row label, e.g. "M=32 nf=3 V=4"
  SimConfig cfg;
};

struct SweepRow {
  SweepPoint point;
  SimResult result;
};

/// Run all points; `threads` <= 0 means hardware concurrency. Points run in
/// submission order per thread but complete out of order; the returned rows
/// are in the original order. `onDone` (optional) is invoked after each
/// point completes (serialised), e.g. for progress output.
std::vector<SweepRow> runSweep(std::vector<SweepPoint> points, int threads = 0,
                               const std::function<void(const SweepRow&)>& onDone = {});

/// Standard λ grids used by the latency-vs-traffic figures: `maxRate` spread
/// over `steps` points (excluding zero).
[[nodiscard]] std::vector<double> rateGrid(double maxRate, int steps);

}  // namespace swft
