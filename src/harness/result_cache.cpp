#include "src/harness/result_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/harness/table.hpp"
#include "src/util/fnv.hpp"

namespace swft {

namespace {

constexpr std::string_view kEntryMagic = "swft-cache-entry-v1";
constexpr std::string_view kResultMagic = "swft-result-v1";

void putDouble(std::ostringstream& os, std::string_view name, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  static constexpr char kHex[] = "0123456789abcdef";
  char buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = kHex[(bits >> (60 - 4 * i)) & 0xF];
  os << name << ' ' << std::string_view(buf, 16) << '\n';
}

void putU64(std::ostringstream& os, std::string_view name, std::uint64_t v) {
  os << name << ' ' << v << '\n';
}

void putBool(std::ostringstream& os, std::string_view name, bool v) {
  os << name << ' ' << (v ? 1 : 0) << '\n';
}

/// Strict line reader: consumes "<name> <value>" from `in`, failing (by
/// setting ok = false) on a name mismatch, so reordered or dropped fields
/// invalidate the whole entry instead of silently zero-filling.
struct FieldReader {
  std::istringstream& in;
  bool ok = true;

  std::string value(std::string_view name) {
    if (!ok) return {};
    std::string line;
    if (!std::getline(in, line)) {
      ok = false;
      return {};
    }
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || std::string_view(line).substr(0, sp) != name) {
      ok = false;
      return {};
    }
    return line.substr(sp + 1);
  }

  double readDouble(std::string_view name) {
    const std::string v = value(name);
    if (!ok || v.size() != 16) {
      ok = false;
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (const char c : v) {
      int digit = 0;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        ok = false;
        return 0.0;
      }
      bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    return std::bit_cast<double>(bits);
  }

  std::uint64_t readU64(std::string_view name) {
    const std::string v = value(name);
    if (!ok) return 0;
    std::uint64_t out = 0;
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || ptr != v.data() + v.size()) {
      ok = false;
      return 0;
    }
    return out;
  }

  bool readBool(std::string_view name) {
    const std::string v = value(name);
    if (!ok || (v != "0" && v != "1")) {
      ok = false;
      return false;
    }
    return v == "1";
  }
};

}  // namespace

std::string serializeResult(const SimResult& r) {
  std::ostringstream os;
  os << kResultMagic << '\n';
  putDouble(os, "mean_latency", r.meanLatency);
  putDouble(os, "latency_stddev", r.latencyStddev);
  putDouble(os, "max_latency", r.maxLatency);
  putDouble(os, "latency_p50", r.latencyP50);
  putDouble(os, "latency_p95", r.latencyP95);
  putDouble(os, "latency_p99", r.latencyP99);
  putDouble(os, "latency_ci95", r.latencyCi95);
  putDouble(os, "mean_hops", r.meanHops);
  putU64(os, "cycles", r.cycles);
  putU64(os, "generated_total", r.generatedTotal);
  putU64(os, "delivered_total", r.deliveredTotal);
  putU64(os, "delivered_measured", r.deliveredMeasured);
  putDouble(os, "throughput", r.throughput);
  putDouble(os, "offered_load", r.offeredLoad);
  putU64(os, "messages_queued", r.messagesQueued);
  putU64(os, "absorbed_messages", r.absorbedMessages);
  putU64(os, "reversals", r.reversals);
  putU64(os, "detours", r.detours);
  putU64(os, "escalations", r.escalations);
  putBool(os, "saturated", r.saturated);
  putBool(os, "deadlock_suspected", r.deadlockSuspected);
  putBool(os, "completed", r.completed);
  return os.str();
}

std::optional<SimResult> deserializeResult(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  if (!std::getline(in, magic) || magic != kResultMagic) return std::nullopt;
  FieldReader f{in};
  SimResult r;
  r.meanLatency = f.readDouble("mean_latency");
  r.latencyStddev = f.readDouble("latency_stddev");
  r.maxLatency = f.readDouble("max_latency");
  r.latencyP50 = f.readDouble("latency_p50");
  r.latencyP95 = f.readDouble("latency_p95");
  r.latencyP99 = f.readDouble("latency_p99");
  r.latencyCi95 = f.readDouble("latency_ci95");
  r.meanHops = f.readDouble("mean_hops");
  r.cycles = f.readU64("cycles");
  r.generatedTotal = f.readU64("generated_total");
  r.deliveredTotal = f.readU64("delivered_total");
  r.deliveredMeasured = f.readU64("delivered_measured");
  r.throughput = f.readDouble("throughput");
  r.offeredLoad = f.readDouble("offered_load");
  r.messagesQueued = f.readU64("messages_queued");
  r.absorbedMessages = f.readU64("absorbed_messages");
  r.reversals = f.readU64("reversals");
  r.detours = f.readU64("detours");
  r.escalations = f.readU64("escalations");
  r.saturated = f.readBool("saturated");
  r.deadlockSuspected = f.readBool("deadlock_suspected");
  r.completed = f.readBool("completed");
  if (!f.ok) return std::nullopt;
  return r;
}

std::string defaultCacheDir() {
  if (const char* env = std::getenv("SWFT_CACHE_DIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return resultsDir() + "/cache";
}

ResultCache::ResultCache(std::string dir, std::uint32_t semanticsVersion)
    : dir_(std::move(dir)), version_(semanticsVersion) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (!std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("result cache: cannot create directory '" + dir_ +
                             "': " + ec.message());
  }
}

std::string ResultCache::keyFor(const SimConfig& cfg) const {
  const std::uint64_t h = canonicalConfigHash(cfg, version_);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = kHex[(h >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

std::string ResultCache::entryPath(const SimConfig& cfg) const {
  return dir_ + "/" + keyFor(cfg) + ".result";
}

std::optional<SimResult> ResultCache::lookup(const SimConfig& cfg) {
  std::ifstream in(entryPath(cfg), std::ios::binary);
  const auto miss = [this]() -> std::optional<SimResult> {
    ++stats_.misses;
    return std::nullopt;
  };
  if (!in) return miss();
  std::stringstream buf;
  buf << in.rdbuf();
  std::istringstream entry{buf.str()};
  std::string line;
  if (!std::getline(entry, line) || line != kEntryMagic) return miss();
  // The embedded canonical key guards against both hash collisions and any
  // drift in the key format itself: the entry is only trusted when the full
  // key text matches byte-for-byte.
  if (!std::getline(entry, line) ||
      line != "key " + canonicalConfigKey(cfg, version_)) {
    return miss();
  }
  std::string rest(buf.str().substr(static_cast<std::size_t>(entry.tellg())));
  const std::optional<SimResult> r = deserializeResult(rest);
  if (!r) return miss();
  ++stats_.hits;
  return r;
}

bool ResultCache::store(const SimConfig& cfg, const SimResult& r) {
  static std::atomic<std::uint64_t> seq{0};
  const std::string final = entryPath(cfg);
  std::ostringstream tmpName;
  tmpName << final << ".tmp." << ::getpid() << "."
          << seq.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmpName.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << kEntryMagic << '\n'
        << "key " << canonicalConfigKey(cfg, version_) << '\n'
        << serializeResult(r);
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  // Atomic publish: rename within one directory replaces any existing entry
  // in a single step, so concurrent readers never observe a partial file.
  std::error_code ec;
  std::filesystem::rename(tmp, final, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  ++stats_.inserts;
  return true;
}

ResultCache::StoreInfo ResultCache::scanDir(const std::string& dir) {
  StoreInfo info;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (!e.is_regular_file() || e.path().extension() != ".result") continue;
    ++info.entries;
    info.bytes += e.file_size(ec);
  }
  return info;
}

}  // namespace swft
