// Content-addressed on-disk store of simulation results.
//
// Every cached entry is one file named by the FNV-1a-64 hash of the
// config's canonical key (src/sim/config_canon.hpp); the file embeds the
// full key and an exact-double serialization of the SimResult. Because all
// engines are bit-identical for a given config, a cache hit IS the result a
// fresh simulation would produce — re-running a sweep against a warm store
// pays only for points whose configuration actually changed.
//
// Concurrency: entries are written to a uniquely-named temp file in the
// store directory and published with an atomic rename, so any number of
// sweep-pool workers and sharded processes can share one store. A reader
// sees either no file or a complete entry, never a torn one; two writers
// racing on the same key both publish identical bytes, so last-rename-wins
// is benign. Corrupt or truncated entries (key mismatch, bad magic, parse
// failure) are treated as misses and silently re-stored, never trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/config_canon.hpp"
#include "src/sim/stats.hpp"

namespace swft {

/// Exact serialization of every SimResult field: doubles as IEEE-754 bit
/// patterns (16 hex digits), counters as decimal u64, flags as 0/1. The
/// format is versioned and strictly ordered; deserializeResult returns
/// nullopt on any deviation (missing/reordered/garbled field, bad magic).
[[nodiscard]] std::string serializeResult(const SimResult& r);
[[nodiscard]] std::optional<SimResult> deserializeResult(std::string_view text);

/// Default store directory: $SWFT_CACHE_DIR, else `<results>/cache` under
/// the (SWFT_RESULTS_DIR-aware) results directory.
[[nodiscard]] std::string defaultCacheDir();

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
};

class ResultCache {
 public:
  /// Opens (creating, parents included) the store at `dir`. Keys embed
  /// `semanticsVersion`, so bumping kEngineSemanticsVersion orphans every
  /// existing entry (full miss) without touching the files. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit ResultCache(std::string dir,
                       std::uint32_t semanticsVersion = kEngineSemanticsVersion);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Content address of `cfg`: 16 lowercase hex digits.
  [[nodiscard]] std::string keyFor(const SimConfig& cfg) const;

  /// Returns the stored result, or nullopt (absent, corrupt, key-collision
  /// or version mismatch). Counts one hit or one miss.
  [[nodiscard]] std::optional<SimResult> lookup(const SimConfig& cfg);

  /// Publishes `r` under cfg's content address (write temp + atomic
  /// rename). Returns false on I/O failure; counts one insert on success.
  bool store(const SimConfig& cfg, const SimResult& r);

  [[nodiscard]] CacheStats stats() const noexcept { return stats_; }

  struct StoreInfo {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  /// Scan of the store directory (for `swft_bench --cache-stats`).
  [[nodiscard]] static StoreInfo scanDir(const std::string& dir);

 private:
  [[nodiscard]] std::string entryPath(const SimConfig& cfg) const;

  std::string dir_;
  std::uint32_t version_;
  CacheStats stats_;
};

}  // namespace swft
