#include "src/harness/table.hpp"

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace swft {

double resultField(const SimResult& r, const std::string& name) {
  if (name == "latency") return r.meanLatency;
  if (name == "latency_stddev") return r.latencyStddev;
  if (name == "latency_p50") return r.latencyP50;
  if (name == "latency_p95") return r.latencyP95;
  if (name == "latency_p99") return r.latencyP99;
  if (name == "latency_ci95") return r.latencyCi95;
  if (name == "throughput") return r.throughput;
  if (name == "queued") return static_cast<double>(r.messagesQueued);
  if (name == "hops") return r.meanHops;
  if (name == "generated") return static_cast<double>(r.generatedTotal);
  if (name == "delivered") return static_cast<double>(r.deliveredTotal);
  if (name == "absorbed") return static_cast<double>(r.absorbedMessages);
  if (name == "reversals") return static_cast<double>(r.reversals);
  if (name == "detours") return static_cast<double>(r.detours);
  if (name == "escalations") return static_cast<double>(r.escalations);
  if (name == "cycles") return static_cast<double>(r.cycles);
  if (name == "saturated") return r.saturated ? 1.0 : 0.0;
  if (name == "offered") return r.offeredLoad;
  throw std::invalid_argument("resultField: unknown column " + name);
}

std::string formatTable(const std::vector<SweepRow>& rows,
                        const std::vector<std::string>& columns) {
  std::size_t labelWidth = 5;
  for (const auto& row : rows) labelWidth = std::max(labelWidth, row.point.label.size());

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(labelWidth + 2)) << "point";
  for (const auto& col : columns) os << std::right << std::setw(14) << col;
  os << '\n';
  for (const auto& row : rows) {
    os << std::left << std::setw(static_cast<int>(labelWidth + 2)) << row.point.label;
    for (const auto& col : columns) {
      const double v = resultField(row.result, col);
      os << std::right << std::setw(14) << std::setprecision(6) << v;
    }
    if (row.result.saturated) os << "  [saturated]";
    if (row.result.deadlockSuspected) os << "  [DEADLOCK?]";
    os << '\n';
  }
  return os.str();
}

CsvWriter toCsv(const std::vector<SweepRow>& rows) {
  CsvWriter csv({"label", "routing", "radix", "dims", "vcs", "msg_length", "offered_load",
                 "faulty_nodes", "mean_latency", "latency_stddev", "throughput",
                 "messages_queued", "absorbed_messages", "mean_hops", "cycles",
                 "delivered_measured", "saturated", "deadlock"});
  for (const auto& row : rows) {
    const SimConfig& c = row.point.cfg;
    const SimResult& r = row.result;
    csv.addRowOf(row.point.label, c.routingName(), c.radix, c.dims, c.vcs, c.messageLength,
                 c.injectionRate,
                 c.faults.randomNodes + static_cast<int>(c.faults.explicitNodes.size()),
                 r.meanLatency, r.latencyStddev, r.throughput, r.messagesQueued,
                 r.absorbedMessages, r.meanHops, r.cycles, r.deliveredMeasured,
                 r.saturated ? 1 : 0, r.deadlockSuspected ? 1 : 0);
  }
  return csv;
}

std::string resultsDir() {
  const char* env = std::getenv("SWFT_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace swft
