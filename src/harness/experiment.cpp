#include "src/harness/experiment.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/harness/table.hpp"
#include "src/sim/config_parse.hpp"
#include "src/util/fnv.hpp"

namespace swft {

namespace {

int parseShardInt(const std::string& text, std::string_view part) {
  int out = 0;
  const auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), out);
  if (ec != std::errc{} || ptr != part.data() + part.size()) {
    throw std::invalid_argument("shard: expected 'i/N' with integers, got '" + text + "'");
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

ShardSpec parseShard(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("shard: expected 'i/N' (e.g. 0/4), got '" + text + "'");
  }
  ShardSpec shard;
  shard.index = parseShardInt(text, std::string_view(text).substr(0, slash));
  shard.count = parseShardInt(text, std::string_view(text).substr(slash + 1));
  if (shard.count < 1 || shard.index < 0 || shard.index >= shard.count) {
    throw std::invalid_argument("shard: need 0 <= i < N, got '" + text + "'");
  }
  return shard;
}

std::uint64_t stableLabelHash(std::string_view label) noexcept {
  return fnv1a64(label);
}

bool inShard(std::string_view label, const ShardSpec& shard) noexcept {
  if (shard.isAll()) return true;
  return stableLabelHash(label) % static_cast<std::uint64_t>(shard.count) ==
         static_cast<std::uint64_t>(shard.index);
}

std::vector<SweepPoint> shardPoints(std::vector<SweepPoint> points, const ShardSpec& shard) {
  if (shard.isAll()) return points;
  std::vector<SweepPoint> mine;
  mine.reserve(points.size() / static_cast<std::size_t>(shard.count) + 1);
  for (auto& p : points) {
    if (inShard(p.label, shard)) mine.push_back(std::move(p));
  }
  return mine;
}

std::string rowsToJson(const std::vector<SweepRow>& rows) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"swft-experiment-rows-v1\",\n  \"rows\": [";
  bool first = true;
  for (const auto& row : rows) {
    const SimConfig& c = row.point.cfg;
    const SimResult& r = row.result;
    os << (first ? "" : ",") << "\n    {"
       << "\"label\": \"" << jsonEscape(row.point.label) << "\", "
       << "\"routing\": \"" << c.routingName() << "\", "
       << "\"traffic\": \"" << trafficPatternName(c.pattern) << "\", "
       << "\"radix\": " << c.radix << ", "
       << "\"dims\": " << c.dims << ", "
       << "\"vcs\": " << c.vcs << ", "
       << "\"msg_length\": " << c.messageLength << ", "
       << "\"offered_load\": " << c.injectionRate << ", "
       << "\"faulty_nodes\": "
       << c.faults.randomNodes + static_cast<int>(c.faults.explicitNodes.size()) << ", "
       << "\"mean_latency\": " << r.meanLatency << ", "
       << "\"latency_stddev\": " << r.latencyStddev << ", "
       << "\"throughput\": " << r.throughput << ", "
       << "\"messages_queued\": " << r.messagesQueued << ", "
       << "\"absorbed_messages\": " << r.absorbedMessages << ", "
       << "\"mean_hops\": " << r.meanHops << ", "
       << "\"cycles\": " << r.cycles << ", "
       << "\"delivered_measured\": " << r.deliveredMeasured << ", "
       << "\"saturated\": " << (r.saturated ? "true" : "false") << ", "
       << "\"deadlock\": " << (r.deadlockSuspected ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string artifactName(const ExperimentSpec& spec, const RunOptions& opt) {
  std::string name = spec.name;
  if (!opt.shard.isAll()) {
    name += ".shard" + std::to_string(opt.shard.index) + "-of-" +
            std::to_string(opt.shard.count);
  }
  name += opt.format == OutputFormat::Json ? ".json" : ".csv";
  return name;
}

ExperimentRun runExperiment(const ExperimentSpec& spec, const RunOptions& opt,
                            std::ostream& log) {
  ExperimentRun run;
  std::vector<SweepPoint> points = spec.build();
  run.totalPoints = points.size();
  points = shardPoints(std::move(points), opt.shard);
  if (opt.simThreads > 0) {
    for (SweepPoint& p : points) {
      p.cfg.engine = EngineKind::SparseMt;
      p.cfg.simThreads = opt.simThreads;
    }
  }
  if (opt.phaseTimers) {
    for (SweepPoint& p : points) p.cfg.phaseTimers = true;
  }

  // Resolve and create the artifact directory (and the cache store) before
  // any point simulates: a bad --out/--cache-dir must fail in milliseconds,
  // not after the grid already burned its simulation time.
  std::string dir;
  if (opt.writeArtifact) {
    dir = opt.outDir.empty() ? resultsDir() : opt.outDir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!std::filesystem::is_directory(dir)) {
      throw std::runtime_error("cannot create artifact directory '" + dir +
                               "': " + ec.message());
    }
  }
  std::unique_ptr<ResultCache> cache;
  if (opt.useCache) {
    cache = std::make_unique<ResultCache>(opt.cacheDir.empty() ? defaultCacheDir()
                                                               : opt.cacheDir);
  }

  log << "=== " << spec.name << ": " << spec.description << " ===\n";
  if (!opt.shard.isAll()) {
    log << "shard " << opt.shard.index << "/" << opt.shard.count << ": " << points.size()
        << " of " << run.totalPoints << " points\n";
  }

  // Cache pass: hit rows short-circuit the pool entirely; only misses are
  // submitted to runSweep. Rows stay in grid order in both paths, so the
  // artifact bytes cannot depend on where a row came from.
  std::vector<SweepRow> rows(points.size());
  std::vector<std::size_t> missIdx;
  if (cache) {
    missIdx.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (std::optional<SimResult> hit = cache->lookup(points[i].cfg)) {
        rows[i].point = points[i];
        rows[i].result = *hit;
      } else {
        missIdx.push_back(i);
      }
    }
  } else {
    missIdx.resize(points.size());
    std::iota(missIdx.begin(), missIdx.end(), std::size_t{0});
  }
  std::vector<SweepPoint> missPoints;
  missPoints.reserve(missIdx.size());
  for (const std::size_t i : missIdx) missPoints.push_back(points[i]);

  const std::size_t missCount = missPoints.size();
  std::size_t done = 0;
  std::vector<SweepRow> missRows =
      runSweep(std::move(missPoints), opt.threads, [&](const SweepRow& row) {
        // onDone is serialised by the pool, so storing here is race-free
        // within this process; cross-process safety is the store's rename.
        if (cache) cache->store(row.point.cfg, row.result);
        ++done;
        if (opt.progress) {
          log << "  [" << done << "/" << missCount << "] " << spec.name << "/"
              << row.point.label << "\n";
        }
      });
  for (std::size_t j = 0; j < missIdx.size(); ++j) rows[missIdx[j]] = std::move(missRows[j]);
  run.rows = std::move(rows);

  if (cache) {
    run.cacheUsed = true;
    run.cache = cache->stats();
    run.cacheDir = cache->dir();
    log << "cache: " << run.cache.hits << " hits, " << run.cache.misses
        << " misses, " << run.cache.inserts << " inserts (" << run.cacheDir << ")\n";
  }

  log << formatTable(run.rows, spec.columns);
  if (spec.epilogue) log << spec.epilogue(run.rows);

  if (opt.writeArtifact) {
    run.artifactPath = dir + "/" + artifactName(spec, opt);
    if (opt.format == OutputFormat::Json) {
      std::ofstream out(run.artifactPath, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + run.artifactPath);
      out << rowsToJson(run.rows);
    } else {
      toCsv(run.rows).writeFile(run.artifactPath);
    }
    log << "wrote " << run.artifactPath << " (" << run.rows.size() << " rows)\n";
  }
  return run;
}

}  // namespace swft
