#include "src/harness/experiment.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/harness/table.hpp"
#include "src/sim/config_parse.hpp"

namespace swft {

namespace {

int parseShardInt(const std::string& text, std::string_view part) {
  int out = 0;
  const auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), out);
  if (ec != std::errc{} || ptr != part.data() + part.size()) {
    throw std::invalid_argument("shard: expected 'i/N' with integers, got '" + text + "'");
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

ShardSpec parseShard(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("shard: expected 'i/N' (e.g. 0/4), got '" + text + "'");
  }
  ShardSpec shard;
  shard.index = parseShardInt(text, std::string_view(text).substr(0, slash));
  shard.count = parseShardInt(text, std::string_view(text).substr(slash + 1));
  if (shard.count < 1 || shard.index < 0 || shard.index >= shard.count) {
    throw std::invalid_argument("shard: need 0 <= i < N, got '" + text + "'");
  }
  return shard;
}

std::uint64_t stableLabelHash(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

bool inShard(std::string_view label, const ShardSpec& shard) noexcept {
  if (shard.isAll()) return true;
  return stableLabelHash(label) % static_cast<std::uint64_t>(shard.count) ==
         static_cast<std::uint64_t>(shard.index);
}

std::vector<SweepPoint> shardPoints(std::vector<SweepPoint> points, const ShardSpec& shard) {
  if (shard.isAll()) return points;
  std::vector<SweepPoint> mine;
  mine.reserve(points.size() / static_cast<std::size_t>(shard.count) + 1);
  for (auto& p : points) {
    if (inShard(p.label, shard)) mine.push_back(std::move(p));
  }
  return mine;
}

std::string rowsToJson(const std::vector<SweepRow>& rows) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"swft-experiment-rows-v1\",\n  \"rows\": [";
  bool first = true;
  for (const auto& row : rows) {
    const SimConfig& c = row.point.cfg;
    const SimResult& r = row.result;
    os << (first ? "" : ",") << "\n    {"
       << "\"label\": \"" << jsonEscape(row.point.label) << "\", "
       << "\"routing\": \"" << c.routingName() << "\", "
       << "\"traffic\": \"" << trafficPatternName(c.pattern) << "\", "
       << "\"radix\": " << c.radix << ", "
       << "\"dims\": " << c.dims << ", "
       << "\"vcs\": " << c.vcs << ", "
       << "\"msg_length\": " << c.messageLength << ", "
       << "\"offered_load\": " << c.injectionRate << ", "
       << "\"faulty_nodes\": "
       << c.faults.randomNodes + static_cast<int>(c.faults.explicitNodes.size()) << ", "
       << "\"mean_latency\": " << r.meanLatency << ", "
       << "\"latency_stddev\": " << r.latencyStddev << ", "
       << "\"throughput\": " << r.throughput << ", "
       << "\"messages_queued\": " << r.messagesQueued << ", "
       << "\"absorbed_messages\": " << r.absorbedMessages << ", "
       << "\"mean_hops\": " << r.meanHops << ", "
       << "\"cycles\": " << r.cycles << ", "
       << "\"delivered_measured\": " << r.deliveredMeasured << ", "
       << "\"saturated\": " << (r.saturated ? "true" : "false") << ", "
       << "\"deadlock\": " << (r.deadlockSuspected ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string artifactName(const ExperimentSpec& spec, const RunOptions& opt) {
  std::string name = spec.name;
  if (!opt.shard.isAll()) {
    name += ".shard" + std::to_string(opt.shard.index) + "-of-" +
            std::to_string(opt.shard.count);
  }
  name += opt.format == OutputFormat::Json ? ".json" : ".csv";
  return name;
}

ExperimentRun runExperiment(const ExperimentSpec& spec, const RunOptions& opt,
                            std::ostream& log) {
  ExperimentRun run;
  std::vector<SweepPoint> points = spec.build();
  run.totalPoints = points.size();
  points = shardPoints(std::move(points), opt.shard);
  if (opt.simThreads > 0) {
    for (SweepPoint& p : points) {
      p.cfg.engine = EngineKind::SparseMt;
      p.cfg.simThreads = opt.simThreads;
    }
  }

  log << "=== " << spec.name << ": " << spec.description << " ===\n";
  if (!opt.shard.isAll()) {
    log << "shard " << opt.shard.index << "/" << opt.shard.count << ": " << points.size()
        << " of " << run.totalPoints << " points\n";
  }

  const std::size_t shardSize = points.size();
  std::size_t done = 0;
  run.rows = runSweep(std::move(points), opt.threads, [&](const SweepRow& row) {
    ++done;
    if (opt.progress) {
      log << "  [" << done << "/" << shardSize << "] " << spec.name << "/"
          << row.point.label << "\n";
    }
  });

  log << formatTable(run.rows, spec.columns);
  if (spec.epilogue) log << spec.epilogue(run.rows);

  if (opt.writeArtifact) {
    std::string dir = resultsDir();  // creates the default directory
    if (!opt.outDir.empty()) {
      dir = opt.outDir;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);  // open() reports failure
    }
    run.artifactPath = dir + "/" + artifactName(spec, opt);
    if (opt.format == OutputFormat::Json) {
      std::ofstream out(run.artifactPath, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + run.artifactPath);
      out << rowsToJson(run.rows);
    } else {
      toCsv(run.rows).writeFile(run.artifactPath);
    }
    log << "wrote " << run.artifactPath << " (" << run.rows.size() << " rows)\n";
  }
  return run;
}

}  // namespace swft
