// Paper-style table formatting for bench output, plus CSV persistence.
#pragma once

#include <string>
#include <vector>

#include "src/harness/sweep.hpp"
#include "src/util/csv.hpp"

namespace swft {

/// Render sweep rows as an aligned text table. `columns` selects result
/// fields by name: latency, throughput, queued, hops, generated, delivered,
/// absorbed, reversals, detours, escalations, cycles, saturated.
[[nodiscard]] std::string formatTable(const std::vector<SweepRow>& rows,
                                      const std::vector<std::string>& columns);

/// Convert sweep rows into a CSV with the standard column set.
[[nodiscard]] CsvWriter toCsv(const std::vector<SweepRow>& rows);

/// Look up one result field by name (used by both emitters).
[[nodiscard]] double resultField(const SimResult& r, const std::string& name);

/// Results directory honouring SWFT_RESULTS_DIR (default "results/").
[[nodiscard]] std::string resultsDir();

}  // namespace swft
