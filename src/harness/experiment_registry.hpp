// Process-wide registry of ExperimentSpecs with static registration: each
// experiment TU defines `static const ExperimentRegistrar reg{...}` and the
// spec becomes visible to `swft_bench --list/--run` (and any test linking
// the experiment objects) with no central enumeration to keep in sync.
#pragma once

#include <string_view>
#include <vector>

#include "src/harness/experiment.hpp"

namespace swft {

class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  /// Register a spec. Throws std::invalid_argument on a duplicate name or a
  /// spec without a builder — both are programming errors caught at startup.
  void add(ExperimentSpec spec);

  [[nodiscard]] const ExperimentSpec* find(std::string_view name) const noexcept;

  /// All specs, sorted by name (registration order is link order — not
  /// something output should depend on).
  [[nodiscard]] std::vector<const ExperimentSpec*> all() const;

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

 private:
  std::vector<ExperimentSpec> specs_;
};

struct ExperimentRegistrar {
  explicit ExperimentRegistrar(ExperimentSpec spec) {
    ExperimentRegistry::instance().add(std::move(spec));
  }
};

}  // namespace swft
