#include "src/harness/heatmap.hpp"

#include <algorithm>

namespace swft {

namespace {

Coordinates planeAnchor(const TorusTopology& topo, const Coordinates* anchor) {
  if (anchor != nullptr) return *anchor;
  Coordinates c;
  c.digit.resize(static_cast<std::size_t>(topo.dims()));
  for (int d = 0; d < topo.dims(); ++d) c[d] = 0;
  return c;
}

template <typename CellFn>
std::string renderPlane(const TorusTopology& topo, int dim0, int dim1,
                        const Coordinates* anchor, CellFn&& cell) {
  Coordinates c = planeAnchor(topo, anchor);
  std::string out;
  // Row y printed top-down so the origin sits at the bottom-left.
  for (int y = topo.radix() - 1; y >= 0; --y) {
    c[dim1] = static_cast<std::int16_t>(y);
    for (int x = 0; x < topo.radix(); ++x) {
      c[dim0] = static_cast<std::int16_t>(x);
      out += cell(topo.idOf(c));
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace

std::string renderFaultMap(const TorusTopology& topo, const FaultSet& faults, int dim0,
                           int dim1, const Coordinates* anchor) {
  return renderPlane(topo, dim0, dim1, anchor, [&](NodeId id) -> char {
    return faults.nodeFaulty(id) ? '#' : '.';
  });
}

std::string renderAbsorptionHeatmap(const Network& net, int dim0, int dim1,
                                    const Coordinates* anchor) {
  const TorusTopology& topo = net.topology();
  const SoftwareLayer& sw = net.softwareLayer();

  std::uint64_t peak = 0;
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    peak = std::max(peak, sw.absorptionsAt(id));
  }

  return renderPlane(topo, dim0, dim1, anchor, [&](NodeId id) -> char {
    if (net.faults().nodeFaulty(id)) return '#';
    const std::uint64_t count = sw.absorptionsAt(id);
    if (count == 0) return '.';
    // Log2 scale from 1..peak mapped onto '1'..'9'.
    int level = 1;
    for (std::uint64_t v = count; v > 1 && level < 9; v >>= 1) ++level;
    (void)peak;
    return static_cast<char>('0' + level);
  });
}

}  // namespace swft
