// Traffic patterns. The paper evaluates uniform random traffic (assumption
// (a)); the classical permutations are provided as extensions and exercised
// by tests and the ablation benches.
#pragma once

#include <string_view>

#include "src/fault/fault_set.hpp"
#include "src/util/rng.hpp"

namespace swft {

enum class TrafficPattern : std::uint8_t {
  Uniform,        // destination uniform over healthy nodes != src
  Transpose,      // (x, y, ...) -> digits rotated by one dimension
  BitComplement,  // digit a -> k-1-a in every dimension
  Hotspot,        // uniform, but a fraction of traffic targets one node
};

[[nodiscard]] std::string_view trafficPatternName(TrafficPattern p) noexcept;

/// Destination chooser. Deterministic permutations returning the source
/// itself or a faulty node yield kInvalidNode (the PE skips that message),
/// mirroring the convention that faulty PEs neither send nor receive.
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficPattern pattern, const FaultSet& faults, double hotspotFraction = 0.1);

  [[nodiscard]] NodeId pickDestination(NodeId src, Rng& rng) const;
  [[nodiscard]] TrafficPattern pattern() const noexcept { return pattern_; }

 private:
  TrafficPattern pattern_;
  const FaultSet* faults_;
  std::vector<NodeId> healthy_;
  NodeId hotspot_ = kInvalidNode;
  double hotspotFraction_;
};

}  // namespace swft
