// Traffic patterns. The paper evaluates uniform random traffic (assumption
// (a)); the classical permutations are provided as extensions and exercised
// by tests, the ablation experiments, and the beyond-paper workloads
// (scan_radix, faultscape).
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "src/fault/fault_set.hpp"
#include "src/util/rng.hpp"

namespace swft {

enum class TrafficPattern : std::uint8_t {
  Uniform,        // destination uniform over healthy nodes != src
  Transpose,      // (x, y, ...) -> digits rotated by one dimension
  BitComplement,  // digit a -> k-1-a in every dimension
  BitReversal,    // address bits reversed (digit order reversed if k not 2^b)
  Shuffle,        // address bits rotated left by one (digits if k not 2^b)
  Tornado,        // digit a -> (a + ceil(k/2) - 1) mod k in every dimension
  Hotspot,        // uniform, but a fraction of traffic targets one node
};

/// Every pattern, in declaration order — the single source for iteration
/// (CLI help, `swft_bench --list`, exhaustiveness tests).
inline constexpr std::array<TrafficPattern, 7> kAllTrafficPatterns = {
    TrafficPattern::Uniform,   TrafficPattern::Transpose, TrafficPattern::BitComplement,
    TrafficPattern::BitReversal, TrafficPattern::Shuffle, TrafficPattern::Tornado,
    TrafficPattern::Hotspot,
};

/// Canonical config token for a pattern. Inverse of parseTrafficPattern:
/// `parseTrafficPattern(trafficPatternName(p)) == p` for every pattern, so
/// the CLI, the config parser and `swft_bench --list` can never drift.
[[nodiscard]] std::string_view trafficPatternName(TrafficPattern p) noexcept;

/// Parse a pattern token (the canonical names plus the legacy alias
/// "bit-complement"). Returns nullopt for unknown tokens.
[[nodiscard]] std::optional<TrafficPattern> parseTrafficPattern(std::string_view name) noexcept;

/// Destination chooser. Deterministic permutations returning the source
/// itself or a faulty node yield kInvalidNode (the PE skips that message),
/// mirroring the convention that faulty PEs neither send nor receive.
class TrafficGenerator {
 public:
  TrafficGenerator(TrafficPattern pattern, const FaultSet& faults, double hotspotFraction = 0.1);

  [[nodiscard]] NodeId pickDestination(NodeId src, Rng& rng) const;
  [[nodiscard]] TrafficPattern pattern() const noexcept { return pattern_; }

 private:
  [[nodiscard]] NodeId permutationGuard(NodeId src, NodeId dest) const;

  TrafficPattern pattern_;
  const FaultSet* faults_;
  std::vector<NodeId> healthy_;
  NodeId hotspot_ = kInvalidNode;
  double hotspotFraction_;
  int addressBits_ = 0;  // log2(k^n) when k is a power of two, else 0
};

}  // namespace swft
