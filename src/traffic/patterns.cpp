#include "src/traffic/patterns.hpp"

namespace swft {

std::string_view trafficPatternName(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::Uniform: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(TrafficPattern pattern, const FaultSet& faults,
                                   double hotspotFraction)
    : pattern_(pattern),
      faults_(&faults),
      healthy_(faults.healthyNodes()),
      hotspotFraction_(hotspotFraction) {
  if (!healthy_.empty()) hotspot_ = healthy_[healthy_.size() / 2];
}

NodeId TrafficGenerator::pickDestination(NodeId src, Rng& rng) const {
  const TorusTopology& topo = faults_->topology();
  switch (pattern_) {
    case TrafficPattern::Uniform: {
      if (healthy_.size() < 2) return kInvalidNode;
      for (;;) {
        const NodeId d = healthy_[rng.uniform(static_cast<std::uint32_t>(healthy_.size()))];
        if (d != src) return d;
      }
    }
    case TrafficPattern::Transpose: {
      Coordinates c = topo.coordsOf(src);
      Coordinates t = c;
      for (int d = 0; d < topo.dims(); ++d) t[d] = c[(d + 1) % topo.dims()];
      const NodeId dest = topo.idOf(t);
      if (dest == src || faults_->nodeFaulty(dest)) return kInvalidNode;
      return dest;
    }
    case TrafficPattern::BitComplement: {
      Coordinates c = topo.coordsOf(src);
      for (int d = 0; d < topo.dims(); ++d) {
        c[d] = static_cast<std::int16_t>(topo.radix() - 1 - c[d]);
      }
      const NodeId dest = topo.idOf(c);
      if (dest == src || faults_->nodeFaulty(dest)) return kInvalidNode;
      return dest;
    }
    case TrafficPattern::Hotspot: {
      if (hotspot_ != src && !faults_->nodeFaulty(hotspot_) &&
          rng.uniform01() < hotspotFraction_) {
        return hotspot_;
      }
      if (healthy_.size() < 2) return kInvalidNode;
      for (;;) {
        const NodeId d = healthy_[rng.uniform(static_cast<std::uint32_t>(healthy_.size()))];
        if (d != src) return d;
      }
    }
  }
  return kInvalidNode;
}

}  // namespace swft
