#include "src/traffic/patterns.hpp"

namespace swft {

namespace {

[[nodiscard]] constexpr bool isPowerOfTwo(int k) noexcept { return k > 0 && (k & (k - 1)) == 0; }

[[nodiscard]] constexpr int log2Exact(int k) noexcept {
  int b = 0;
  while ((1 << b) < k) ++b;
  return b;
}

}  // namespace

std::string_view trafficPatternName(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::Uniform: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bitcomp";
    case TrafficPattern::BitReversal: return "bitrev";
    case TrafficPattern::Shuffle: return "shuffle";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

std::optional<TrafficPattern> parseTrafficPattern(std::string_view name) noexcept {
  for (const TrafficPattern p : kAllTrafficPatterns) {
    if (name == trafficPatternName(p)) return p;
  }
  if (name == "bit-complement") return TrafficPattern::BitComplement;  // legacy alias
  return std::nullopt;
}

TrafficGenerator::TrafficGenerator(TrafficPattern pattern, const FaultSet& faults,
                                   double hotspotFraction)
    : pattern_(pattern),
      faults_(&faults),
      healthy_(faults.healthyNodes()),
      hotspotFraction_(hotspotFraction) {
  if (!healthy_.empty()) hotspot_ = healthy_[healthy_.size() / 2];
  const TorusTopology& topo = faults.topology();
  if (isPowerOfTwo(topo.radix())) {
    addressBits_ = topo.dims() * log2Exact(topo.radix());
  }
}

NodeId TrafficGenerator::permutationGuard(NodeId src, NodeId dest) const {
  if (dest == src || faults_->nodeFaulty(dest)) return kInvalidNode;
  return dest;
}

NodeId TrafficGenerator::pickDestination(NodeId src, Rng& rng) const {
  const TorusTopology& topo = faults_->topology();
  switch (pattern_) {
    case TrafficPattern::Uniform: {
      if (healthy_.size() < 2) return kInvalidNode;
      for (;;) {
        const NodeId d = healthy_[rng.uniform(static_cast<std::uint32_t>(healthy_.size()))];
        if (d != src) return d;
      }
    }
    case TrafficPattern::Transpose: {
      Coordinates c = topo.coordsOf(src);
      Coordinates t = c;
      for (int d = 0; d < topo.dims(); ++d) t[d] = c[(d + 1) % topo.dims()];
      return permutationGuard(src, topo.idOf(t));
    }
    case TrafficPattern::BitComplement: {
      Coordinates c = topo.coordsOf(src);
      for (int d = 0; d < topo.dims(); ++d) {
        c[d] = static_cast<std::int16_t>(topo.radix() - 1 - c[d]);
      }
      return permutationGuard(src, topo.idOf(c));
    }
    case TrafficPattern::BitReversal: {
      // Power-of-two radix: reverse the n*log2(k)-bit address. Otherwise the
      // address has no binary digit decomposition, so fall back to reversing
      // the base-k digit order (dimension reversal) — the same map for n=2.
      if (addressBits_ > 0) {
        NodeId rev = 0;
        for (int b = 0; b < addressBits_; ++b) {
          rev = static_cast<NodeId>((rev << 1) | ((src >> b) & 1u));
        }
        return permutationGuard(src, rev);
      }
      const Coordinates c = topo.coordsOf(src);
      Coordinates t = c;
      for (int d = 0; d < topo.dims(); ++d) t[d] = c[topo.dims() - 1 - d];
      return permutationGuard(src, topo.idOf(t));
    }
    case TrafficPattern::Shuffle: {
      // Perfect shuffle: rotate the address left by one bit; for a non-binary
      // radix, rotate the base-k digit string left by one digit instead.
      if (addressBits_ > 0) {
        const NodeId top = (src >> (addressBits_ - 1)) & 1u;
        const NodeId mask = (NodeId{1} << addressBits_) - 1u;
        return permutationGuard(src, ((src << 1) & mask) | top);
      }
      const Coordinates c = topo.coordsOf(src);
      Coordinates t = c;
      for (int d = 0; d < topo.dims(); ++d) t[d] = c[(d + 1) % topo.dims()];
      return permutationGuard(src, topo.idOf(t));
    }
    case TrafficPattern::Tornado: {
      // Dally & Towles: each digit moves just under half-way around its ring,
      // stressing the wrap links in one direction.
      const int offset = (topo.radix() + 1) / 2 - 1;
      Coordinates c = topo.coordsOf(src);
      for (int d = 0; d < topo.dims(); ++d) {
        c[d] = static_cast<std::int16_t>((c[d] + offset) % topo.radix());
      }
      return permutationGuard(src, topo.idOf(c));
    }
    case TrafficPattern::Hotspot: {
      if (hotspot_ != src && !faults_->nodeFaulty(hotspot_) &&
          rng.uniform01() < hotspotFraction_) {
        return hotspot_;
      }
      if (healthy_.size() < 2) return kInvalidNode;
      for (;;) {
        const NodeId d = healthy_[rng.uniform(static_cast<std::uint32_t>(healthy_.size()))];
        if (d != src) return d;
      }
    }
  }
  return kInvalidNode;
}

}  // namespace swft
