// Flow-control digits (flits) and the per-VC flit FIFO.
//
// Wormhole switching breaks each message into flits; only the header carries
// routing state, the data flits follow in a pipelined fashion (paper §2).
#pragma once

#include <cassert>
#include <cstdint>

namespace swft {

using MsgId = std::uint32_t;
inline constexpr MsgId kInvalidMsg = ~MsgId{0};

enum class FlitKind : std::uint8_t {
  Header = 1,      // first flit: carries the routing information
  Body = 0,        // middle flit
  Tail = 2,        // last flit: releases channel state as it passes
  HeaderTail = 3,  // single-flit message
};

struct Flit {
  MsgId msg = kInvalidMsg;
  FlitKind kind = FlitKind::Body;

  [[nodiscard]] bool isHeader() const noexcept {
    return kind == FlitKind::Header || kind == FlitKind::HeaderTail;
  }
  [[nodiscard]] bool isTail() const noexcept {
    return kind == FlitKind::Tail || kind == FlitKind::HeaderTail;
  }
};

/// Fixed-capacity ring buffer of flits with per-flit arrival stamps.
/// The stamp enforces the 1 cycle/hop timing: a flit that arrived in cycle t
/// is eligible to depart in cycle t+1 at the earliest.
class FlitFifo {
 public:
  static constexpr int kMaxDepth = 16;

  explicit FlitFifo(int capacity = 4) : capacity_(capacity) {
    assert(capacity >= 1 && capacity <= kMaxDepth);
  }

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }
  [[nodiscard]] int freeSlots() const noexcept { return capacity_ - size_; }

  void push(Flit f, std::uint64_t arrivalCycle) noexcept {
    assert(!full());
    const int idx = (head_ + size_) % kMaxDepth;
    flit_[idx] = f;
    arrival_[idx] = arrivalCycle;
    ++size_;
  }

  [[nodiscard]] const Flit& front() const noexcept {
    assert(!empty());
    return flit_[head_];
  }
  /// Peek `i` positions behind the front (0 = front). Test/debug walks.
  [[nodiscard]] const Flit& flitAt(int i) const noexcept {
    assert(i >= 0 && i < size_);
    return flit_[(head_ + i) % kMaxDepth];
  }
  [[nodiscard]] std::uint64_t frontArrival() const noexcept {
    assert(!empty());
    return arrival_[head_];
  }

  Flit pop() noexcept {
    assert(!empty());
    Flit f = flit_[head_];
    head_ = (head_ + 1) % kMaxDepth;
    --size_;
    return f;
  }

  void clear() noexcept { size_ = 0; }

 private:
  Flit flit_[kMaxDepth]{};
  std::uint64_t arrival_[kMaxDepth]{};
  int head_ = 0;
  int size_ = 0;
  int capacity_;
};

}  // namespace swft
