#include "src/router/message_pool.hpp"

namespace swft {

MsgId MessagePool::allocate() {
  ++live_;
  if (!freeList_.empty()) {
    const MsgId id = freeList_.back();
    freeList_.pop_back();
    slots_[id] = Message{};
    return id;
  }
  slots_.emplace_back();
  return static_cast<MsgId>(slots_.size() - 1);
}

void MessagePool::release(MsgId id) {
  --live_;
  freeList_.push_back(id);
}

}  // namespace swft
