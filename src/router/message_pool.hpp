// Slab allocator for in-flight messages.
//
// Flits reference messages by MsgId (an index into the slab); slots are
// recycled through a free list once the tail flit is consumed, so the pool
// size tracks the number of messages alive in the network + source queues.
#pragma once

#include <cstdint>
#include <vector>

#include "src/router/message.hpp"

namespace swft {

class MessagePool {
 public:
  /// Allocate a slot; returns its id. The slot content is value-initialised.
  MsgId allocate();
  /// Return a slot to the free list. The id must be live.
  void release(MsgId id);

  [[nodiscard]] Message& get(MsgId id) noexcept { return slots_[id]; }
  [[nodiscard]] const Message& get(MsgId id) const noexcept { return slots_[id]; }

  [[nodiscard]] std::size_t liveCount() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<Message> slots_;
  std::vector<MsgId> freeList_;
  std::size_t live_ = 0;
};

}  // namespace swft
