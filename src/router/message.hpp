// Message (packet) state, including the header fields the Software-Based
// scheme rewrites when the messaging layer re-routes an absorbed message.
#pragma once

#include <cstdint>

#include "src/router/flit.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

/// Which routing family drives the message (paper §4): deterministic
/// (e-cube-based) or Duato fully adaptive. An adaptive message that is
/// absorbed by a fault is downgraded to Deterministic for the rest of its
/// life ("from this point, faulted messages are always routed using
/// detRouting2D").
enum class RoutingMode : std::uint8_t { Deterministic = 0, Adaptive = 1 };

inline constexpr std::int8_t kNoOverride = 0;

struct Message {
  // --- identity / workload -------------------------------------------------
  NodeId src = kInvalidNode;
  NodeId finalDest = kInvalidNode;
  std::uint32_t seq = 0;          // global generation sequence number
  std::uint64_t genCycle = 0;     // when the PE generated it
  std::uint16_t length = 1;       // flits, header included
  RoutingMode mode = RoutingMode::Deterministic;

  // --- software-based routing header state ---------------------------------
  /// Current routing target: the final destination, or an intermediate node
  /// address computed by the messaging layer (assumption (i), option ii).
  NodeId curTarget = kInvalidNode;
  /// True iff curTarget is a software intermediate: the message is absorbed
  /// there and re-routed, rather than consumed.
  bool absorbAtTarget = false;
  /// Second leg of a two-leg detour (used when the sidestep dimension is
  /// lower than the blocked dimension, where a single intermediate would be
  /// undone immediately by dimension-order routing). Promoted to curTarget
  /// when the first leg completes.
  NodeId pendingTarget = kInvalidNode;
  /// Per-dimension ring-direction override: 0 = minimal, +1 / -1 = forced
  /// direction (assumption (i), option i: "modifies the header so the
  /// message may follow an alternative path").
  std::int8_t dirOverride[kMaxDims] = {};
  /// Wrap-around crossing flags, one bit per dimension; selects the
  /// Dally-Seitz virtual-channel class. Reset at every (re-)injection.
  std::uint8_t wrappedMask = 0;

  // --- fault bookkeeping ----------------------------------------------------
  bool blockedValid = false;  // the absorption was caused by a faulty link
  std::uint8_t blockedDim = 0;
  std::int8_t blockedDirStep = 0;
  std::uint16_t absorptions = 0;       // software absorption events so far
  std::uint8_t consecutiveDetours = 0; // orthogonal detours without progress
  std::int8_t lastDetourDim = -1;      // boundary-following memory
  std::int8_t lastDetourDirStep = 0;

  // --- transport progress ---------------------------------------------------
  std::uint16_t flitsInjected = 0;  // pushed into the injection buffer
  std::uint16_t flitsEjected = 0;   // consumed at an ejection channel
  std::uint32_t hops = 0;           // header link traversals (all segments)
  std::uint64_t firstInjectCycle = ~std::uint64_t{0};

  [[nodiscard]] bool wrapped(int dim) const noexcept {
    return (wrappedMask >> dim) & 1u;
  }
  void setWrapped(int dim) noexcept { wrappedMask |= static_cast<std::uint8_t>(1u << dim); }
  void resetTransit() noexcept { wrappedMask = 0; }

  [[nodiscard]] FlitKind flitKindAt(int index) const noexcept {
    if (length == 1) return FlitKind::HeaderTail;
    if (index == 0) return FlitKind::Header;
    if (index == length - 1) return FlitKind::Tail;
    return FlitKind::Body;
  }
};

}  // namespace swft
