// Domain-decomposed multithreaded sparse engine (EngineKind::SparseMt).
//
// The torus is partitioned into `simThreads` contiguous node-id domains, one
// persistent worker per domain, and every cycle runs three barrier-separated
// phases (DESIGN.md §6):
//
//   P1 (parallel)  — per-domain route *precomputation*: for every occupied,
//                    unrouted header front visible at the start of the cycle,
//                    the pure routing function runs and the decision is
//                    stored on a per-router "card". No RNG, no mutation.
//   P2 (ordered)   — the serial "baton": generation, injection, and the
//                    router walk in the exact dense-sweep order. Every RNG
//                    consumer (injection VC rotation, VC allocation,
//                    software replanning) draws at its dense position. Link
//                    winners are chosen against *virtual* buffer sizes
//                    (arena size + pending delta) and their pops/pushes are
//                    recorded as per-domain commands instead of applied.
//   P3 (parallel)  — per-domain command apply: each domain pops then pushes
//                    its own routers' units. The only state shared across a
//                    domain boundary is the packed network-level active
//                    bitmap, updated via std::atomic_ref (RouterArena
//                    pushMt/popMt).
//
// The phase split never changes *which* decision is made or *when* a draw
// happens — only where the work runs — so SimResults are bit-identical to
// the dense and sparse engines at every thread count (enforced by
// tests/test_engine_equivalence.cpp, test_engine_mt.cpp and the fuzz
// harness).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "src/router/flit.hpp"
#include "src/routing/types.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

class Network;

/// First node of domain `d` when `nodes` routers are split across `domains`
/// contiguous node-id ranges, balanced to within one node. Domain d covers
/// [mtDomainStart(nodes, domains, d), mtDomainStart(nodes, domains, d + 1)).
[[nodiscard]] constexpr NodeId mtDomainStart(int nodes, int domains, int d) noexcept {
  return static_cast<NodeId>(static_cast<std::int64_t>(nodes) * d / domains);
}

/// Effective domain count for a requested `sim_threads` on `nodes` routers:
/// at least one, at most one per router (every domain must be non-empty).
[[nodiscard]] constexpr int mtEffectiveDomains(int nodes, int simThreads) noexcept {
  return simThreads < 1 ? 1 : (simThreads > nodes ? nodes : simThreads);
}

class MtEngine {
 public:
  MtEngine(Network& net, int simThreads);
  ~MtEngine();
  MtEngine(const MtEngine&) = delete;
  MtEngine& operator=(const MtEngine&) = delete;

  /// One simulation cycle (called from Network::advanceCycle, which owns the
  /// cycle counter increment and the deadlock watchdog).
  void advanceCycle();

  [[nodiscard]] int domains() const noexcept { return domains_; }

 private:
  // A precomputed route decision for one occupied, unrouted header front.
  struct PaCand {
    std::int32_t unit;  // global arena unit index
    MsgId msg;
    RouteDecision dec;
  };
  // Deferred arena mutations, queued by the baton, applied in P3 by the
  // domain owning `node` (all pops of a domain apply before its pushes).
  struct PopCmd {
    NodeId node;
    std::int32_t unit;
  };
  struct PushCmd {
    NodeId node;
    std::int32_t unit;
    Flit flit;
  };
  // A header that logically became a unit's front *during* the baton (fresh
  // injection, or a deferred cross-router push into an empty unit): the
  // dense sweep would route it when it reaches the router, so the walk
  // merges these into the router's card span, ascending by unit.
  struct FoldIn {
    std::int32_t unit;
    MsgId msg;
    std::int32_t next;  // intrusive per-router list (foldHead_)
  };

  void workerLoop(int d);
  void launchPhase();
  void awaitWorkers();

  void buildCards(int d);    // P1 for one domain
  void baton();              // P2, main thread only
  void applyCommands(int d); // P3 for one domain

  void stepRouterMt(NodeId id);
  void commitLinkMt(NodeId id, int port, int winnerIdx);
  void ejectFlitMt(NodeId id, int unitIdx);
  void deferPush(NodeId node, std::int32_t unit, Flit f);
  void addFoldIn(NodeId node, std::int32_t unit, MsgId msg);
  [[nodiscard]] bool creditAvailable(std::int32_t downUnit) const noexcept;

  Network& net_;
  int domains_;
  std::vector<NodeId> domStart_;          // domains_ + 1 fenceposts
  std::vector<std::uint16_t> domainOf_;   // node -> owning domain

  // P1 output: per-domain card vectors plus per-router spans into them.
  // cardCycle_ holds cycle + 1 when the span is valid, so nothing needs
  // clearing between cycles.
  std::vector<std::vector<PaCand>> cards_;
  std::vector<std::int32_t> cardHead_;
  std::vector<std::uint16_t> cardCount_;
  std::vector<std::uint64_t> cardCycle_;

  // Baton output: per-domain command queues and the per-unit size delta the
  // virtual credit checks read (pending pushes minus pending pops).
  std::vector<std::vector<PopCmd>> pops_;
  std::vector<std::vector<PushCmd>> pushes_;
  std::vector<std::int16_t> sizeDelta_;

  // The baton's view of the router active set: the arena bitmap copied
  // after injection, with bits OR-ed in as deferred pushes activate empty
  // routers mid-walk (matching the dense visit-iff-later-in-sweep rule).
  std::vector<std::uint64_t> batonActive_;
  std::vector<FoldIn> folds_;
  std::vector<std::int32_t> foldHead_;   // node -> first fold index, -1 none
  std::vector<NodeId> foldTouched_;      // for O(touched) reset
  std::vector<std::pair<NodeId, std::int32_t>> injFolds_;

  // Barrier state: `epoch_` counts launched phases (odd = P1, even = P3);
  // workers spin (with yield) until it advances, run their slice, and bump
  // `arrived_`. T == 1 runs everything inline with no workers.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace swft
