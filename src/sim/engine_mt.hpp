// Domain-decomposed multithreaded sparse engine (EngineKind::SparseMt).
//
// The torus is partitioned into `simThreads` contiguous node-id domains, one
// persistent worker per domain, and every cycle runs three barrier-separated
// phases (DESIGN.md §6):
//
//   P1 (parallel)  — per-domain *precomputation*. Route cards: for every
//                    occupied, unrouted header front visible at the start of
//                    the cycle, the pure routing function runs and the
//                    decision is stored on a per-router "card". Link cards:
//                    the branchless link-qualification pass (link_qual.hpp)
//                    runs over each router's live units against the
//                    start-of-cycle credit snapshot, storing per-port
//                    qualified-candidate masks plus the credit-blocked set.
//                    No RNG, no mutation.
//   P2 (ordered)   — the serial "baton": generation, injection, and the
//                    router walk in the exact dense-sweep order. Every RNG
//                    consumer (injection VC rotation, VC allocation,
//                    software replanning) draws at its dense position. The
//                    link pass *validates* the P1 card instead of re-running
//                    it: snapshot-qualified candidates stand as-is (their
//                    credit can only have improved — see the monotonicity
//                    argument in stepRouterMt), snapshot-blocked candidates
//                    re-check against *virtual* buffer sizes (arena size +
//                    pending delta), and only units the card does not cover
//                    (routed this very cycle, or on an uncarded router)
//                    re-qualify from scratch. Winner pops/pushes are
//                    recorded as per-domain commands; per-hop stat updates
//                    and trace events are buffered instead of applied.
//   P3 (parallel)  — per-domain command apply: each domain pops then pushes
//                    its own routers' units and applies its buffered hop
//                    updates (order-insensitive increments on distinct
//                    messages). The main thread flushes the staged trace
//                    events FIFO into the recorder. The only state shared
//                    across a domain boundary is the packed network-level
//                    active bitmap, updated via std::atomic_ref (RouterArena
//                    pushMt/popMt).
//
// The phase split never changes *which* decision is made or *when* a draw
// happens — only where the work runs — so SimResults are bit-identical to
// the dense and sparse engines at every thread count (enforced by
// tests/test_engine_equivalence.cpp, test_engine_mt.cpp and the fuzz
// harness).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "src/router/flit.hpp"
#include "src/routing/types.hpp"
#include "src/sim/trace.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

class Network;

/// First node of domain `d` when `nodes` routers are split across `domains`
/// contiguous node-id ranges, balanced to within one node. Domain d covers
/// [mtDomainStart(nodes, domains, d), mtDomainStart(nodes, domains, d + 1)).
[[nodiscard]] constexpr NodeId mtDomainStart(int nodes, int domains, int d) noexcept {
  return static_cast<NodeId>(static_cast<std::int64_t>(nodes) * d / domains);
}

/// Effective domain count for a requested `sim_threads` on `nodes` routers:
/// at least one, at most one per router (every domain must be non-empty).
[[nodiscard]] constexpr int mtEffectiveDomains(int nodes, int simThreads) noexcept {
  return simThreads < 1 ? 1 : (simThreads > nodes ? nodes : simThreads);
}

class MtEngine {
 public:
  MtEngine(Network& net, int simThreads);
  ~MtEngine();
  MtEngine(const MtEngine&) = delete;
  MtEngine& operator=(const MtEngine&) = delete;

  /// One simulation cycle (called from Network::advanceCycle, which owns the
  /// cycle counter increment and the deadlock watchdog).
  void advanceCycle();

  [[nodiscard]] int domains() const noexcept { return domains_; }

 private:
  // A precomputed route decision for one occupied, unrouted header front.
  struct PaCand {
    std::int32_t unit;  // global arena unit index
    MsgId msg;
    RouteDecision dec;
  };
  // Deferred arena mutations, queued by the baton, applied in P3 by the
  // domain owning `node` (all pops of a domain apply before its pushes).
  struct PopCmd {
    NodeId node;
    std::int32_t unit;
  };
  struct PushCmd {
    NodeId node;
    std::int32_t unit;
    Flit flit;
  };
  // A header that logically became a unit's front *during* the baton (fresh
  // injection, or a deferred cross-router push into an empty unit): the
  // dense sweep would route it when it reaches the router, so the walk
  // merges these into the router's card span, ascending by unit.
  struct FoldIn {
    std::int32_t unit;
    MsgId msg;
    std::int32_t next;  // intrusive per-router list (foldHead_)
  };
  // A header link traversal whose Message-side bookkeeping (++hops, wrap
  // marking) is deferred to P3. Safe to apply from any thread: a message
  // crosses at most one link per cycle (its header occupies exactly one
  // front), so the records in one cycle target pairwise-distinct messages.
  struct HopRec {
    MsgId msg;
    std::uint8_t dim;
    bool wrapped;
  };
  // A fully precomputed fast-path link commit. Every field is derived in P1
  // from state frozen through P2: the winner's front flit (its unit is
  // popped only at this very commit), its route word (outVc / downstream
  // unit — routed units keep their route until the tail release at their
  // own turn), the downstream arena size (pops and network pushes are
  // deferred to P3), and the wake target (full-at-P1 is the wake
  // precondition, and sizes are frozen). The baton's fast path applies only
  // the serially-ordered effects — sizeDelta_, wake stamps, the
  // virtual-emptiness fold-in probe, cursor writes, tail release — and
  // confirms the span for P3 to pop/push/hop-apply from directly.
  struct CommitRec {
    Flit flit;                // front of `g` at P1
    std::int32_t g;           // popped unit (global index)
    std::int32_t du;          // downstream unit (global index)
    NodeId down;              // downstream router
    std::int32_t wakeNbr;     // upstream feeder to stamp on pop, -1 if none
    std::uint16_t sizeP1du;   // arena size of `du` at P1 (frozen through P2)
    std::uint8_t port;        // output port
    std::uint8_t nextCur;     // round-robin cursor value after this winner
    std::uint8_t winnerIdx;   // in-router unit index of the winner
    std::uint8_t outVc;       // allocated output VC (for the tail release)
    std::uint8_t dim;         // dimension of `port` (wrap marking)
    std::uint8_t flags;       // kCr* bits below
  };
  static constexpr std::uint8_t kCrHeader = 1;    // flit.isHeader()
  static constexpr std::uint8_t kCrTail = 2;      // flit.isTail()
  static constexpr std::uint8_t kCrWrap = 4;      // link wraps `dim`
  static constexpr std::uint8_t kCrInjUnit = 8;   // winner is an injection unit
  static constexpr std::uint8_t kCrCross = 16;    // `down` is in another domain
  static constexpr std::uint8_t kCrEagerHop = 32; // baton applied hops eagerly
  // A baton-confirmed run of CommitRecs (one fast-path router's winners) for
  // P3 to apply: `head` indexes the router's domain's commitStage_ vector.
  struct ConfirmedSpan {
    std::uint32_t head;
    NodeId node;
    std::uint16_t count;
  };

  void workerLoop(int d);
  void launchPhase();
  void awaitWorkers();

  void buildCards(int d);      // P1 for one domain: route cards
  void buildLinkCards(int d);  // P1 for one domain: link + commit cards
  void baton();                // P2, main thread only
  void applyCommands(int d);   // P3 for one domain
  void resetSizeDeltas();      // zero sizeDelta_ via the cycle's commands

  void stepRouterMt(NodeId id);
  void commitLinkMt(NodeId id, int port, int winnerIdx);
  void ejectFlitMt(NodeId id, int unitIdx);
  void deferPush(NodeId node, std::int32_t unit, Flit f);
  void wakeUpstream(NodeId id, int unitIdx);
  void addFoldIn(NodeId node, std::int32_t unit, MsgId msg);
  [[nodiscard]] bool creditAvailable(std::int32_t downUnit) const noexcept;

  Network& net_;
  int domains_;
  std::vector<NodeId> domStart_;          // domains_ + 1 fenceposts
  std::vector<std::uint16_t> domainOf_;   // node -> owning domain

  // P1 output: per-domain card vectors. The per-router spans into them live
  // in the shared per-router metadata block (kMCard / kMCardCyc below).
  std::vector<std::vector<PaCand>> cards_;

  // P1 card output. Per router, one cache-line-aligned 8-word metadata
  // block (lqMeta_, the 64-byte-aligned view of lqMetaStore_) holding both
  // the route-card span and — for occW == 1 configurations (lqEnabled_) —
  // the link-card words, so a baton turn probes a single line. The link
  // slow path additionally reads this router's row of per-port
  // qualified-candidate masks (lqOk_, stride lqPorts_), and may mutate it
  // in place — rows are rebuilt next P1.
  // Block layout:
  //   [kMCyc]     cycle + 1 validity stamp (same trick as cardCycle_)
  //   [kMWake]    cycle + 1 if a baton pop freed credit one of this
  //               router's blocked candidates might wait on (wakeUpstream;
  //               written and read by the baton thread only)
  //   [kMLive]    live mask at P1 — exactly qualified ∪ blocked, because
  //               the freshness test is vacuous at P1, so the baton's
  //               uncovered-units fixup mask is one AND-NOT away
  //   [kMBlocked] live candidates the snapshot rejected *only* for credit
  //               (the baton re-checks exactly these, and only when woken)
  //   [kMPm]      ports-with-candidates mask
  //   [kMWin]     precomputed winners: kMPm in bits 0..8, then the rotated
  //               round-robin winner unit of port p in bits 9+6p..14+6p
  //               (cursors mutate only at the owning router's baton turn,
  //               so P1 sees exactly the value the turn will use). Only
  //               written when lqWinPack_ — the layout fits 9 ports, i.e.
  //               tori up to 4 dimensions; beyond that the baton falls back
  //               to scanning the card rows.
  //   [kMCard]    route-card span: head index into the owning domain's
  //               cards_ vector in bits 16.., entry count in bits 0..15
  //   [kMCardCyc] cycle + 1 validity stamp for kMCard
  static constexpr int kMCyc = 0, kMWake = 1, kMLive = 2, kMBlocked = 3,
                       kMPm = 4, kMWin = 5, kMCard = 6, kMCardCyc = 7,
                       kMStride = 8;
  bool lqEnabled_ = false;
  bool lqWinPack_ = false;
  int lqPorts_ = 0;
  int injUnitFloor_ = 0;             // networkPorts * vcs, hoisted
  std::vector<std::uint8_t> portOfUnit_;  // unit-in-router -> input port
  std::vector<std::uint64_t> lqOk_;
  std::vector<std::uint64_t> lqMetaStore_;
  std::uint64_t* lqMeta_ = nullptr;

  // P1 staged commits (lqWinPack_ only): per-domain CommitRec vectors, the
  // per-router span word (head << 16 | count, valid under the same kMCyc
  // stamp as the link card), and the baton's per-domain confirmed lists.
  // Only fast-path turns confirm their span; a woken or widened router falls
  // back to commitLinkMt and its staged recs go unused.
  std::vector<std::vector<CommitRec>> commitStage_;
  std::vector<std::uint64_t> commitSpan_;
  std::vector<std::vector<ConfirmedSpan>> confirmed_;

  // Baton output: per-domain command queues and the per-unit size delta the
  // virtual credit checks read (pending pushes minus pending pops).
  std::vector<std::vector<PopCmd>> pops_;
  std::vector<std::vector<PushCmd>> pushes_;
  std::vector<std::int16_t> sizeDelta_;

  // Baton output, deferred sinks: per-domain hop records applied by the
  // domain's P3 worker, and the trace staging buffer the main thread
  // flushes (FIFO, so the recorder sees the exact dense emission order)
  // while P3 runs. Installed as Network::traceSink_ for the whole run —
  // every mt trace emission happens on the baton thread.
  std::vector<std::vector<HopRec>> hopDeferred_;
  TraceBuffer traceStage_;

  // The baton's view of the router active set: the arena bitmap copied
  // after injection, with bits OR-ed in as deferred pushes activate empty
  // routers mid-walk (matching the dense visit-iff-later-in-sweep rule).
  std::vector<std::uint64_t> batonActive_;
  std::vector<FoldIn> folds_;
  std::vector<std::int32_t> foldHead_;   // node -> first fold index, -1 none
  std::vector<NodeId> foldTouched_;      // for O(touched) reset
  std::vector<std::pair<NodeId, std::int32_t>> injFolds_;

  // Barrier state: `epoch_` counts launched phases (odd = P1, even = P3);
  // workers spin (with yield) until it advances, run their slice, and bump
  // `arrived_`. T == 1 runs everything inline with no workers.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace swft
