// The dense reference engine: the seed implementation, kept verbatim.
//
// This is the "old path" of the engine-equivalence contract — the seed
// per-cycle pipeline over per-router `RouterState` storage, sweeping every
// node every cycle. It exists for two reasons: the equivalence suite proves
// the event-sparse engine (engine.cpp) bit-identical against it, and the
// kernel_microbench harness uses it as the measured "before" side of the
// perf baseline. Do not optimise this file; it is the yardstick. The only
// deliberate divergences from the seed are the two ISSUE-2 injection fixes
// (peek-don't-pop requeue, single unsigned VC-rotation draw), which both
// engines must share to stay bit-identical.
#include <bit>
#include <cassert>

#include "src/sim/network.hpp"

namespace swft {

void Network::advanceCycleDense() {
  // Phase 1: PEs generate traffic and stream flits into injection VCs.
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    stepGeneration(id);
    stepInjectionDense(id);
  }

  // Phase 2+3 per router. Alternate the sweep direction each cycle so the
  // single-pass commit semantics do not systematically favour low ids.
  const bool forward = (cycle_ & 1) == 0;
  const auto n = static_cast<std::int64_t>(topo_.nodeCount());
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(forward ? i : n - 1 - i);
    if (!legacy_[id].anyOccupied()) continue;
    stepRouterDense(id);
  }
}

void Network::stepInjectionDense(NodeId id) {
  NodeState& node = nodes_[id];
  RouterState& router = legacy_[id];
  const int injPort = topo_.localPort();

  // Pick the next message to stream: absorbed messages have priority over
  // new messages (paper §4, starvation prevention). Peek, don't pop — on a
  // busy-VC retreat the message must keep its queue position and readyCycle.
  if (node.streaming == kInvalidMsg) {
    MsgId next = kInvalidMsg;
    bool fromSwQueue = false;
    if (!node.swQueue.empty() && node.swQueue.front().readyCycle <= cycle_) {
      next = node.swQueue.front().msg;
      fromSwQueue = true;
    } else if (!node.sourceQueue.empty()) {
      next = node.sourceQueue.front();
    }
    if (next == kInvalidMsg) return;
    // Choose an injection VC whose buffer is empty; rotate the start index
    // to spread successive messages over the V injection buffers.
    const auto start = static_cast<std::uint32_t>(engineRng_.next() >> 32);
    int chosenVc = -1;
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int vc = static_cast<int>((start + static_cast<std::uint32_t>(i)) %
                                      static_cast<std::uint32_t>(cfg_.vcs));
      if (router.unit(injPort, vc).buf.empty() && !router.unit(injPort, vc).routed) {
        chosenVc = vc;
        break;
      }
    }
    if (chosenVc < 0) return;  // all injection buffers busy: retry next cycle
    if (fromSwQueue) {
      node.swQueue.pop_front();
    } else {
      node.sourceQueue.pop_front();
    }
    node.streaming = next;
    node.streamVc = chosenVc;
    node.nextFlit = 0;
    Message& m = pool_.get(next);
    m.resetTransit();  // fresh network segment: wrap classes reset
    m.flitsEjected = 0;
    if (m.firstInjectCycle == ~std::uint64_t{0}) m.firstInjectCycle = cycle_;
  }

  // Stream one flit per cycle (injection channel bandwidth, assumption (g)).
  Message& m = pool_.get(node.streaming);
  const int unitIdx = router.unitIndex(injPort, node.streamVc);
  InputUnit& unit = router.unit(unitIdx);
  if (unit.buf.full()) return;
  Flit f;
  f.msg = node.streaming;
  f.kind = m.flitKindAt(node.nextFlit);
  const bool wasEmpty = unit.buf.empty();
  unit.buf.push(f, cycle_);
  if (wasEmpty) router.markOccupied(unitIdx);
  lastMovementCycle_ = cycle_;
  if (trace_ != nullptr && node.nextFlit == 0) {
    trace_->record({m.absorptions > 0 ? TraceEvent::Kind::Reinject
                                      : TraceEvent::Kind::Inject,
                    cycle_, id, 0, m.seq});
  }
  ++node.nextFlit;
  if (f.isTail()) {
    node.streaming = kInvalidMsg;
    node.streamVc = -1;
  }
}

void Network::routeHeaderDense(NodeId id, int unitIdx) {
  RouterState& router = legacy_[id];
  InputUnit& unit = router.unit(unitIdx);
  Message& msg = pool_.get(unit.buf.front().msg);

  RouteDecision decision;
  if (msg.curTarget == id) {
    decision = RouteDecision::deliver();
  } else if (msg.mode == RoutingMode::Adaptive) {
    decision = duato_.route(msg, id, faults_, part_);
  } else {
    decision = ecube_.route(msg, id, faults_, part_);
  }

  switch (decision.kind) {
    case RouteDecision::Kind::Deliver:
      unit.routed = true;
      unit.outPort = static_cast<std::uint8_t>(topo_.localPort());
      return;
    case RouteDecision::Kind::Absorb:
      // The required outgoing channel leads to a fault: eject here and hand
      // the message to the messaging layer (assumption (i)).
      msg.blockedValid = true;
      msg.blockedDim = decision.blockedDim;
      msg.blockedDirStep = decision.blockedDirStep;
      unit.routed = true;
      unit.outPort = static_cast<std::uint8_t>(topo_.localPort());
      return;
    case RouteDecision::Kind::Forward:
      break;
  }

  // Virtual-channel allocation: collect free output VCs over all candidates
  // and pick one at random (assumption (e): "chooses randomly one of the
  // available virtual channels ... that brings it closer to its destination").
  InlineVector<std::uint16_t, 128> free;  // encoded port * 16 + vc
  for (const RouteCandidate& cand : decision.candidates) {
    if (free.size() == free.capacity()) break;
    for (int vc = 0; vc < cfg_.vcs; ++vc) {
      if (!(cand.vcs & (1u << vc))) continue;
      if (router.outOwner(cand.outPort, vc) >= 0) continue;
      free.push_back(static_cast<std::uint16_t>(cand.outPort * 16 + vc));
      if (free.size() == free.capacity()) break;
    }
  }
  if (free.empty()) return;  // all admissible VCs busy: retry next cycle
  const std::uint16_t pick =
      free[engineRng_.uniform(static_cast<std::uint32_t>(free.size()))];
  const int outPort = pick / 16;
  const int outVc = pick % 16;
  unit.routed = true;
  unit.outPort = static_cast<std::uint8_t>(outPort);
  unit.outVc = static_cast<std::uint8_t>(outVc);
  router.setOutOwner(outPort, outVc, static_cast<std::int16_t>(unitIdx));
}

void Network::stepRouterDense(NodeId id) {
  RouterState& router = legacy_[id];
  const int ports = topo_.totalPorts();
  const int localPort = topo_.localPort();
  const auto td = static_cast<std::uint64_t>(cfg_.routerDecisionTime);

  // Single pass over occupied units: route-compute unrouted headers, then
  // record switch requests; per output port keep the round-robin-best
  // eligible requester. (portOf(dim, opposite(dir)) == port ^ 1.)
  InlineVector<std::int16_t, 2 * kMaxDims + 1> winner;
  InlineVector<std::int16_t, 2 * kMaxDims + 1> winnerKey;
  winner.resize(static_cast<std::size_t>(ports), -1);
  winnerKey.resize(static_cast<std::size_t>(ports), std::int16_t{0x7FFF});

  const auto& occ = router.occupancy();
  const int unitCount = router.unitCount();
  for (int w = 0; w < RouterState::kOccWords; ++w) {
    std::uint64_t bits = occ[w];
    while (bits) {
      const int unitIdx = w * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      InputUnit& unit = router.unit(unitIdx);
      if (!unit.routed) {
        if (!unit.buf.front().isHeader()) continue;
        if (unit.buf.frontArrival() + td > cycle_) continue;  // Td model
        routeHeaderDense(id, unitIdx);
        if (!unit.routed) continue;
      }
      if (unit.buf.frontArrival() >= cycle_) continue;  // arrived this cycle
      const int port = unit.outPort;
      if (port != localPort) {
        // Credit check: the downstream input buffer must have a free slot.
        const RouterState& downRouter = legacy_[cachedNeighbor(id, port)];
        if (downRouter.unit((port ^ 1) * cfg_.vcs + unit.outVc).buf.full()) continue;
      }
      // Round-robin key relative to the port cursor (branch beats modulo).
      int key = unitIdx - router.cursor(port);
      if (key < 0) key += unitCount;
      if (key < winnerKey[static_cast<std::size_t>(port)]) {
        winnerKey[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(key);
        winner[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(unitIdx);
      }
    }
  }

  for (int port = 0; port < ports; ++port) {
    const int unitIdx = winner[static_cast<std::size_t>(port)];
    if (unitIdx < 0) continue;
    router.setCursor(port, static_cast<std::uint16_t>((unitIdx + 1) % unitCount));
    if (port == localPort) {
      ejectFlitDense(id, unitIdx);
      continue;
    }
    InputUnit& unit = router.unit(unitIdx);
    const Flit flit = unit.buf.pop();
    if (unit.buf.empty()) router.markEmpty(unitIdx);
    lastMovementCycle_ = cycle_;

    Message& msg = pool_.get(flit.msg);
    if (flit.isHeader()) {
      ++msg.hops;
      if (cachedWrap(id, port)) msg.setWrapped(dimOfPort(port));
      if (trace_ != nullptr) {
        trace_->record({TraceEvent::Kind::Hop, cycle_, id,
                        static_cast<std::uint8_t>(port), msg.seq});
      }
    }
    RouterState& downRouter = legacy_[cachedNeighbor(id, port)];
    const int downUnitIdx = downRouter.unitIndex(port ^ 1, unit.outVc);
    InputUnit& downUnit = downRouter.unit(downUnitIdx);
    const bool wasEmpty = downUnit.buf.empty();
    downUnit.buf.push(flit, cycle_);
    if (wasEmpty) downRouter.markOccupied(downUnitIdx);

    if (flit.isTail()) {
      unit.routed = false;
      router.setOutOwner(port, unit.outVc, -1);
    }
  }
}

void Network::ejectFlitDense(NodeId id, int unitIdx) {
  RouterState& router = legacy_[id];
  InputUnit& unit = router.unit(unitIdx);
  const Flit flit = unit.buf.pop();
  if (unit.buf.empty()) router.markEmpty(unitIdx);
  lastMovementCycle_ = cycle_;

  Message& msg = pool_.get(flit.msg);
  ++msg.flitsEjected;
  if (flit.isTail()) {
    unit.routed = false;
    finalizeEjected(id, flit.msg);
  }
}

// Seed-shape invariant validation over the legacy storage (the arena-based
// validator in network.cpp covers the sparse engine).
std::string Network::validateLegacyRouters() const {
  const int vcs = cfg_.vcs;
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    const RouterState& router = legacy_[id];
    // 1. Occupancy bits mirror buffer emptiness exactly.
    for (int u = 0; u < router.unitCount(); ++u) {
      const bool bit = (router.occupancy()[static_cast<std::size_t>(u) >> 6] >>
                        (u & 63)) & 1u;
      const bool nonEmpty = !router.unit(u).buf.empty();
      if (bit != nonEmpty) {
        return "occupancy bit mismatch at node " + std::to_string(id) + " unit " +
               std::to_string(u);
      }
    }
    // 2. Output-VC ownership: every owner refers to a routed unit whose
    //    allocation points back at exactly that (port, vc).
    for (int port = 0; port < topo_.networkPorts(); ++port) {
      for (int vc = 0; vc < vcs; ++vc) {
        const std::int16_t owner = router.outOwner(port, vc);
        if (owner < 0) continue;
        if (owner >= router.unitCount()) {
          return "out-of-range output owner at node " + std::to_string(id);
        }
        const InputUnit& unit = router.unit(owner);
        if (!unit.routed || unit.outPort != port || unit.outVc != vc) {
          return "inconsistent output ownership at node " + std::to_string(id) +
                 " port " + std::to_string(port) + " vc " + std::to_string(vc);
        }
      }
    }
    // 3. A routed unit targeting a network port must hold that output VC.
    for (int u = 0; u < router.unitCount(); ++u) {
      const InputUnit& unit = router.unit(u);
      if (!unit.routed || unit.outPort == topo_.localPort()) continue;
      if (router.outOwner(unit.outPort, unit.outVc) != static_cast<std::int16_t>(u)) {
        return "routed unit without matching ownership at node " + std::to_string(id);
      }
    }
    // 4. Wormhole contiguity: within a VC buffer, flits between a header and
    //    its tail belong to one message, and kinds follow H (B*) T framing.
    for (int u = 0; u < router.unitCount(); ++u) {
      FlitFifo copy = router.unit(u).buf;  // value copy: safe to drain
      MsgId current = kInvalidMsg;
      while (!copy.empty()) {
        const Flit f = copy.pop();
        if (current == kInvalidMsg) {
          // First flit of a framing span: either a header, or the mid-drain
          // remainder of a message whose header departed earlier.
          current = f.msg;
        } else if (f.msg != current) {
          return "interleaved messages in one VC buffer at node " + std::to_string(id);
        }
        if (f.isTail()) current = kInvalidMsg;
      }
    }
  }
  return {};
}

}  // namespace swft
