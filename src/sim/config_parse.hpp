// key=value configuration parsing for the CLI front-end and scripted runs.
//
// Accepted keys (all optional, defaults from SimConfig):
//   k, n, vcs, escape_vcs, buffer_depth, msg_length, rate, routing
//   (det|adaptive), traffic (uniform|transpose|bitcomp|bitrev|shuffle|
//   tornado|hotspot; `pattern` is a legacy alias), hotspot_fraction,
//   delta, td, nf (random node faults), region (shape:e0xe1[@x,y] —
//   repeatable), warmup, measured, max_cycles, seed, livelock_threshold
#pragma once

#include <span>
#include <string>

#include "src/sim/config.hpp"

namespace swft {

/// Parse one `key=value` assignment into `cfg`. Throws std::invalid_argument
/// with a descriptive message on unknown keys or malformed values.
void applyConfigAssignment(SimConfig& cfg, const std::string& assignment);

/// Parse a whole argument list (e.g. argv[1..]); each element must be a
/// `key=value` pair.
SimConfig parseConfig(std::span<const std::string> assignments,
                      const SimConfig& defaults = SimConfig{});

/// One-line human-readable summary of a configuration.
[[nodiscard]] std::string describeConfig(const SimConfig& cfg);

}  // namespace swft
