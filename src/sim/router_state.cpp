#include "src/sim/router_state.hpp"

#include <stdexcept>

namespace swft {

RouterState::RouterState(int totalPorts, int networkPorts, int vcs, int bufferDepth)
    : vcs_(vcs),
      outOwner_(static_cast<std::size_t>(networkPorts) * static_cast<std::size_t>(vcs), -1),
      rrCursor_(static_cast<std::size_t>(totalPorts), 0) {
  const int units = totalPorts * vcs;
  if (units > kOccWords * 64) {
    throw std::invalid_argument("RouterState: too many input units for occupancy mask");
  }
  units_.reserve(static_cast<std::size_t>(units));
  for (int i = 0; i < units; ++i) {
    InputUnit u;
    u.buf = FlitFifo(bufferDepth);
    units_.push_back(u);
  }
}

}  // namespace swft
