// Per-message event tracing.
//
// When a TraceRecorder is attached to a Network, the engine records every
// injection, header link traversal, software absorption, re-injection and
// delivery. Tests use the traces to verify *path-level* properties that
// aggregate statistics cannot see: that every in-network segment of a
// deterministic message is dimension-ordered (the premise of the paper's
// deadlock-freedom argument), that fault-free adaptive hops are minimal,
// and that absorption/re-injection pairs alternate correctly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/router/flit.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    Inject,    // first flit of a fresh message enters an injection buffer
    Hop,       // header crosses a network link (node -> neighbor via port)
    Absorb,    // tail ejected into the messaging layer due to a fault
    Reinject,  // absorbed message re-enters an injection buffer
    Deliver,   // tail ejected at the final destination PE
  };

  Kind kind = Kind::Inject;
  std::uint64_t cycle = 0;
  NodeId node = kInvalidNode;  // where the event happened
  std::uint8_t port = 0;       // Hop only: output port taken
  std::uint32_t seq = 0;       // message generation sequence number
};

class TraceRecorder {
 public:
  void record(TraceEvent event) {
    byMessage_[event.seq].push_back(event);
    ++count_;
  }

  [[nodiscard]] const std::vector<TraceEvent>& eventsFor(std::uint32_t seq) const {
    static const std::vector<TraceEvent> kEmpty;
    const auto it = byMessage_.find(seq);
    return it == byMessage_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] std::size_t messageCount() const noexcept { return byMessage_.size(); }
  [[nodiscard]] std::size_t eventCount() const noexcept { return count_; }

  /// Sequence numbers of all traced messages (unordered).
  [[nodiscard]] std::vector<std::uint32_t> tracedMessages() const {
    std::vector<std::uint32_t> out;
    out.reserve(byMessage_.size());
    for (const auto& [seq, events] : byMessage_) out.push_back(seq);
    return out;
  }

  void clear() {
    byMessage_.clear();
    count_ = 0;
  }

 private:
  std::unordered_map<std::uint32_t, std::vector<TraceEvent>> byMessage_;
  std::size_t count_ = 0;
};

/// Flat staging buffer for deferred trace emission (the sparse-mt engine's
/// serial baton). `record` on a TraceRecorder is a hash-map operation per
/// event; the mt engine instead appends events to this buffer during its
/// serial phase — in exactly the order the dense sweep would record them —
/// and flushes FIFO into the real recorder while the parallel commit phase
/// runs. FIFO flush preserves the per-message event order byte-for-byte, so
/// recorded goldens and pinned hop vectors are unchanged.
class TraceBuffer {
 public:
  void stage(TraceEvent event) { events_.push_back(event); }

  /// Drain every staged event into `rec`, oldest first.
  void flushTo(TraceRecorder& rec) {
    for (const TraceEvent& e : events_) rec.record(e);
    events_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace swft
