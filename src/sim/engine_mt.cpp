// The sparse-mt cycle: parallel route precomputation (P1), the ordered
// serial baton (P2), parallel per-domain command apply (P3). See
// engine_mt.hpp and DESIGN.md §6 for the phase contract and the equivalence
// argument; the baton's router step mirrors Network::stepRouter
// (engine.cpp) with pops/pushes deferred and credit checks virtualised.
#include "src/sim/engine_mt.hpp"

#include <bit>
#include <cassert>

#include "src/sim/network.hpp"

#ifdef SWFT_PHASE_TIMERS
#include <array>
#include <chrono>
#include <cstdio>
namespace {
// Per-phase, per-thread accumulation for the barrier-phased engine: row =
// thread slot (the domain index; the main thread is slot 0), column = phase.
// Workers only ever write their own row, so no synchronisation is needed
// beyond the engine's own barriers.
struct MtPhaseTimers {
  static constexpr int kMaxThreads = 64;
  enum Phase { kCards = 0, kGen, kInj, kWalk, kCommit, kBarrier, kPhases };
  std::array<std::array<double, kPhases>, kMaxThreads> acc{};
  int threads = 1;
  ~MtPhaseTimers() {
    if (acc[0][kCards] + acc[0][kWalk] + acc[0][kCommit] == 0.0) return;
    for (int t = 0; t < threads && t < kMaxThreads; ++t) {
      std::fprintf(stderr,
                   "mt phase timers[%d]: cards %.3fs gen %.3fs inj %.3fs "
                   "walk %.3fs commit %.3fs barrier %.3fs\n",
                   t, acc[t][kCards], acc[t][kGen], acc[t][kInj], acc[t][kWalk],
                   acc[t][kCommit], acc[t][kBarrier]);
    }
  }
} g_mtpt;
inline double mtNowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace
#define SWFT_MT_MARK(var) const double mt_##var = mtNowSec()
#define SWFT_MT_ADD(slot, phase, a, b) \
  g_mtpt.acc[(slot) & 63][MtPhaseTimers::phase] += mt_##b - mt_##a
#else
#define SWFT_MT_MARK(var)
#define SWFT_MT_ADD(slot, phase, a, b)
#endif

namespace swft {

namespace {

// Spin with a yield fallback: on machines with fewer cores than domains
// (including the single-core CI runner) the yield lets the scheduler run
// whichever thread holds the next phase.
inline void spinPause(int& spins) {
  if (++spins > 64) std::this_thread::yield();
}

}  // namespace

MtEngine::MtEngine(Network& net, int simThreads)
    : net_(net),
      domains_(mtEffectiveDomains(net.arena_.nodes(), simThreads)) {
  const int nodes = net_.arena_.nodes();
  domStart_.resize(static_cast<std::size_t>(domains_) + 1);
  for (int d = 0; d <= domains_; ++d) domStart_[d] = mtDomainStart(nodes, domains_, d);
  domainOf_.resize(static_cast<std::size_t>(nodes));
  for (int d = 0; d < domains_; ++d) {
    for (NodeId id = domStart_[d]; id < domStart_[d + 1]; ++id) {
      domainOf_[id] = static_cast<std::uint16_t>(d);
    }
  }
  cards_.resize(static_cast<std::size_t>(domains_));
  pops_.resize(static_cast<std::size_t>(domains_));
  pushes_.resize(static_cast<std::size_t>(domains_));
  cardHead_.resize(static_cast<std::size_t>(nodes), 0);
  cardCount_.resize(static_cast<std::size_t>(nodes), 0);
  cardCycle_.resize(static_cast<std::size_t>(nodes), 0);
  sizeDelta_.resize(
      static_cast<std::size_t>(net_.arena_.creditSinkBase() + net_.arena_.vcs()), 0);
  foldHead_.resize(static_cast<std::size_t>(nodes), -1);
#ifdef SWFT_PHASE_TIMERS
  g_mtpt.threads = domains_;
#endif
  workers_.reserve(static_cast<std::size_t>(domains_ - 1));
  for (int d = 1; d < domains_; ++d) {
    workers_.emplace_back([this, d] { workerLoop(d); });
  }
}

MtEngine::~MtEngine() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
}

void MtEngine::workerLoop(int d) {
  std::uint64_t next = 1;
  for (;;) {
    SWFT_MT_MARK(w0);
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) < next) spinPause(spins);
    SWFT_MT_MARK(w1);
    SWFT_MT_ADD(d, kBarrier, w0, w1);
    if (stop_.load(std::memory_order_relaxed)) return;
    if ((next & 1) != 0) {
      buildCards(d);
      SWFT_MT_MARK(w2);
      SWFT_MT_ADD(d, kCards, w1, w2);
    } else {
      applyCommands(d);
      SWFT_MT_MARK(w3);
      SWFT_MT_ADD(d, kCommit, w1, w3);
    }
    arrived_.fetch_add(1, std::memory_order_release);
    ++next;
  }
}

void MtEngine::launchPhase() { epoch_.fetch_add(1, std::memory_order_release); }

void MtEngine::awaitWorkers() {
  const int expected = static_cast<int>(workers_.size());
  int spins = 0;
  while (arrived_.load(std::memory_order_acquire) != expected) spinPause(spins);
  arrived_.store(0, std::memory_order_relaxed);
}

void MtEngine::advanceCycle() {
  for (auto& q : pops_) q.clear();
  for (auto& q : pushes_) q.clear();

  if (workers_.empty()) {
    SWFT_MT_MARK(s0);
    buildCards(0);
    SWFT_MT_MARK(s1);
    SWFT_MT_ADD(0, kCards, s0, s1);
    baton();
    SWFT_MT_MARK(s2);
    for (const auto& q : pops_)
      for (const PopCmd& c : q) sizeDelta_[c.unit] = 0;
    for (const auto& q : pushes_)
      for (const PushCmd& c : q) sizeDelta_[c.unit] = 0;
    applyCommands(0);
    SWFT_MT_MARK(s3);
    SWFT_MT_ADD(0, kCommit, s2, s3);
    return;
  }

  SWFT_MT_MARK(t0);
  launchPhase();  // P1
  buildCards(0);
  SWFT_MT_MARK(t1);
  SWFT_MT_ADD(0, kCards, t0, t1);
  awaitWorkers();
  SWFT_MT_MARK(t2);
  SWFT_MT_ADD(0, kBarrier, t1, t2);

  baton();  // P2

  SWFT_MT_MARK(t3);
  launchPhase();  // P3
  // Reset the deltas while the workers commit: P3 never reads them, and the
  // command lists are read-only on both sides. Double-zeroing a unit that
  // was both popped and pushed is harmless.
  for (const auto& q : pops_)
    for (const PopCmd& c : q) sizeDelta_[c.unit] = 0;
  for (const auto& q : pushes_)
    for (const PushCmd& c : q) sizeDelta_[c.unit] = 0;
  applyCommands(0);
  SWFT_MT_MARK(t4);
  SWFT_MT_ADD(0, kCommit, t3, t4);
  awaitWorkers();
  SWFT_MT_MARK(t5);
  SWFT_MT_ADD(0, kBarrier, t4, t5);
}

void MtEngine::buildCards(int d) {
  Network& n = net_;
  const RouterArena& a = n.arena_;
  std::vector<PaCand>& cand = cards_[d];
  cand.clear();
  const std::uint64_t cycle = n.cycle_;
  const auto td = static_cast<std::uint64_t>(n.cfg_.routerDecisionTime);
  const NodeId lo = domStart_[d];
  const NodeId hi = domStart_[d + 1];
  const std::vector<std::uint64_t>& active = a.activeWords();
  const int occW = a.occWordsPerRouter();

  const std::size_t wLo = static_cast<std::size_t>(lo) >> 6;
  const std::size_t wHi = (static_cast<std::size_t>(hi) + 63) >> 6;
  for (std::size_t w = wLo; w < wHi; ++w) {
    std::uint64_t bits = active[w];
    if (w == wLo && (lo & 63) != 0) bits &= ~0ULL << (lo & 63);
    if (w == wHi - 1 && (hi & 63) != 0) bits &= (1ULL << (hi & 63)) - 1;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      const int routerBase = a.base(id);
      const std::uint64_t* occ = a.occWords(id);
      const std::uint64_t* routedW = a.routedWords(id);
      const std::size_t begin = cand.size();
      for (int ow = 0; ow < occW; ++ow) {
        std::uint64_t units = occ[ow] & ~routedW[ow];
        while (units != 0) {
          const int unitIdx = ow * 64 + std::countr_zero(units);
          units &= units - 1;
          const int g = routerBase + unitIdx;
          const Flit& front = a.front(g);
          if (!front.isHeader()) continue;
          if (td != 0 && a.frontArrival(g) + td > cycle) continue;
          cand.push_back({static_cast<std::int32_t>(g), front.msg,
                          n.computeRoute(n.pool_.get(front.msg), id)});
        }
      }
      if (cand.size() != begin) {
        cardHead_[id] = static_cast<std::int32_t>(begin);
        cardCount_[id] = static_cast<std::uint16_t>(cand.size() - begin);
        cardCycle_[id] = cycle + 1;
      }
    }
  }
}

void MtEngine::baton() {
  Network& n = net_;
  const std::uint64_t cycle = n.cycle_;

  SWFT_MT_MARK(b0);
  // Generation: identical to the sparse engine (calendar order is ascending
  // node id, the dense position of every generation-side draw).
  for (NodeId id : n.calendar_.takeDue(cycle)) {
    n.stepGeneration(id);
    const std::uint64_t next = n.nodes_[id].nextGenCycle;
    if (next != ~std::uint64_t{0}) n.calendar_.schedule(id, next);
  }
  SWFT_MT_MARK(b1);
  SWFT_MT_ADD(0, kGen, b0, b1);

  // Injection: identical to the sparse engine, with the fold-in sink
  // attached so freshly injected headers reach the router walk below.
  // Injection pushes stay eager — injection units are never the downstream
  // end of a network link, so no deferred push can race them.
  injFolds_.clear();
  n.injFoldSink_ = &injFolds_;
  for (std::size_t w = 0; w < n.nodeWork_.size(); ++w) {
    std::uint64_t bits = n.nodeWork_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      if (n.stepInjection(id)) n.nodeWork_[w] &= ~(1ULL << b);
    }
  }
  n.injFoldSink_ = nullptr;
  SWFT_MT_MARK(b2);
  SWFT_MT_ADD(0, kInj, b1, b2);

  // The walk's active view: the arena bitmap after injection, extended
  // mid-walk as deferred pushes activate empty routers (addFoldIn).
  const std::vector<std::uint64_t>& active = n.arena_.activeWords();
  batonActive_.assign(active.begin(), active.end());
  for (const auto& [id, unit] : injFolds_) {
    addFoldIn(id, unit, n.arena_.front(unit).msg);
  }

  // Router walk in the alternating sweep direction, re-reading the current
  // word after every step so routers activated mid-walk are visited if and
  // only if they lie later in sweep order — exactly the dense rule.
  const bool forward = (cycle & 1) == 0;
  if (forward) {
    for (std::size_t w = 0; w < batonActive_.size(); ++w) {
      std::uint64_t bits = batonActive_[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        stepRouterMt(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = (b == 63) ? 0 : (batonActive_[w] & (~0ULL << (b + 1)));
      }
    }
  } else {
    for (std::size_t w = batonActive_.size(); w-- > 0;) {
      std::uint64_t bits = batonActive_[w];
      while (bits) {
        const int b = 63 - std::countl_zero(bits);
        stepRouterMt(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = batonActive_[w] & ((1ULL << b) - 1);
      }
    }
  }

  // Reset the per-router fold lists (O(touched)).
  for (NodeId id : foldTouched_) foldHead_[id] = -1;
  foldTouched_.clear();
  folds_.clear();
  SWFT_MT_MARK(b3);
  SWFT_MT_ADD(0, kWalk, b2, b3);
}

void MtEngine::applyCommands(int d) {
  RouterArena& a = net_.arena_;
  const std::uint64_t cycle = net_.cycle_;
  // All pops before all pushes: a winner's pop may be what frees the slot a
  // same-cycle push into the same unit needs (the virtual size already
  // proved the combined result fits).
  for (const PopCmd& c : pops_[d]) (void)a.popMt(c.node, c.unit, cycle);
  for (const PushCmd& c : pushes_[d]) a.pushMt(c.node, c.unit, c.flit, cycle);
}

bool MtEngine::creditAvailable(std::int32_t downUnit) const noexcept {
  return net_.arena_.size(downUnit) + sizeDelta_[downUnit] != net_.arena_.depth();
}

void MtEngine::addFoldIn(NodeId node, std::int32_t unit, MsgId msg) {
  if (foldHead_[node] < 0) foldTouched_.push_back(node);
  folds_.push_back({unit, msg, foldHead_[node]});
  foldHead_[node] = static_cast<std::int32_t>(folds_.size()) - 1;
  batonActive_[static_cast<std::size_t>(node) >> 6] |= 1ULL << (node & 63);
}

void MtEngine::deferPush(NodeId node, std::int32_t unit, Flit f) {
  // A header landing in a *virtually* empty unit becomes the unit's front:
  // fold it into the downstream router's candidate set (body/tail flits
  // never route, and a non-empty unit's front is unchanged by the push).
  if (f.isHeader() &&
      net_.arena_.size(unit) + sizeDelta_[unit] == 0) {
    addFoldIn(node, unit, f.msg);
  }
  pushes_[domainOf_[node]].push_back({node, unit, f});
  ++sizeDelta_[unit];
}

void MtEngine::stepRouterMt(NodeId id) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const std::uint64_t cycle = n.cycle_;
  const int localPort = n.networkPorts_;
  const auto td = static_cast<std::uint64_t>(n.cfg_.routerDecisionTime);
  const int routerBase = a.base(id);
  const int occW = a.occWordsPerRouter();
  const std::uint64_t* occ = a.occWords(id);
  const std::uint64_t* routedW = a.routedWords(id);

  // Phase A: the precomputed card span merged with this cycle's fold-ins,
  // ascending by unit — exactly the dense occupied-unrouted-header scan.
  // Card units are untouched since P1 (pops happen only at the owning
  // router's turn, which is now), so applying the stored decision here is
  // the dense computation moved earlier, not a stale one.
  {
    constexpr int kMaxFolds = 2 * kMaxDims + 2;  // one per input port + injection
    struct FoldRef {
      std::int32_t unit;
      MsgId msg;
    };
    FoldRef foldArr[kMaxFolds];
    int nf = 0;
    for (std::int32_t i = foldHead_[id]; i >= 0; i = folds_[i].next) {
      assert(nf < kMaxFolds);
      foldArr[nf++] = {folds_[i].unit, folds_[i].msg};
    }
    for (int i = 1; i < nf; ++i) {  // intrusive list is LIFO; restore ascending
      const FoldRef key = foldArr[i];
      int j = i - 1;
      for (; j >= 0 && foldArr[j].unit > key.unit; --j) foldArr[j + 1] = foldArr[j];
      foldArr[j + 1] = key;
    }
    const PaCand* c = nullptr;
    const PaCand* cEnd = nullptr;
    if (cardCycle_[id] == cycle + 1) {
      const std::vector<PaCand>& vec = cards_[domainOf_[id]];
      c = vec.data() + cardHead_[id];
      cEnd = c + cardCount_[id];
    }
    int fi = 0;
    while (c != cEnd || fi != nf) {
      if (fi != nf && (c == cEnd || foldArr[fi].unit < c->unit)) {
        const FoldRef f = foldArr[fi++];
        // Fold-in fronts arrived this very cycle: with Td > 0 they are not
        // yet eligible (the dense engine skips them the same way).
        if (td != 0) continue;
        n.applyRouteDecision(id, f.unit - routerBase, f.msg,
                             n.computeRoute(n.pool_.get(f.msg), id));
      } else {
        n.applyRouteDecision(id, c->unit - routerBase, c->msg, c->dec);
        ++c;
      }
    }
  }

  // Phase B: the batched link pass, mirroring Network::stepRouter with two
  // differences: downstream credit reads virtual sizes (arena + pending
  // delta), and winner pops/pushes are deferred to P3. Candidate-side state
  // (occupancy, routed masks, front arrivals) is read live from the arena —
  // correct because this router's units cannot have been popped before its
  // own turn, and deferred pushes never create a same-cycle candidate (their
  // arrival stamp equals the current cycle, failing qualification exactly as
  // it would in the dense engine).
  const std::uint32_t* rw = a.routeRow(routerBase);
  const std::uint64_t* faRow = a.frontArrivalRow(routerBase);

  if (occW == 1) {
    const std::uint64_t live = occ[0] & routedW[0];
    std::uint64_t okp[64];
    for (int p = 0; p <= localPort; ++p) okp[p] = 0;
    std::uint64_t pm = 0;
    std::uint64_t m = live;
    while (m != 0) {
      const int u = std::countr_zero(m);
      m &= m - 1;
      const std::uint32_t r = rw[u];
      const int port = RouterArena::wordOutPort(r);
      const std::int32_t du = n.cachedDownBase(id, port) + RouterArena::wordOutVc(r);
      const auto q = static_cast<std::uint64_t>(
          (faRow[u] < cycle) & creditAvailable(du));
      okp[port] |= q << u;
      pm |= q << port;
    }
    const int unitCount = a.unitsPerRouter();
    while (pm != 0) {
      const int port = std::countr_zero(pm);
      pm &= pm - 1;
      const int cur = a.cursor(id, port);
      const std::uint64_t rot = std::rotr(okp[port], cur);
      const int winnerIdx = (cur + std::countr_zero(rot)) & 63;
      if (port == localPort) {
        a.setCursor(id, port,
                    static_cast<std::uint16_t>(
                        winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
        ejectFlitMt(id, winnerIdx);
      } else {
        commitLinkMt(id, port, winnerIdx);
      }
    }
    return;
  }

  // Generic multi-word path (> 64 input units per router).
  const int unitCount = a.unitsPerRouter();
  for (int port = 0; port <= localPort; ++port) {
    const std::uint64_t* req = a.requestWords(id, port);
    const std::int32_t downBase = n.cachedDownBase(id, port);
    const int cur = a.cursor(id, port);
    const int cw = cur >> 6;
    const int cb = cur & 63;
    int winnerIdx = -1;
    for (int k = 0; k <= occW && winnerIdx < 0; ++k) {
      int w = cw + k;
      if (w >= occW) w -= occW;
      std::uint64_t m = req[w] & occ[w];
      if (k == 0) {
        m &= ~0ULL << cb;
      } else if (k == occW) {
        m &= (cb == 0) ? 0 : ((1ULL << cb) - 1);
      }
      while (m != 0) {
        const int u = w * 64 + std::countr_zero(m);
        m &= m - 1;
        if (faRow[u] >= cycle) continue;  // front arrived this cycle
        if (!creditAvailable(downBase + RouterArena::wordOutVc(rw[u]))) continue;
        winnerIdx = u;
        break;
      }
    }
    if (winnerIdx < 0) continue;
    if (port == localPort) {
      a.setCursor(id, port,
                  static_cast<std::uint16_t>(
                      winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
      ejectFlitMt(id, winnerIdx);
    } else {
      commitLinkMt(id, port, winnerIdx);
    }
  }
}

void MtEngine::commitLinkMt(NodeId id, int port, int winnerIdx) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const int unitCount = a.unitsPerRouter();
  a.setCursor(id, port,
              static_cast<std::uint16_t>(
                  winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
  const int g = a.base(id) + winnerIdx;
  const int outVc = a.outVc(g);
  const Flit flit = a.front(g);
  pops_[domainOf_[id]].push_back({id, static_cast<std::int32_t>(g)});
  --sizeDelta_[g];
  n.lastMovementCycle_ = n.cycle_;
  if (winnerIdx >= n.networkPorts_ * n.cfg_.vcs) n.markNodeWork(id);

  if (flit.isHeader()) {
    Message& msg = n.pool_.get(flit.msg);
    ++msg.hops;
    if (n.cachedWrap(id, port)) msg.setWrapped(dimOfPort(port));
    if (n.trace_ != nullptr) {
      n.trace_->record({TraceEvent::Kind::Hop, n.cycle_, id,
                        static_cast<std::uint8_t>(port), msg.seq});
    }
  }
  deferPush(n.cachedNeighbor(id, port),
            n.cachedDownBase(id, port) + outVc, flit);

  if (flit.isTail()) {
    a.releaseRoute(id, winnerIdx);
    a.setOutOwner(id, port, outVc, -1);
  }
}

void MtEngine::ejectFlitMt(NodeId id, int unitIdx) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const int g = a.base(id) + unitIdx;
  const Flit flit = a.front(g);
  pops_[domainOf_[id]].push_back({id, static_cast<std::int32_t>(g)});
  --sizeDelta_[g];
  n.lastMovementCycle_ = n.cycle_;
  if (unitIdx >= n.networkPorts_ * n.cfg_.vcs) n.markNodeWork(id);

#ifndef NDEBUG
  ++n.pool_.get(flit.msg).flitsEjected;
#endif
  if (flit.isTail()) {
    a.releaseRoute(id, unitIdx);
    // finalizeEjected runs eagerly on the baton: delivery statistics (the
    // order-sensitive double accumulations) and the software layer's
    // replanning RNG draw happen at the exact dense-sweep position.
    n.finalizeEjected(id, flit.msg);
  }
}

}  // namespace swft
