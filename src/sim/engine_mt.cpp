// The sparse-mt cycle: parallel route precomputation (P1), the ordered
// serial baton (P2), parallel per-domain command apply (P3). See
// engine_mt.hpp and DESIGN.md §6 for the phase contract and the equivalence
// argument; the baton's router step mirrors Network::stepRouter
// (engine.cpp) with pops/pushes deferred and credit checks virtualised.
#include "src/sim/engine_mt.hpp"

#include <bit>
#include <cassert>

#include "src/sim/link_qual.hpp"
#include "src/sim/network.hpp"

// Per-phase wall-clock breakdown is a *runtime* option now (`phase_timers=1`,
// `swft_bench --phase-timers`): every engine thread owns one PhaseBreakdown
// shard in Network::phaseShards_ (slot = domain index, the baton thread is
// slot 0) and charges it through a PhaseClock, a no-op when the flag is off.
// Workers only ever write their own slot; the engine's barriers order those
// writes against the main thread's reads. The old SWFT_PHASE_TIMERS
// compile-time define is gone.

namespace swft {

namespace {

// Spin with a yield fallback: on machines with fewer cores than domains
// (including the single-core CI runner) the yield lets the scheduler run
// whichever thread holds the next phase.
inline void spinPause(int& spins) {
  if (++spins > 64) std::this_thread::yield();
}

}  // namespace

MtEngine::MtEngine(Network& net, int simThreads)
    : net_(net),
      domains_(mtEffectiveDomains(net.arena_.nodes(), simThreads)) {
  const int nodes = net_.arena_.nodes();
  domStart_.resize(static_cast<std::size_t>(domains_) + 1);
  for (int d = 0; d <= domains_; ++d) domStart_[d] = mtDomainStart(nodes, domains_, d);
  domainOf_.resize(static_cast<std::size_t>(nodes));
  for (int d = 0; d < domains_; ++d) {
    for (NodeId id = domStart_[d]; id < domStart_[d + 1]; ++id) {
      domainOf_[id] = static_cast<std::uint16_t>(d);
    }
  }
  cards_.resize(static_cast<std::size_t>(domains_));
  pops_.resize(static_cast<std::size_t>(domains_));
  pushes_.resize(static_cast<std::size_t>(domains_));
  sizeDelta_.resize(
      static_cast<std::size_t>(net_.arena_.creditSinkBase() + net_.arena_.vcs()), 0);
  foldHead_.resize(static_cast<std::size_t>(nodes), -1);
  hopDeferred_.resize(static_cast<std::size_t>(domains_));
  // One 64-byte-aligned 8-word metadata block per router (route-card span
  // always; link-card words when enabled), so a baton turn probes a single
  // cache line.
  lqMetaStore_.resize(static_cast<std::size_t>(nodes) * kMStride + kMStride, 0);
  const auto addr = reinterpret_cast<std::uintptr_t>(lqMetaStore_.data());
  lqMeta_ = lqMetaStore_.data() + ((64 - addr % 64) % 64) / sizeof(std::uint64_t);
  // Link cards exist only for the single-occupancy-word configurations the
  // batched pass covers; the generic multi-word path re-qualifies in the
  // baton as before.
  injUnitFloor_ = net_.networkPorts_ * net_.cfg_.vcs;
  portOfUnit_.resize(static_cast<std::size_t>(net_.arena_.unitsPerRouter()));
  for (int u = 0; u < net_.arena_.unitsPerRouter(); ++u) {
    portOfUnit_[static_cast<std::size_t>(u)] =
        static_cast<std::uint8_t>(u / net_.cfg_.vcs);
  }
  lqEnabled_ = net_.arena_.occWordsPerRouter() == 1;
  if (lqEnabled_) {
    lqPorts_ = net_.arena_.totalPorts();
    lqWinPack_ = lqPorts_ <= 9;  // 9 pm bits + 9 * 6 winner bits = 63
    lqOk_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(lqPorts_), 0);
  }
  commitStage_.resize(static_cast<std::size_t>(domains_));
  confirmed_.resize(static_cast<std::size_t>(domains_));
  if (lqWinPack_) commitSpan_.resize(static_cast<std::size_t>(nodes), 0);
  // One timer slot per domain (slot 0 = the baton thread). Must be sized
  // before the workers spawn — it is never resized mid-run.
  if (net_.cfg_.phaseTimers) {
    net_.phaseShards_.resize(static_cast<std::size_t>(domains_));
  }
  // All mt trace emission happens on the baton thread; stage it there and
  // flush into the recorder while P3 runs (advanceCycle).
  net_.traceSink_ = &traceStage_;
  workers_.reserve(static_cast<std::size_t>(domains_ - 1));
  for (int d = 1; d < domains_; ++d) {
    workers_.emplace_back([this, d] { workerLoop(d); });
  }
}

MtEngine::~MtEngine() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  net_.traceSink_ = nullptr;
}

void MtEngine::workerLoop(int d) {
  std::uint64_t next = 1;
  PhaseClock clock(net_.phaseShard(static_cast<std::size_t>(d)));
  for (;;) {
    clock.reset();
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) < next) spinPause(spins);
    clock.mark(PhaseBreakdown::kBarrier);
    if (stop_.load(std::memory_order_relaxed)) return;
    if ((next & 1) != 0) {
      buildCards(d);
      clock.mark(PhaseBreakdown::kCards);
      buildLinkCards(d);
      clock.mark(PhaseBreakdown::kLinkQual);
    } else {
      applyCommands(d);
      clock.mark(PhaseBreakdown::kCommit);
    }
    arrived_.fetch_add(1, std::memory_order_release);
    ++next;
  }
}

void MtEngine::launchPhase() { epoch_.fetch_add(1, std::memory_order_release); }

void MtEngine::awaitWorkers() {
  const int expected = static_cast<int>(workers_.size());
  int spins = 0;
  while (arrived_.load(std::memory_order_acquire) != expected) spinPause(spins);
  arrived_.store(0, std::memory_order_relaxed);
}

void MtEngine::resetSizeDeltas() {
  for (const auto& q : pops_)
    for (const PopCmd& c : q) sizeDelta_[c.unit] = 0;
  for (const auto& q : pushes_)
    for (const PushCmd& c : q) sizeDelta_[c.unit] = 0;
  for (std::size_t d = 0; d < confirmed_.size(); ++d) {
    const std::vector<CommitRec>& stage = commitStage_[d];
    for (const ConfirmedSpan& s : confirmed_[d]) {
      const CommitRec* r = stage.data() + s.head;
      for (int i = 0; i < s.count; ++i) {
        sizeDelta_[r[i].g] = 0;
        sizeDelta_[r[i].du] = 0;
      }
    }
  }
}

void MtEngine::advanceCycle() {
  for (auto& q : pops_) q.clear();
  for (auto& q : pushes_) q.clear();
  for (auto& q : confirmed_) q.clear();
  PhaseClock clock(net_.phaseShard(0));

  if (workers_.empty()) {
    buildCards(0);
    clock.mark(PhaseBreakdown::kCards);
    buildLinkCards(0);
    clock.mark(PhaseBreakdown::kLinkQual);
    baton();  // charges kGen/kInj/kWalk on slot 0 itself
    clock.reset();
    resetSizeDeltas();
    applyCommands(0);
    if (net_.trace_ != nullptr) traceStage_.flushTo(*net_.trace_);
    // Cycle-end boundary: mature the freshness snapshots after the last
    // push/pop so next cycle's P1 reads fully matured rows.
    net_.arena_.matureFreshness();
    clock.mark(PhaseBreakdown::kCommit);
    return;
  }

  launchPhase();  // P1
  buildCards(0);
  clock.mark(PhaseBreakdown::kCards);
  buildLinkCards(0);
  clock.mark(PhaseBreakdown::kLinkQual);
  awaitWorkers();
  clock.mark(PhaseBreakdown::kBarrier);

  baton();  // P2; charges kGen/kInj/kWalk on slot 0 itself
  clock.reset();

  launchPhase();  // P3
  // Reset the deltas while the workers commit: P3 never reads them, and the
  // command lists and confirmed stages are read-only on both sides.
  // Double-zeroing a unit that was both popped and pushed is harmless.
  resetSizeDeltas();
  applyCommands(0);
  // Flush the staged trace events while the workers are still committing:
  // the recorder's hash-map inserts overlap P3 instead of stretching the
  // serial baton. Only this thread ever touches the stage or the recorder.
  if (net_.trace_ != nullptr) traceStage_.flushTo(*net_.trace_);
  clock.mark(PhaseBreakdown::kCommit);
  awaitWorkers();
  // Cycle-end boundary: the P3 join published every worker's pushes and
  // pops, so the occupancy words are final — mature the freshness snapshots
  // on this thread for next cycle's P1.
  net_.arena_.matureFreshness();
  clock.mark(PhaseBreakdown::kBarrier);
}

void MtEngine::buildCards(int d) {
  Network& n = net_;
  const RouterArena& a = n.arena_;
  std::vector<PaCand>& cand = cards_[d];
  cand.clear();
  const std::uint64_t cycle = n.cycle_;
  const auto td = static_cast<std::uint64_t>(n.cfg_.routerDecisionTime);
  const NodeId lo = domStart_[d];
  const NodeId hi = domStart_[d + 1];
  const std::vector<std::uint64_t>& active = a.activeWords();
  const int occW = a.occWordsPerRouter();

  const std::size_t wLo = static_cast<std::size_t>(lo) >> 6;
  const std::size_t wHi = (static_cast<std::size_t>(hi) + 63) >> 6;
  for (std::size_t w = wLo; w < wHi; ++w) {
    std::uint64_t bits = active[w];
    if (w == wLo && (lo & 63) != 0) bits &= ~0ULL << (lo & 63);
    if (w == wHi - 1 && (hi & 63) != 0) bits &= (1ULL << (hi & 63)) - 1;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      const int routerBase = a.base(id);
      const std::uint64_t* occ = a.occWords(id);
      const std::uint64_t* routedW = a.routedWords(id);
      const std::size_t begin = cand.size();
      for (int ow = 0; ow < occW; ++ow) {
        std::uint64_t units = occ[ow] & ~routedW[ow];
        while (units != 0) {
          const int unitIdx = ow * 64 + std::countr_zero(units);
          units &= units - 1;
          const int g = routerBase + unitIdx;
          const Flit& front = a.front(g);
          if (!front.isHeader()) continue;
          if (td != 0 && a.frontArrival(g) + td > cycle) continue;
          cand.push_back({static_cast<std::int32_t>(g), front.msg,
                          n.computeRoute(n.pool_.get(front.msg), id)});
        }
      }
      if (cand.size() != begin) {
        std::uint64_t* meta =
            lqMeta_ + static_cast<std::size_t>(id) * kMStride;
        meta[kMCard] =
            (static_cast<std::uint64_t>(begin) << 16) | (cand.size() - begin);
        meta[kMCardCyc] = cycle + 1;
      }
    }
  }
}

void MtEngine::buildLinkCards(int d) {
  if (!lqEnabled_) return;
  Network& n = net_;
  const RouterArena& a = n.arena_;
  const std::uint64_t cycle = n.cycle_;
  const auto fullDepth = static_cast<std::uint16_t>(a.depth());
  const int unitCount = a.unitsPerRouter();
  const int localPort = n.networkPorts_;
  const NodeId lo = domStart_[d];
  const NodeId hi = domStart_[d + 1];
  const std::vector<std::uint64_t>& active = a.activeWords();
  std::vector<CommitRec>& stage = commitStage_[d];
  stage.clear();

  const std::size_t wLo = static_cast<std::size_t>(lo) >> 6;
  const std::size_t wHi = (static_cast<std::size_t>(hi) + 63) >> 6;
  for (std::size_t w = wLo; w < wHi; ++w) {
    std::uint64_t bits = active[w];
    if (w == wLo && (lo & 63) != 0) bits &= ~0ULL << (lo & 63);
    if (w == wHi - 1 && (hi & 63) != 0) bits &= (1ULL << (hi & 63)) - 1;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      const std::uint64_t live = a.occWords(id)[0] & a.routedWords(id)[0];
      if (live == 0) continue;
      const int routerBase = a.base(id);
      std::uint64_t* okp = lqOk_.data() +
                           static_cast<std::size_t>(id) *
                               static_cast<std::size_t>(lqPorts_);
      // P1 runs against the post-commit arena with every sizeDelta_ zero,
      // so the incremental bitmaps *are* the snapshot: last cycle's
      // matureFreshness() left fresh == occ (every front arrived in an
      // earlier cycle), and downOk_ carries each candidate's downstream
      // credit.
      // The blocked word is exactly the credit-starved candidate set, which
      // the baton re-checks against virtual credits. The pass assigns the
      // okp rows (no zeroing prelude).
      std::uint64_t* meta = lqMeta_ + static_cast<std::size_t>(id) * kMStride;
      std::uint64_t blocked = 0;
      const std::uint64_t pm =
          qualifyLinkCandidates(a, id, okp, lqPorts_, &blocked);
      // Resolve each port's round-robin winner now: the cursor is only
      // written at the owning router's baton turn, so the value P1 reads is
      // the value the turn would read, and qualified candidates never drop
      // out mid-baton (credit is monotone). The baton takes these winners
      // verbatim unless a wake or a newly-routed unit widens the field.
      if (lqWinPack_) {
        std::uint64_t pw = pm & 0x1ffULL;
        const auto head = static_cast<std::uint64_t>(stage.size());
        std::uint64_t m = pm;
        while (m != 0) {
          const int p = std::countr_zero(m);
          m &= m - 1;
          const int cur = a.cursor(id, p);
          const std::uint64_t rot = std::rotr(okp[p], cur);
          const int win = (cur + std::countr_zero(rot)) & 63;
          pw |= static_cast<std::uint64_t>(win) << (9 + 6 * p);
          if (p == localPort) continue;  // ejections stay fully on the baton
          // Stage the winner's whole commit (see CommitRec): every input is
          // frozen through P2 — the front until this very pop, the route
          // word until this very tail release, downstream sizes until P3.
          // Header-only fields (the downstream size probe is the one random
          // load here) stay zero for body/tail flits.
          const int g = routerBase + win;
          const Flit f = a.front(g);
          const std::uint8_t ov = a.outVc(g);
          const std::int32_t du = n.cachedDownBase(id, p) + ov;
          const NodeId down = n.cachedNeighbor(id, p);
          std::uint8_t flags = 0;
          std::uint16_t sizeP1du = 0;
          std::uint8_t dim = 0;
          if (f.isHeader()) {
            flags |= kCrHeader;
            if (n.cachedWrap(id, p)) flags |= kCrWrap;
            sizeP1du = static_cast<std::uint16_t>(a.size(du));
            dim = static_cast<std::uint8_t>(dimOfPort(p));
          }
          if (f.isTail()) flags |= kCrTail;
          if (win >= injUnitFloor_) flags |= kCrInjUnit;
          if (domainOf_[down] != d) flags |= kCrCross;
          std::int32_t wakeNbr = -1;
          if (win < injUnitFloor_ && a.size(g) == fullDepth) {
            wakeNbr = static_cast<std::int32_t>(
                n.cachedNeighbor(id, portOfUnit_[static_cast<std::size_t>(win)]));
          }
          stage.push_back({f, static_cast<std::int32_t>(g), du, down, wakeNbr,
                           sizeP1du, static_cast<std::uint8_t>(p),
                           static_cast<std::uint8_t>(win + 1 == unitCount ? 0 : win + 1),
                           static_cast<std::uint8_t>(win), ov, dim, flags});
        }
        meta[kMWin] = pw;
        commitSpan_[id] = (head << 16) | (stage.size() - head);
      }
      meta[kMLive] = live;
      meta[kMBlocked] = blocked;
      meta[kMPm] = pm;
      meta[kMCyc] = cycle + 1;
    }
  }
}

void MtEngine::baton() {
  Network& n = net_;
  const std::uint64_t cycle = n.cycle_;
  PhaseClock clock(n.phaseShard(0));

  // Generation: identical to the sparse engine (calendar order is ascending
  // node id, the dense position of every generation-side draw).
  for (NodeId id : n.calendar_.takeDue(cycle)) {
    n.stepGeneration(id);
    const std::uint64_t next = n.nodes_[id].nextGenCycle;
    if (next != ~std::uint64_t{0}) n.calendar_.schedule(id, next);
  }
  clock.mark(PhaseBreakdown::kGen);

  // Injection: identical to the sparse engine, with the fold-in sink
  // attached so freshly injected headers reach the router walk below.
  // Injection pushes stay eager — injection units are never the downstream
  // end of a network link, so no deferred push can race them.
  injFolds_.clear();
  n.injFoldSink_ = &injFolds_;
  for (std::size_t w = 0; w < n.nodeWork_.size(); ++w) {
    std::uint64_t bits = n.nodeWork_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      if (n.stepInjection(id)) n.nodeWork_[w] &= ~(1ULL << b);
    }
  }
  n.injFoldSink_ = nullptr;
  clock.mark(PhaseBreakdown::kInj);

  // The walk's active view: the arena bitmap after injection, extended
  // mid-walk as deferred pushes activate empty routers (addFoldIn).
  const std::vector<std::uint64_t>& active = n.arena_.activeWords();
  batonActive_.assign(active.begin(), active.end());
  for (const auto& [id, unit] : injFolds_) {
    addFoldIn(id, unit, n.arena_.front(unit).msg);
  }

  // Router walk in the alternating sweep direction, re-reading the current
  // word after every step so routers activated mid-walk are visited if and
  // only if they lie later in sweep order — exactly the dense rule.
  const bool forward = (cycle & 1) == 0;
  if (forward) {
    for (std::size_t w = 0; w < batonActive_.size(); ++w) {
      std::uint64_t bits = batonActive_[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        stepRouterMt(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = (b == 63) ? 0 : (batonActive_[w] & (~0ULL << (b + 1)));
      }
    }
  } else {
    for (std::size_t w = batonActive_.size(); w-- > 0;) {
      std::uint64_t bits = batonActive_[w];
      while (bits) {
        const int b = 63 - std::countl_zero(bits);
        stepRouterMt(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = batonActive_[w] & ((1ULL << b) - 1);
      }
    }
  }

  // Reset the per-router fold lists (O(touched)).
  for (NodeId id : foldTouched_) foldHead_[id] = -1;
  foldTouched_.clear();
  folds_.clear();
  clock.mark(PhaseBreakdown::kWalk);
}

void MtEngine::applyCommands(int d) {
  RouterArena& a = net_.arena_;
  const std::uint64_t cycle = net_.cycle_;
  const std::vector<CommitRec>& stage = commitStage_[d];
  // All pops before all pushes: a winner's pop may be what frees the slot a
  // same-cycle push into the same unit needs (the virtual size already
  // proved the combined result fits).
  for (const PopCmd& c : pops_[d]) (void)a.popMt(c.node, c.unit, cycle);
  for (const ConfirmedSpan& s : confirmed_[d]) {
    const CommitRec* r = stage.data() + s.head;
    for (int i = 0; i < s.count; ++i) (void)a.popMt(s.node, r[i].g, cycle);
  }
  for (const PushCmd& c : pushes_[d]) a.pushMt(c.node, c.unit, c.flit, cycle);
  for (const ConfirmedSpan& s : confirmed_[d]) {
    const CommitRec* r = stage.data() + s.head;
    for (int i = 0; i < s.count; ++i) {
      // Cross-domain pushes were re-queued on the owner's pushes_ by the
      // baton; everything else lands on this domain's own routers.
      if ((r[i].flags & kCrCross) == 0) {
        a.pushMt(r[i].down, r[i].du, r[i].flit, cycle);
      }
      // Staged hop bookkeeping, unless the baton applied it eagerly for a
      // virtually-empty downstream (kCrEagerHop). Distinct messages per
      // record, same argument as hopDeferred_ below.
      if ((r[i].flags & (kCrHeader | kCrEagerHop)) == kCrHeader) {
        Message& msg = net_.pool_.get(r[i].flit.msg);
        ++msg.hops;
        if ((r[i].flags & kCrWrap) != 0) msg.setWrapped(r[i].dim);
      }
    }
  }
  // Deferred hop bookkeeping: each record targets a distinct Message (one
  // link crossing per message per cycle), so the per-domain applies commute
  // and nothing reads hops/wrapped until after the P3 barrier.
  for (const HopRec& h : hopDeferred_[d]) {
    Message& msg = net_.pool_.get(h.msg);
    ++msg.hops;
    if (h.wrapped) msg.setWrapped(h.dim);
  }
  hopDeferred_[d].clear();
}

bool MtEngine::creditAvailable(std::int32_t downUnit) const noexcept {
  return net_.arena_.size(downUnit) + sizeDelta_[downUnit] != net_.arena_.depth();
}

void MtEngine::wakeUpstream(NodeId id, int unitIdx) {
  // A snapshot-blocked candidate can unblock mid-baton only if the router
  // owning its full downstream unit pops that unit first (arena sizes are
  // frozen during P2, and the only pusher into the unit is the candidate's
  // own router, which has not taken its turn yet). Stamp the upstream
  // feeder of the popped unit so only woken routers re-check their blocked
  // set; a wake landing on an already-visited or inactive router is
  // harmless — the stamp expires with the cycle.
  if (!lqEnabled_) return;
  if (unitIdx >= injUnitFloor_) return;  // injection units feed no link
  const int port = portOfUnit_[static_cast<std::size_t>(unitIdx)];
  // Only a pop out of a *snapshot-full* unit can unblock anyone (sizes are
  // frozen until P3, so a unit not full at P1 is not full at any turn).
  const int g = net_.arena_.base(id) + unitIdx;
  if (net_.arena_.size(g) != net_.arena_.depth()) return;
  lqMeta_[static_cast<std::size_t>(net_.cachedNeighbor(id, port)) * kMStride +
          kMWake] = net_.cycle_ + 1;
}

void MtEngine::addFoldIn(NodeId node, std::int32_t unit, MsgId msg) {
  if (foldHead_[node] < 0) foldTouched_.push_back(node);
  folds_.push_back({unit, msg, foldHead_[node]});
  foldHead_[node] = static_cast<std::int32_t>(folds_.size()) - 1;
  batonActive_[static_cast<std::size_t>(node) >> 6] |= 1ULL << (node & 63);
}

void MtEngine::deferPush(NodeId node, std::int32_t unit, Flit f) {
  // A header landing in a *virtually* empty unit becomes the unit's front:
  // fold it into the downstream router's candidate set (body/tail flits
  // never route, and a non-empty unit's front is unchanged by the push).
  if (f.isHeader() &&
      net_.arena_.size(unit) + sizeDelta_[unit] == 0) {
    addFoldIn(node, unit, f.msg);
  }
  pushes_[domainOf_[node]].push_back({node, unit, f});
  ++sizeDelta_[unit];
}

void MtEngine::stepRouterMt(NodeId id) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const std::uint64_t cycle = n.cycle_;
  const int localPort = n.networkPorts_;
  const auto td = static_cast<std::uint64_t>(n.cfg_.routerDecisionTime);
  const int routerBase = a.base(id);
  const int occW = a.occWordsPerRouter();
  const std::uint64_t* occ = a.occWords(id);
  const std::uint64_t* routedW = a.routedWords(id);
  const std::uint64_t* meta = lqMeta_ + static_cast<std::size_t>(id) * kMStride;

  // Phase A: the precomputed card span merged with this cycle's fold-ins,
  // ascending by unit — exactly the dense occupied-unrouted-header scan.
  // Card units are untouched since P1 (pops happen only at the owning
  // router's turn, which is now), so applying the stored decision here is
  // the dense computation moved earlier, not a stale one.
  {
    constexpr int kMaxFolds = 2 * kMaxDims + 2;  // one per input port + injection
    struct FoldRef {
      std::int32_t unit;
      MsgId msg;
    };
    FoldRef foldArr[kMaxFolds];
    int nf = 0;
    for (std::int32_t i = foldHead_[id]; i >= 0; i = folds_[i].next) {
      assert(nf < kMaxFolds);
      foldArr[nf++] = {folds_[i].unit, folds_[i].msg};
    }
    for (int i = 1; i < nf; ++i) {  // intrusive list is LIFO; restore ascending
      const FoldRef key = foldArr[i];
      int j = i - 1;
      for (; j >= 0 && foldArr[j].unit > key.unit; --j) foldArr[j + 1] = foldArr[j];
      foldArr[j + 1] = key;
    }
    const PaCand* c = nullptr;
    const PaCand* cEnd = nullptr;
    if (meta[kMCardCyc] == cycle + 1) {
      const std::vector<PaCand>& vec = cards_[domainOf_[id]];
      c = vec.data() + (meta[kMCard] >> 16);
      cEnd = c + (meta[kMCard] & 0xffffULL);
    }
    int fi = 0;
    while (c != cEnd || fi != nf) {
      if (fi != nf && (c == cEnd || foldArr[fi].unit < c->unit)) {
        const FoldRef f = foldArr[fi++];
        // Fold-in fronts arrived this very cycle: with Td > 0 they are not
        // yet eligible (the dense engine skips them the same way).
        if (td != 0) continue;
        n.applyRouteDecision(id, f.unit - routerBase, f.msg,
                             n.computeRoute(n.pool_.get(f.msg), id));
      } else {
        n.applyRouteDecision(id, c->unit - routerBase, c->msg, c->dec);
        ++c;
      }
    }
  }

  // Phase B: the batched link pass, mirroring Network::stepRouter with the
  // qualification *validated* from the P1 link card instead of re-run, and
  // with winner pops/pushes deferred to P3.
  //
  // The card stays valid because nothing a baton does before this router's
  // own turn can change its candidates: fronts and route words of its units
  // mutate only at its own turn (pops, releaseRoute), pushes never change a
  // non-empty unit's front, and a candidate's downstream credit can only
  // *improve* — the sole pusher into its downstream unit is this router
  // itself (output-VC ownership pins the unit's incoming link to this
  // router's port), while earlier routers' pops free slots. Hence:
  // snapshot-qualified candidates stand as-is; snapshot-blocked ones (which
  // failed only the credit probe — freshness is vacuous at P1) re-check
  // credit against the virtual sizes (arena + pending delta); and only
  // units the card does not cover — routed in Phase A just now, or on a
  // router that had no live unit at P1 — qualify from scratch. Deferred
  // pushes never create a same-cycle candidate (their occupancy bit is
  // still clear), and eager injection pushes carry this cycle's arrival
  // stamp, failing freshness exactly as in the dense engine.
  const std::uint32_t* rw = a.routeRow(routerBase);

  if (occW == 1) {
    std::uint64_t okpLocal[64];
    std::uint64_t* okp;
    std::uint64_t pm = 0;
    std::uint64_t covered = 0;
    const int unitCount = a.unitsPerRouter();
    if (meta[kMCyc] == cycle + 1) {
      covered = meta[kMLive];
      const bool woken = meta[kMWake] == cycle + 1;
      if (lqWinPack_ && !woken && ((occ[0] & routedW[0]) & ~covered) == 0) {
        // Fast path: nothing changed since P1 — no pop woke this router
        // (every snapshot-blocked candidate's downstream is still exactly
        // full, see wakeUpstream) and no unit joined the field (Phase A
        // routed nothing new, no push landed on a front). The qualified
        // set, the winners, and their staged commits are the card's
        // verbatim; apply only the serially-ordered effects here and leave
        // the pops/pushes/hop records for P3 to take from the stage.
        const std::uint64_t span = commitSpan_[id];
        const int cnt = static_cast<int>(span & 0xffff);
        CommitRec* rec = commitStage_[domainOf_[id]].data() + (span >> 16);
        for (int i = 0; i < cnt; ++i) {
          CommitRec& r = rec[i];
          a.setCursor(id, r.port, r.nextCur);
          --sizeDelta_[r.g];
          if (r.wakeNbr >= 0) {
            lqMeta_[static_cast<std::size_t>(r.wakeNbr) * kMStride + kMWake] =
                cycle + 1;
          }
          if ((r.flags & kCrInjUnit) != 0) n.markNodeWork(id);
          if ((r.flags & kCrHeader) != 0) {
            if (r.sizeP1du + sizeDelta_[r.du] == 0) {
              // Virtually empty downstream: the header becomes its front and
              // may route later this baton — hops/wrap cannot be deferred.
              Message& msg = n.pool_.get(r.flit.msg);
              ++msg.hops;
              if ((r.flags & kCrWrap) != 0) msg.setWrapped(r.dim);
              addFoldIn(r.down, r.du, r.flit.msg);
              r.flags |= kCrEagerHop;
            }
            if (n.trace_ != nullptr) {
              n.emitTrace({TraceEvent::Kind::Hop, cycle, id, r.port,
                           n.pool_.get(r.flit.msg).seq});
            }
          }
          if ((r.flags & kCrCross) != 0) {
            // Cross-domain push: P3 applies a unit's pops and pushes on its
            // owner's worker, so route it through the classic queue.
            pushes_[domainOf_[r.down]].push_back({r.down, r.du, r.flit});
          }
          ++sizeDelta_[r.du];
          if ((r.flags & kCrTail) != 0) {
            a.releaseRoute(id, r.winnerIdx);
            a.setOutOwner(id, r.port, r.outVc, -1);
          }
        }
        if (cnt != 0) {
          n.lastMovementCycle_ = cycle;
          confirmed_[domainOf_[id]].push_back(
              {static_cast<std::uint32_t>(span >> 16), id,
               static_cast<std::uint16_t>(cnt)});
        }
        const std::uint64_t pw = meta[kMWin];
        if (((pw >> localPort) & 1) != 0) {
          const int winnerIdx =
              static_cast<int>((pw >> (9 + 6 * localPort)) & 63ULL);
          a.setCursor(id, localPort,
                      static_cast<std::uint16_t>(
                          winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
          ejectFlitMt(id, winnerIdx);
        }
        return;
      }
      // Slow path: consume the P1 card in place — it is rebuilt from
      // scratch next P1, and nothing else reads it after this router's
      // turn, so the fixup bits below may be OR-ed straight into its rows.
      // kMLive is the covered set in one load (qualified ∪ blocked =
      // live-at-P1).
      okp = lqOk_.data() +
            static_cast<std::size_t>(id) * static_cast<std::size_t>(lqPorts_);
      pm = meta[kMPm];
      // Unwoken routers skip the re-check wholesale: every blocked unit's
      // downstream is still exactly full (see wakeUpstream).
      std::uint64_t retry = woken ? meta[kMBlocked] : 0;
      while (retry != 0) {
        const int u = std::countr_zero(retry);
        retry &= retry - 1;
        const std::uint32_t r = rw[u];
        const int port = RouterArena::wordOutPort(r);
        const std::int32_t du =
            n.cachedDownBase(id, port) + RouterArena::wordOutVc(r);
        const auto q = static_cast<std::uint64_t>(creditAvailable(du));
        okp[port] |= q << u;
        pm |= q << port;
      }
    } else {
      okp = okpLocal;
      for (int p = 0; p <= localPort; ++p) okp[p] = 0;
    }
    std::uint64_t fix = (occ[0] & routedW[0]) & ~covered;
    while (fix != 0) {
      const int u = std::countr_zero(fix);
      fix &= fix - 1;
      const std::uint32_t r = rw[u];
      const int port = RouterArena::wordOutPort(r);
      const std::int32_t du =
          n.cachedDownBase(id, port) + RouterArena::wordOutVc(r);
      const auto q = static_cast<std::uint64_t>(
          (a.frontArrival(routerBase + u) < cycle) & creditAvailable(du));
      okp[port] |= q << u;
      pm |= q << port;
    }
    while (pm != 0) {
      const int port = std::countr_zero(pm);
      pm &= pm - 1;
      const int cur = a.cursor(id, port);
      const std::uint64_t rot = std::rotr(okp[port], cur);
      const int winnerIdx = (cur + std::countr_zero(rot)) & 63;
      if (port == localPort) {
        a.setCursor(id, port,
                    static_cast<std::uint16_t>(
                        winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
        ejectFlitMt(id, winnerIdx);
      } else {
        commitLinkMt(id, port, winnerIdx);
      }
    }
    return;
  }

  // Generic multi-word path (> 64 input units per router).
  const int unitCount = a.unitsPerRouter();
  for (int port = 0; port <= localPort; ++port) {
    const std::uint64_t* req = a.portMembers(id, port);
    const std::int32_t downBase = n.cachedDownBase(id, port);
    const int cur = a.cursor(id, port);
    const int cw = cur >> 6;
    const int cb = cur & 63;
    int winnerIdx = -1;
    for (int k = 0; k <= occW && winnerIdx < 0; ++k) {
      int w = cw + k;
      if (w >= occW) w -= occW;
      std::uint64_t m = req[w] & occ[w];
      if (k == 0) {
        m &= ~0ULL << cb;
      } else if (k == occW) {
        m &= (cb == 0) ? 0 : ((1ULL << cb) - 1);
      }
      while (m != 0) {
        const int u = w * 64 + std::countr_zero(m);
        m &= m - 1;
        if (a.frontArrival(routerBase + u) >= cycle) continue;  // front arrived this cycle
        if (!creditAvailable(downBase + RouterArena::wordOutVc(rw[u]))) continue;
        winnerIdx = u;
        break;
      }
    }
    if (winnerIdx < 0) continue;
    if (port == localPort) {
      a.setCursor(id, port,
                  static_cast<std::uint16_t>(
                      winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
      ejectFlitMt(id, winnerIdx);
    } else {
      commitLinkMt(id, port, winnerIdx);
    }
  }
}

void MtEngine::commitLinkMt(NodeId id, int port, int winnerIdx) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const int unitCount = a.unitsPerRouter();
  a.setCursor(id, port,
              static_cast<std::uint16_t>(
                  winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
  const int g = a.base(id) + winnerIdx;
  const int outVc = a.outVc(g);
  const Flit flit = a.front(g);
  pops_[domainOf_[id]].push_back({id, static_cast<std::int32_t>(g)});
  --sizeDelta_[g];
  wakeUpstream(id, winnerIdx);
  n.lastMovementCycle_ = n.cycle_;
  if (winnerIdx >= injUnitFloor_) n.markNodeWork(id);

  const NodeId down = n.cachedNeighbor(id, port);
  const std::int32_t du = n.cachedDownBase(id, port) + outVc;
  if (flit.isHeader()) {
    const bool wrap = n.cachedWrap(id, port);
    const auto dim = static_cast<std::uint8_t>(dimOfPort(port));
    if (a.size(du) + sizeDelta_[du] == 0) {
      // The header becomes the downstream unit's front (deferPush will
      // register the fold-in): the downstream router may route it later
      // this same baton, and routing reads msg.wrapped — so this one
      // Message update cannot be deferred.
      Message& msg = n.pool_.get(flit.msg);
      ++msg.hops;
      if (wrap) msg.setWrapped(dim);
    } else {
      // Common case: the downstream unit already holds flits, so nothing
      // reads this message's hop state before P3 applies the record (a
      // message's tail can never eject in the same cycle its header still
      // crosses a link, and next cycle's P1 route pass runs after P3).
      hopDeferred_[domainOf_[id]].push_back({flit.msg, dim, wrap});
    }
    if (n.trace_ != nullptr) {
      n.emitTrace({TraceEvent::Kind::Hop, n.cycle_, id,
                   static_cast<std::uint8_t>(port), n.pool_.get(flit.msg).seq});
    }
  }
  deferPush(down, du, flit);

  if (flit.isTail()) {
    a.releaseRoute(id, winnerIdx);
    a.setOutOwner(id, port, outVc, -1);
  }
}

void MtEngine::ejectFlitMt(NodeId id, int unitIdx) {
  Network& n = net_;
  RouterArena& a = n.arena_;
  const int g = a.base(id) + unitIdx;
  const Flit flit = a.front(g);
  pops_[domainOf_[id]].push_back({id, static_cast<std::int32_t>(g)});
  --sizeDelta_[g];
  wakeUpstream(id, unitIdx);
  n.lastMovementCycle_ = n.cycle_;
  if (unitIdx >= injUnitFloor_) n.markNodeWork(id);

#ifndef NDEBUG
  ++n.pool_.get(flit.msg).flitsEjected;
#endif
  if (flit.isTail()) {
    a.releaseRoute(id, unitIdx);
    // finalizeEjected runs eagerly on the baton: delivery statistics (the
    // order-sensitive double accumulations) and the software layer's
    // replanning RNG draw happen at the exact dense-sweep position.
    n.finalizeEjected(id, flit.msg);
  }
}

}  // namespace swft
