#include "src/sim/router_arena.hpp"

#include <stdexcept>

namespace swft {

RouterArena::RouterArena(int nodes, int totalPorts, int networkPorts, int vcs,
                         int bufferDepth, bool exactArrivals)
    : nodes_(nodes),
      totalPorts_(totalPorts),
      networkPorts_(networkPorts),
      vcs_(vcs),
      depth_(bufferDepth),
      unitsPerRouter_(totalPorts * vcs),
      exactArrivals_(exactArrivals) {
  if (bufferDepth < 1 || bufferDepth > FlitFifo::kMaxDepth) {
    throw std::invalid_argument("RouterArena: buffer depth out of range");
  }
  if (vcs < 1 || vcs > 16) {
    throw std::invalid_argument("RouterArena: VC count out of range");
  }
  const auto stride =
      std::bit_ceil(static_cast<unsigned>(bufferDepth));  // power-of-two ring
  strideLog2_ = std::countr_zero(stride);
  strideMask_ = static_cast<int>(stride) - 1;
  occWords_ = (unitsPerRouter_ + 63) / 64;

  const std::size_t units =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(unitsPerRouter_);
  const std::size_t slots = units << strideLog2_;
  flit_.resize(slots);
  if (exactArrivals_) {
    arrival_.resize(slots, 0);
  } else {
    lastPush_.resize(units, 0);
  }
  frontArrival_.resize(units, 0);
  head_.resize(units, 0);
  // One extra always-zero row of V sizes past the real units: the credit
  // sink. The engine points the ejection port's "downstream" row here so the
  // qualification loop reads one never-full size word for every port alike.
  size_.resize(units + static_cast<std::size_t>(vcs), 0);
  route_.resize(units, 0);
  routedMask_.resize(static_cast<std::size_t>(nodes) *
                         static_cast<std::size_t>(occWords_),
                     0);
  request_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(totalPorts) *
                      static_cast<std::size_t>(occWords_),
                  0);
  outOwner_.resize(static_cast<std::size_t>(nodes) *
                       static_cast<std::size_t>(networkPorts * vcs),
                   -1);
  freeVc_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(networkPorts),
                 static_cast<std::uint16_t>((1u << vcs) - 1));
  cursor_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(totalPorts),
                 0);
  occ_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(occWords_), 0);
  occCount_.resize(static_cast<std::size_t>(nodes), 0);
  active_.resize((static_cast<std::size_t>(nodes) + 63) / 64, 0);
}

}  // namespace swft
