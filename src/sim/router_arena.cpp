#include "src/sim/router_arena.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace swft {

RouterArena::RouterArena(int nodes, int totalPorts, int networkPorts, int vcs,
                         int bufferDepth, bool exactArrivals)
    : nodes_(nodes),
      totalPorts_(totalPorts),
      networkPorts_(networkPorts),
      vcs_(vcs),
      depth_(bufferDepth),
      unitsPerRouter_(totalPorts * vcs),
      exactArrivals_(exactArrivals) {
  if (bufferDepth < 1 || bufferDepth > FlitFifo::kMaxDepth) {
    throw std::invalid_argument("RouterArena: buffer depth out of range");
  }
  if (vcs < 1 || vcs > 16) {
    throw std::invalid_argument("RouterArena: VC count out of range");
  }
  const auto stride =
      std::bit_ceil(static_cast<unsigned>(bufferDepth));  // power-of-two ring
  strideLog2_ = std::countr_zero(stride);
  strideMask_ = static_cast<int>(stride) - 1;
  occWords_ = (unitsPerRouter_ + 63) / 64;

  const std::size_t units =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(unitsPerRouter_);
  const std::size_t slots = units << strideLog2_;
  flit_.resize(slots);
  if (exactArrivals_) arrival_.resize(slots, 0);
  // One extra always-empty row of V units past the real ones: the credit
  // sink. The engine points the ejection port's "downstream" units here so a
  // credit probe of any port alike reads a never-full size (the sink's
  // creditOk_ bits below stay permanently set for the same reason).
  meta_.resize(units + static_cast<std::size_t>(vcs));
  route_.resize(units, 0);
  routedMask_.resize(static_cast<std::size_t>(nodes) *
                         static_cast<std::size_t>(occWords_),
                     0);
  portMembers_.resize(static_cast<std::size_t>(nodes) *
                          static_cast<std::size_t>(totalPorts) *
                          static_cast<std::size_t>(occWords_),
                      0);
  fresh_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(occWords_),
                0);
  downOk_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(occWords_),
                 0);
  // Every buffer starts empty (size 0 < depth), and the credit-sink row past
  // the real units never fills, so the whole map starts — and the sink bits
  // permanently stay — creditable.
  creditOk_.resize((units + static_cast<std::size_t>(vcs) + 63) / 64, ~0ULL);
  routeDown_.resize(units, -1);
  feeder_.resize(units, -1);
  freshDirty_.resize(static_cast<std::size_t>(nodes), 0);
  outOwner_.resize(static_cast<std::size_t>(nodes) *
                       static_cast<std::size_t>(networkPorts * vcs),
                   -1);
  freeVc_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(networkPorts),
                 static_cast<std::uint16_t>((1u << vcs) - 1));
  cursor_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(totalPorts),
                 0);
  occ_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(occWords_), 0);
  active_.resize((static_cast<std::size_t>(nodes) + 63) / 64, 0);
}

void RouterArena::matureFreshness() noexcept {
  // Mature every dirty router's fresh row to its occupancy word. The dirty
  // bytes are scanned eight routers at a time: one word load skips eight
  // clean routers, and within a non-zero word countr_zero jumps straight to
  // each dirty byte, so the sweep costs O(active routers) rather than
  // O(nodes) even though push/pop mark dirt unconditionally.
  std::uint8_t* dirty = freshDirty_.data();
  const std::size_t n = freshDirty_.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, dirty + i, 8);
    if (w == 0) continue;
    std::memset(dirty + i, 0, 8);
    do {
      const int b = std::countr_zero(w) >> 3;
      w &= ~(0xffULL << (b * 8));
      const std::size_t r = i + static_cast<std::size_t>(b);
      std::uint64_t* f = fresh_.data() + r * static_cast<std::size_t>(occWords_);
      const std::uint64_t* o = occ_.data() + r * static_cast<std::size_t>(occWords_);
      for (int k = 0; k < occWords_; ++k) f[k] = o[k];
    } while (w != 0);
  }
  for (; i < n; ++i) {
    if (dirty[i] == 0) continue;
    dirty[i] = 0;
    std::uint64_t* f = fresh_.data() + i * static_cast<std::size_t>(occWords_);
    const std::uint64_t* o = occ_.data() + i * static_cast<std::size_t>(occWords_);
    for (int k = 0; k < occWords_; ++k) f[k] = o[k];
  }
}

std::string RouterArena::auditMasks(std::uint64_t freshCycle) const {
  std::ostringstream os;
  const int sink = creditSinkBase();
  // creditOk_: bit u == (size < depth) for real units, pinned 1 on the sink.
  for (int u = 0; u < sink + vcs_; ++u) {
    const bool expect = u >= sink || meta_[u].size < depth_;
    if (creditOkBit(u) != expect) {
      os << "creditOk mismatch at unit " << u << ": bit=" << creditOkBit(u)
         << " size=" << meta_[u].size << " depth=" << depth_;
      return os.str();
    }
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_); ++id) {
    for (int local = 0; local < unitsPerRouter_; ++local) {
      const int g = base(id) + local;
      const std::size_t w = maskIndex(id, local);
      const std::uint64_t bit = 1ULL << (local & 63);
      const bool occ = (occ_[w] & bit) != 0;
      // fresh_: the boundary occupancy snapshot. A clean router's row must
      // equal occ exactly (this also catches a push/pop that forgot its
      // dirty mark); a dirty router's row is pending the next sweep and is
      // deliberately stale. Between engine cycles every row is clean.
      if (freshDirty_[id] == 0 && ((fresh_[w] & bit) != 0) != occ) {
        os << "fresh mismatch at clean node " << id << " local " << local
           << ": bit=" << ((fresh_[w] & bit) != 0) << " occ=" << occ;
        return os.str();
      }
      // Front stamps never come from the future: every buffered front
      // arrived no later than the last executed cycle.
      if (occ && meta_[g].frontArrival > freshCycle) {
        os << "front stamp from the future at node " << id << " local "
           << local << ": frontArrival=" << meta_[g].frontArrival
           << " last executed cycle " << freshCycle;
        return os.str();
      }
      // downOk_ / routeDown_ / feeder_: consistent with the route word.
      const bool routed = wordRouted(route_[g]);
      const int du = routeDown_[g];
      if (routed != (du >= 0)) {
        os << "routeDown mismatch at node " << id << " local " << local
           << ": routed=" << routed << " routeDown=" << du;
        return os.str();
      }
      const bool expectDown = routed && creditOkBit(du);
      if (((downOk_[w] & bit) != 0) != expectDown) {
        os << "downOk mismatch at node " << id << " local " << local
           << ": bit=" << ((downOk_[w] & bit) != 0) << " routed=" << routed
           << " downUnit=" << du;
        return os.str();
      }
      if (routed && du < sink) {
        const std::int64_t expectFeeder =
            (static_cast<std::int64_t>(id) << 32) | local;
        if (feeder_[du] != expectFeeder) {
          os << "feeder mismatch at downstream unit " << du << ": feeder="
             << feeder_[du] << " expected node " << id << " local " << local;
          return os.str();
        }
      }
      // portMembers_: exactly the route word, port by port.
      for (int p = 0; p < totalPorts_; ++p) {
        const bool member =
            (portMembers_[memberIndex(id, p, local)] & bit) != 0;
        const bool expectMember = routed && wordOutPort(route_[g]) == p;
        if (member != expectMember) {
          os << "portMembers mismatch at node " << id << " local " << local
             << " port " << p << ": bit=" << member
             << " routeWord=" << route_[g];
          return os.str();
        }
      }
    }
  }
  // Every feeder entry must point at a unit routed onto it (no leaks after
  // releaseRoute).
  for (int du = 0; du < sink; ++du) {
    const std::int64_t f = feeder_[du];
    if (f < 0) continue;
    const auto fNode = static_cast<NodeId>(f >> 32);
    const int fLocal = static_cast<int>(f & 0x7FFFFFFF);
    const int fg = base(fNode) + fLocal;
    if (!wordRouted(route_[fg]) || routeDown_[fg] != du) {
      os << "stale feeder at downstream unit " << du << ": points at node "
         << fNode << " local " << fLocal << " routeWord=" << route_[fg]
         << " routeDown=" << routeDown_[fg];
      return os.str();
    }
  }
  return {};
}

}  // namespace swft
