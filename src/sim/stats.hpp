// Statistics collection (paper §5.2): mean message latency, throughput over
// the measurement window, and the "messages queued" absorption counter.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace swft {

/// Streaming accumulator for a scalar sample (mean / min / max / variance).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Latency sample accumulator: streaming moments plus a logarithmic-bucket
/// histogram for percentiles and batch means for a 95% confidence interval
/// on the mean (standard steady-state simulation methodology; the paper's
/// warm-up-then-measure protocol assumes it implicitly).
class LatencyTracker {
 public:
  static constexpr int kBuckets = 64;       // bucket b covers [2^(b/2)-ish)
  static constexpr std::uint64_t kBatchSize = 512;

  void add(double x) noexcept {
    stat_.add(x);
    ++hist_[bucketOf(x)];
    batchSum_ += x;
    if (++batchCount_ == kBatchSize) {
      batchMeans_.add(batchSum_ / static_cast<double>(kBatchSize));
      batchSum_ = 0.0;
      batchCount_ = 0;
    }
  }

  [[nodiscard]] const RunningStat& stat() const noexcept { return stat_; }

  /// Approximate percentile (0 < q < 1) from the histogram; the value is
  /// exact to within the bucket resolution (~sqrt(2) relative).
  [[nodiscard]] double percentile(double q) const noexcept {
    const std::uint64_t n = stat_.count();
    if (n == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += hist_[b];
      if (seen > target) return bucketMid(b);
    }
    return stat_.max();
  }

  /// Half-width of the 95% confidence interval on the mean, from batch
  /// means (0 when fewer than two complete batches exist).
  [[nodiscard]] double ciHalfWidth95() const noexcept {
    const std::uint64_t k = batchMeans_.count();
    if (k < 2) return 0.0;
    const double se = std::sqrt(batchMeans_.variance() / static_cast<double>(k));
    return 1.96 * se;
  }

 private:
  static int bucketOf(double x) noexcept {
    if (x < 1.0) return 0;
    // Two buckets per octave: resolution ~ +/-19%.
    const int b = static_cast<int>(2.0 * std::log2(x));
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  static double bucketMid(int b) noexcept {
    return std::exp2((static_cast<double>(b) + 0.5) / 2.0);
  }

  RunningStat stat_;
  RunningStat batchMeans_;
  std::uint64_t hist_[kBuckets] = {};
  double batchSum_ = 0.0;
  std::uint64_t batchCount_ = 0;
};

/// Wall-clock seconds spent in each phase of the cycle loop, collected when
/// `SimConfig::phaseTimers` is set (runtime flag — no rebuild needed). Each
/// engine thread owns one shard; shards merge by order-insensitive summation,
/// so the totals are identical no matter which thread finished first.
///
/// Phase meanings by engine:
///   sparse    — kGen/kInj/kWalk only (single shard; everything is "serial")
///   sparse-mt — slot 0 (baton thread): kCards/kLinkQual are its own P1 work,
///               kGen/kInj/kWalk the serial P2 baton, kCommit its P3 share,
///               kBarrier the launch/await bookkeeping; worker slots carry
///               their P1 (cards + link qualification) and P3 (commit) time.
struct PhaseBreakdown {
  enum Phase : int {
    kCards = 0,    // P1: route precomputation (candidate cards)
    kLinkQual,     // P1: link-candidate qualification pass
    kGen,          // P2: generation calendar
    kInj,          // P2: injection
    kWalk,         // P2: router walk (validate + commit decisions)
    kCommit,       // P3: deferred arena commits + stat/trace flush
    kBarrier,      // launch/await overhead around the parallel phases
    kPhaseCount,
  };

  double sec[kPhaseCount] = {};

  PhaseBreakdown& operator+=(const PhaseBreakdown& o) noexcept {
    for (int p = 0; p < kPhaseCount; ++p) sec[p] += o.sec[p];
    return *this;
  }
  [[nodiscard]] double total() const noexcept {
    double t = 0.0;
    for (double s : sec) t += s;
    return t;
  }
  /// Seconds the serial baton holds exclusively (P2 = gen + inj + walk).
  [[nodiscard]] double serial() const noexcept {
    return sec[kGen] + sec[kInj] + sec[kWalk];
  }

  static const char* phaseName(int p) noexcept;
  /// "cards 0.993s linkq 0.210s gen 0.061s ..." — one line, for stderr.
  [[nodiscard]] std::string toString() const;
};

/// Scoped-ish phase stopwatch: `mark(p)` charges the time since the previous
/// mark to phase `p` and restarts the clock. A null sink makes every call a
/// cheap no-op, so instrumented code needs no compile-time guard.
class PhaseClock {
 public:
  explicit PhaseClock(PhaseBreakdown* sink) noexcept : sink_(sink) {
    if (sink_ != nullptr) last_ = std::chrono::steady_clock::now();
  }
  void mark(PhaseBreakdown::Phase p) noexcept {
    if (sink_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    sink_->sec[p] += std::chrono::duration<double>(now - last_).count();
    last_ = now;
  }
  /// Restart the clock without charging anyone (skip untimed stretches).
  void reset() noexcept {
    if (sink_ != nullptr) last_ = std::chrono::steady_clock::now();
  }
  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }

 private:
  PhaseBreakdown* sink_;
  std::chrono::steady_clock::time_point last_{};
};

/// Aggregate result of one simulation run.
struct SimResult {
  // Latency over measured (post-warm-up) delivered messages, in cycles, from
  // generation to the last data flit reaching the destination PE.
  double meanLatency = 0.0;
  double latencyStddev = 0.0;
  double maxLatency = 0.0;
  double latencyP50 = 0.0;   // histogram-resolution percentiles
  double latencyP95 = 0.0;
  double latencyP99 = 0.0;
  double latencyCi95 = 0.0;  // 95% CI half-width on the mean (batch means)
  double meanHops = 0.0;

  std::uint64_t cycles = 0;
  std::uint64_t generatedTotal = 0;
  std::uint64_t deliveredTotal = 0;
  std::uint64_t deliveredMeasured = 0;

  // Messages/node/cycle delivered during the measurement window.
  double throughput = 0.0;
  // Offered load for reference (the configured lambda).
  double offeredLoad = 0.0;

  // Software-based routing counters.
  std::uint64_t messagesQueued = 0;    // absorption events (Fig. 7 metric)
  std::uint64_t absorbedMessages = 0;  // distinct messages absorbed >= once
  std::uint64_t reversals = 0;
  std::uint64_t detours = 0;
  std::uint64_t escalations = 0;

  // Health flags.
  bool saturated = false;          // could not sustain the offered load
  bool deadlockSuspected = false;  // watchdog fired (must never happen)
  bool completed = false;          // reached the measured-message target
};

}  // namespace swft
