#include "src/sim/config_canon.hpp"

#include <bit>
#include <sstream>

#include "src/fault/regions.hpp"
#include "src/traffic/patterns.hpp"
#include "src/util/fnv.hpp"

namespace swft {

std::string exactDoubleToken(double v) {
  // Canonicalize the zero sign: -0.0 and +0.0 compare equal and behave
  // identically in every config field, but their bit patterns differ.
  if (v == 0.0) v = 0.0;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kHex[(bits >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

std::string canonicalConfigKey(const SimConfig& cfg, std::uint32_t semanticsVersion) {
  std::ostringstream os;
  os << "swft-cfg-v1"
     << "|sem=" << semanticsVersion
     // topology
     << "|k=" << cfg.radix << "|n=" << cfg.dims
     // router
     << "|V=" << cfg.vcs << "|eV=" << cfg.escapeVcs << "|depth=" << cfg.bufferDepth
     << "|td=" << cfg.routerDecisionTime
     // workload
     << "|M=" << cfg.messageLength << "|rate=" << exactDoubleToken(cfg.injectionRate)
     << "|traffic=" << trafficPatternName(cfg.pattern)
     << "|hsf=" << exactDoubleToken(cfg.hotspotFraction)
     // software-based routing
     << "|routing=" << cfg.routingName() << "|delta=" << cfg.reinjectDelay
     << "|llt=" << cfg.livelockThreshold
     // faults
     << "|nf=" << cfg.faults.randomNodes;
  os << "|rg=";
  for (const RegionSpec& r : cfg.faults.regions) {
    os << regionShapeName(r.shape) << ":" << r.dim0 << "." << r.dim1 << ":"
       << r.extent0 << "x" << r.extent1 << "@";
    for (int d = 0; d < r.anchor.dims(); ++d) os << (d ? "," : "") << r.anchor[d];
    os << ";";
  }
  os << "|xn=";
  for (const NodeId n : cfg.faults.explicitNodes) os << n << ";";
  os << "|xl=";
  for (const auto& l : cfg.faults.explicitLinks) {
    os << l[0] << "." << l[1] << "." << l[2] << ";";
  }
  // measurement protocol
  os << "|warmup=" << cfg.warmupMessages << "|measured=" << cfg.measuredMessages
     << "|maxcyc=" << cfg.maxCycles << "|dlwin=" << cfg.deadlockWindow
     << "|seed=" << cfg.seed;
  // cfg.engine / cfg.simThreads intentionally absent: bit-identical engines
  // share one content address, so cached results interchange across them.
  // cfg.phaseTimers is likewise absent — it only adds wall-clock
  // instrumentation and never changes the simulated outcome.
  return os.str();
}

std::uint64_t canonicalConfigHash(const SimConfig& cfg, std::uint32_t semanticsVersion) {
  return fnv1a64(canonicalConfigKey(cfg, semanticsVersion));
}

}  // namespace swft
