// Contiguous router storage: every input unit of every router in one
// network-owned arena, struct-of-arrays.
//
// The seed engine kept a `std::vector<RouterState>` where each router owned
// its own `std::vector<InputUnit>` — two pointer indirections and a ~272-byte
// stride on every buffer access, including the credit check that `stepRouter`
// performs on *downstream* routers for every link traversal. The arena
// flattens all of it: flit rings, arrival stamps, ring heads/sizes, per-unit
// routing state, output-VC ownership, round-robin cursors and occupancy
// bitsets live in parallel arrays indexed by a global unit id
//
//   globalUnit = node * unitsPerRouter + port * vcs + vc
//
// so the credit-check fields (`full()` == one byte compare against the shared
// depth, `frontArrival()`) are dense and prefetch-friendly. The arena also
// maintains the network-level active set (one bit per router with any
// occupied input unit) that the event-sparse engine walks with countr_zero;
// push/pop keep the per-router occupancy words, the occupied-unit count and
// the active bit consistent so the engine cannot desynchronise them.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/router/flit.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

class RouterArena {
 public:
  /// `exactArrivals` selects the arrival-stamp representation. With exact
  /// stamps (default) every buffered flit keeps its arrival cycle in a ring
  /// parallel to the flit ring — required when the router decision time Td
  /// is nonzero, because a header's routing eligibility compares against the
  /// true arrival cycle. With Td == 0 the only question the engine ever asks
  /// is "did the front flit arrive strictly before the current cycle?", and
  /// that is derivable without the ring: arrivals within one buffer strictly
  /// increase and at most one flit enters a unit per cycle, so after a pop a
  /// single remaining flit is the most recent push (stamp kept exactly in
  /// `lastPush_`) while >= 2 remaining flits all arrived strictly before the
  /// popping cycle (any stamp < now preserves every comparison). Dropping
  /// the ring removes 8 bytes x depth-rounded slots per unit from the hot
  /// working set.
  RouterArena(int nodes, int totalPorts, int networkPorts, int vcs, int bufferDepth,
              bool exactArrivals = true);

  // --- geometry -------------------------------------------------------------
  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] int totalPorts() const noexcept { return totalPorts_; }
  [[nodiscard]] int networkPorts() const noexcept { return networkPorts_; }
  [[nodiscard]] int vcs() const noexcept { return vcs_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] int unitsPerRouter() const noexcept { return unitsPerRouter_; }
  [[nodiscard]] int base(NodeId id) const noexcept {
    return static_cast<int>(id) * unitsPerRouter_;
  }
  [[nodiscard]] int unitIndex(NodeId id, int port, int vc) const noexcept {
    return base(id) + port * vcs_ + vc;
  }

  // --- flit buffers (by global unit index) ----------------------------------
  [[nodiscard]] bool empty(int u) const noexcept { return size_[u] == 0; }
  [[nodiscard]] bool full(int u) const noexcept { return size_[u] == depth_; }
  [[nodiscard]] int size(int u) const noexcept { return size_[u]; }
  [[nodiscard]] const Flit& front(int u) const noexcept {
    return flit_[slot(u, head_[u])];
  }
  /// Arrival stamp of the front flit, mirrored in its own dense array: the
  /// per-cycle eligibility checks (`departed-this-cycle`, Td) hit it far
  /// more often than push/pop update it.
  [[nodiscard]] std::uint64_t frontArrival(int u) const noexcept {
    return frontArrival_[u];
  }
  /// i-th buffered flit from the front (introspection/validation).
  [[nodiscard]] const Flit& flitAt(int u, int i) const noexcept {
    return flit_[slot(u, (head_[u] + i) & strideMask_)];
  }

  // --- raw SoA rows (hoists for the batched link pass) ----------------------
  // The batched switch-allocation pass in engine.cpp touches these arrays
  // once per candidate; exposing the row base lets it hoist the address
  // arithmetic (and, for `sizeRow`, the whole downstream credit line of a
  // link — V contiguous uint16 sizes) out of the per-candidate probe.
  [[nodiscard]] const std::uint64_t* frontArrivalRow(int u) const noexcept {
    return frontArrival_.data() + u;
  }
  [[nodiscard]] const std::uint32_t* routeRow(int u) const noexcept {
    return route_.data() + u;
  }
  [[nodiscard]] const std::uint16_t* sizeRow(int u) const noexcept {
    return size_.data() + u;
  }
  /// Base of the always-zero credit row appended past the real units (see
  /// ctor): sizeRow(creditSinkBase()) never reports a full buffer.
  [[nodiscard]] int creditSinkBase() const noexcept {
    return nodes_ * unitsPerRouter_;
  }

  /// Push/pop take the owning router id so the occupancy transition needs
  /// no division; callers always know it (asserted in debug builds).
  void push(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    pushImpl<false>(node, u, f, arrivalCycle);
  }

  /// `now` is the popping cycle; in the inexact-arrival mode it feeds the
  /// conservative front stamp (see the freshness lemma in the class comment).
  /// Engine callers must pass the current cycle; tests running in the exact
  /// mode may omit it.
  Flit pop(NodeId node, int u, std::uint64_t now = 0) noexcept {
    return popImpl<false>(node, u, now);
  }

  /// Variants safe for the sparse-mt engine's parallel commit phase. A
  /// domain owns its routers' units outright — flit rings, sizes, occupancy
  /// words and counts are all router-local — but the network-level active_
  /// bitmap packs 64 routers per word, so two domains meeting inside one
  /// word may RMW it concurrently. These make exactly that one transition
  /// atomic (relaxed: the barrier after the commit phase publishes); all
  /// other state is written plainly, as in push/pop.
  void pushMt(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    pushImpl<true>(node, u, f, arrivalCycle);
  }
  Flit popMt(NodeId node, int u, std::uint64_t now = 0) noexcept {
    return popImpl<true>(node, u, now);
  }

  // --- per-unit routing state -----------------------------------------------
  // Packed into one word per unit (bit 0: routed, bits 8..15: outPort,
  // bits 16..23: outVc) so the switch-allocation path pays one load, not
  // three. An allocation also enters the unit into the per-output-port
  // request mask that switch allocation walks; `allocateRoute` and
  // `releaseRoute` are the only mutators, keeping word and masks in sync.
  [[nodiscard]] std::uint32_t routeWord(int u) const noexcept { return route_[u]; }
  [[nodiscard]] static bool wordRouted(std::uint32_t w) noexcept { return (w & 1u) != 0; }
  [[nodiscard]] static int wordOutPort(std::uint32_t w) noexcept {
    return static_cast<int>((w >> 8) & 0xFFu);
  }
  [[nodiscard]] static int wordOutVc(std::uint32_t w) noexcept {
    return static_cast<int>((w >> 16) & 0xFFu);
  }
  [[nodiscard]] bool routed(int u) const noexcept { return wordRouted(route_[u]); }
  [[nodiscard]] std::uint8_t outPort(int u) const noexcept {
    return static_cast<std::uint8_t>(wordOutPort(route_[u]));
  }
  [[nodiscard]] std::uint8_t outVc(int u) const noexcept {
    return static_cast<std::uint8_t>(wordOutVc(route_[u]));
  }

  /// The head message of unit `localUnit` at router `node` holds output
  /// (port, vc) from now until `releaseRoute` (tail departure).
  void allocateRoute(NodeId node, int localUnit, int port, int vc) noexcept {
    route_[base(node) + localUnit] = 1u | (static_cast<std::uint32_t>(port) << 8) |
                                     (static_cast<std::uint32_t>(vc) << 16);
    const std::uint64_t bit = 1ULL << (localUnit & 63);
    routedMask_[maskIndex(node, localUnit)] |= bit;
    request_[requestIndex(node, port, localUnit)] |= bit;
  }
  void releaseRoute(NodeId node, int localUnit) noexcept {
    const int g = base(node) + localUnit;
    const int port = wordOutPort(route_[g]);
    route_[g] &= ~1u;
    const std::uint64_t bit = 1ULL << (localUnit & 63);
    routedMask_[maskIndex(node, localUnit)] &= ~bit;
    request_[requestIndex(node, port, localUnit)] &= ~bit;
  }

  /// Bit per unit: currently routed (holds an output allocation).
  [[nodiscard]] const std::uint64_t* routedWords(NodeId id) const noexcept {
    return routedMask_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  /// Bit per unit: routed with outPort == `port` (switch requesters).
  [[nodiscard]] const std::uint64_t* requestWords(NodeId id, int port) const noexcept {
    return request_.data() +
           (static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(occWords_);
  }

  // --- output-VC ownership (network ports only) -----------------------------
  /// Owner (input-unit index local to router `id`) of an output VC, -1 free.
  [[nodiscard]] std::int16_t outOwner(NodeId id, int port, int vc) const noexcept {
    return outOwner_[ownerIndex(id, port, vc)];
  }
  void setOutOwner(NodeId id, int port, int vc, std::int16_t owner) noexcept {
    outOwner_[ownerIndex(id, port, vc)] = owner;
    const std::size_t i = static_cast<std::size_t>(id) *
                              static_cast<std::size_t>(networkPorts_) +
                          static_cast<std::size_t>(port);
    const auto bit = static_cast<std::uint16_t>(1u << vc);
    if (owner < 0) {
      freeVc_[i] |= bit;
    } else {
      freeVc_[i] = static_cast<std::uint16_t>(freeVc_[i] & ~bit);
    }
  }
  /// Bit per VC of output port `port`: set iff the VC has no owner. Mirrors
  /// outOwner_ exactly (maintained by setOutOwner), so the VC-allocation scan
  /// ANDs one word instead of probing owners per VC.
  [[nodiscard]] std::uint16_t freeVcMask(NodeId id, int port) const noexcept {
    return freeVc_[static_cast<std::size_t>(id) *
                       static_cast<std::size_t>(networkPorts_) +
                   static_cast<std::size_t>(port)];
  }

  // --- round-robin switch-arbitration cursors -------------------------------
  [[nodiscard]] std::uint16_t cursor(NodeId id, int port) const noexcept {
    return cursor_[static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
                   static_cast<std::size_t>(port)];
  }
  void setCursor(NodeId id, int port, std::uint16_t c) noexcept {
    cursor_[static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)] = c;
  }

  // --- occupancy ------------------------------------------------------------
  [[nodiscard]] int occWordsPerRouter() const noexcept { return occWords_; }
  [[nodiscard]] const std::uint64_t* occWords(NodeId id) const noexcept {
    return occ_.data() + static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  [[nodiscard]] int occupiedUnits(NodeId id) const noexcept { return occCount_[id]; }
  [[nodiscard]] bool anyOccupied(NodeId id) const noexcept { return occCount_[id] != 0; }

  /// Network-level active set: bit `id` set iff router `id` has any occupied
  /// input unit. Updated by push/pop; the sparse engine walks it live.
  [[nodiscard]] const std::vector<std::uint64_t>& activeWords() const noexcept {
    return active_;
  }

 private:
  [[nodiscard]] int slot(int u, int ringPos) const noexcept {
    return (u << strideLog2_) + ringPos;
  }
  [[nodiscard]] std::size_t ownerIndex(NodeId id, int port, int vc) const noexcept {
    return static_cast<std::size_t>(id) *
               static_cast<std::size_t>(networkPorts_ * vcs_) +
           static_cast<std::size_t>(port * vcs_ + vc);
  }
  [[nodiscard]] std::size_t maskIndex(NodeId node, int localUnit) const noexcept {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(occWords_) +
           static_cast<std::size_t>(localUnit >> 6);
  }
  [[nodiscard]] std::size_t requestIndex(NodeId node, int port,
                                         int localUnit) const noexcept {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(occWords_) +
           static_cast<std::size_t>(localUnit >> 6);
  }

  template <bool kAtomicActive>
  void pushImpl(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    assert(u >= base(node) && u < base(node) + unitsPerRouter_);
    const int s = slot(u, (head_[u] + size_[u]) & strideMask_);
    flit_[s] = f;
    if (exactArrivals_) {
      arrival_[s] = arrivalCycle;
    } else {
      lastPush_[u] = arrivalCycle;
    }
    if (size_[u]++ == 0) {
      frontArrival_[u] = arrivalCycle;
      markOccupied<kAtomicActive>(node, u);
    }
  }

  template <bool kAtomicActive>
  Flit popImpl(NodeId node, int u, std::uint64_t now) noexcept {
    assert(u >= base(node) && u < base(node) + unitsPerRouter_);
    const Flit f = flit_[slot(u, head_[u])];
    head_[u] = static_cast<std::uint16_t>((head_[u] + 1) & strideMask_);
    if (--size_[u] == 0) {
      markEmpty<kAtomicActive>(node, u);
      return f;
    }
    if (exactArrivals_) {
      frontArrival_[u] = arrival_[slot(u, head_[u])];
    } else if (size_[u] == 1) {
      frontArrival_[u] = lastPush_[u];  // the survivor is the latest push
    } else {
      assert(now > 0 && "inexact pop needs the popping cycle");
      frontArrival_[u] = now - 1;  // arrived strictly before now; see ctor
    }
    return f;
  }

  template <bool kAtomicActive>
  void markOccupied(NodeId node, int u) noexcept {
    const int local = u - base(node);
    occ_[static_cast<std::size_t>(node) * static_cast<std::size_t>(occWords_) +
         static_cast<std::size_t>(local >> 6)] |= (1ULL << (local & 63));
    if (occCount_[node]++ == 0) {
      if constexpr (kAtomicActive) {
        std::atomic_ref<std::uint64_t>(active_[static_cast<std::size_t>(node) >> 6])
            .fetch_or(1ULL << (node & 63), std::memory_order_relaxed);
      } else {
        active_[static_cast<std::size_t>(node) >> 6] |= (1ULL << (node & 63));
      }
    }
  }
  template <bool kAtomicActive>
  void markEmpty(NodeId node, int u) noexcept {
    const int local = u - base(node);
    occ_[static_cast<std::size_t>(node) * static_cast<std::size_t>(occWords_) +
         static_cast<std::size_t>(local >> 6)] &= ~(1ULL << (local & 63));
    if (--occCount_[node] == 0) {
      if constexpr (kAtomicActive) {
        std::atomic_ref<std::uint64_t>(active_[static_cast<std::size_t>(node) >> 6])
            .fetch_and(~(1ULL << (node & 63)), std::memory_order_relaxed);
      } else {
        active_[static_cast<std::size_t>(node) >> 6] &= ~(1ULL << (node & 63));
      }
    }
  }

  int nodes_;
  int totalPorts_;
  int networkPorts_;
  int vcs_;
  int depth_;
  int unitsPerRouter_;
  int strideLog2_;   // ring stride = bit_ceil(depth); slots per unit
  int strideMask_;
  int occWords_;     // occupancy words per router
  bool exactArrivals_;

  // Flit rings, struct-of-arrays: slot = (unit << strideLog2) + ringPos.
  std::vector<Flit> flit_;
  std::vector<std::uint64_t> arrival_;   // per-slot stamps (exact mode only)
  std::vector<std::uint64_t> lastPush_;  // per-unit latest stamp (inexact mode)
  std::vector<std::uint64_t> frontArrival_;  // stamp of the front flit
  // uint16, not uint8: unsigned-char arrays alias everything in C++, which
  // would force the optimiser to reload hot locals around every push/pop.
  std::vector<std::uint16_t> head_;
  std::vector<std::uint16_t> size_;  // the credit-check array: full() == one load

  std::vector<std::uint32_t> route_;
  std::vector<std::uint64_t> routedMask_;  // node x occWords
  std::vector<std::uint64_t> request_;     // (node x totalPorts) x occWords

  std::vector<std::int16_t> outOwner_;
  std::vector<std::uint16_t> freeVc_;  // per (node, port): bit vc = unowned
  std::vector<std::uint16_t> cursor_;

  std::vector<std::uint64_t> occ_;
  std::vector<std::uint16_t> occCount_;
  std::vector<std::uint64_t> active_;
};

}  // namespace swft
