// Contiguous router storage: every input unit of every router in one
// network-owned arena, struct-of-arrays.
//
// The seed engine kept a `std::vector<RouterState>` where each router owned
// its own `std::vector<InputUnit>` — two pointer indirections and a ~272-byte
// stride on every buffer access, including the credit check that `stepRouter`
// performs on *downstream* routers for every link traversal. The arena
// flattens all of it: flit rings, arrival stamps, ring heads/sizes, per-unit
// routing state, output-VC ownership, round-robin cursors and occupancy
// bitsets live in parallel arrays indexed by a global unit id
//
//   globalUnit = node * unitsPerRouter + port * vcs + vc
//
// so the credit-check fields (`full()` == one byte compare against the shared
// depth, `frontArrival()`) are dense and prefetch-friendly. The arena also
// maintains the network-level active set (one bit per router with any
// occupied input unit) that the event-sparse engine walks with countr_zero;
// push/pop keep the per-router occupancy words, the occupied-unit count and
// the active bit consistent so the engine cannot desynchronise them.
//
// On top of occupancy the arena maintains three derived bitmap families so
// link qualification is a handful of word ANDs instead of per-candidate
// probes (see DESIGN.md §8 for the invariants and equivalence argument):
//
//   fresh_   bit per unit: the router's occupancy word as of the last cycle
//            boundary. "Occupied at the boundary" is exactly "front arrived
//            strictly before the executing cycle": every buffered front
//            arrived in some earlier cycle at a boundary, and nothing reads a
//            router's fresh row between its own mid-cycle pops and the next
//            maturation. Push/pop therefore never touch fresh — they mark the
//            router's freshDirty_ byte, and matureFreshness() (the cycle-end
//            boundary sweep) copies fresh = occ for each dirty router.
//   creditOk_ bit per unit (global, plus the credit-sink row pinned to 1):
//            size < depth. Flipped only when a push/pop crosses the depth
//            boundary.
//   downOk_  bit per unit: routed AND creditOk_[routeDown_[u]] — the credit
//            state of a unit's downstream target, mapped back through the
//            link so qualification reads it as a router-local row. A depth
//            crossing at unit d forwards the flip to d's unique feeder
//            (feeder_[d], the upstream unit routed onto d; uniqueness is
//            output-VC ownership).
//   portMembers_ bit per (router, port, unit): routed with outPort == port.
//            Written exactly where route words are written/cleared.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/router/flit.hpp"
#include "src/topology/coordinates.hpp"

namespace swft {

class RouterArena {
 public:
  /// `exactArrivals` selects the arrival-stamp representation. With exact
  /// stamps (default) every buffered flit keeps its arrival cycle in a ring
  /// parallel to the flit ring — required when the router decision time Td
  /// is nonzero, because a header's routing eligibility compares against the
  /// true arrival cycle. With Td == 0 the only question the engine ever asks
  /// is "did the front flit arrive strictly before the current cycle?", and
  /// that is derivable without the ring: arrivals within one buffer strictly
  /// increase and at most one flit enters a unit per cycle, so after a pop a
  /// single remaining flit is the most recent push (stamp kept exactly in
  /// `lastPush_`) while >= 2 remaining flits all arrived strictly before the
  /// popping cycle (any stamp < now preserves every comparison). Dropping
  /// the ring removes 8 bytes x depth-rounded slots per unit from the hot
  /// working set.
  RouterArena(int nodes, int totalPorts, int networkPorts, int vcs, int bufferDepth,
              bool exactArrivals = true);

  // --- geometry -------------------------------------------------------------
  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] int totalPorts() const noexcept { return totalPorts_; }
  [[nodiscard]] int networkPorts() const noexcept { return networkPorts_; }
  [[nodiscard]] int vcs() const noexcept { return vcs_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] int unitsPerRouter() const noexcept { return unitsPerRouter_; }
  [[nodiscard]] int base(NodeId id) const noexcept {
    return static_cast<int>(id) * unitsPerRouter_;
  }
  [[nodiscard]] int unitIndex(NodeId id, int port, int vc) const noexcept {
    return base(id) + port * vcs_ + vc;
  }

  // --- flit buffers (by global unit index) ----------------------------------
  [[nodiscard]] bool empty(int u) const noexcept { return meta_[u].size == 0; }
  [[nodiscard]] bool full(int u) const noexcept { return meta_[u].size == depth_; }
  [[nodiscard]] int size(int u) const noexcept { return meta_[u].size; }
  [[nodiscard]] const Flit& front(int u) const noexcept {
    return flit_[slot(u, meta_[u].head)];
  }
  /// Arrival stamp of the front flit, kept beside the ring head/size: the
  /// per-cycle eligibility checks (`departed-this-cycle`, Td) and the push/
  /// pop updates hit the same packed record.
  [[nodiscard]] std::uint64_t frontArrival(int u) const noexcept {
    return meta_[u].frontArrival;
  }
  /// i-th buffered flit from the front (introspection/validation).
  [[nodiscard]] const Flit& flitAt(int u, int i) const noexcept {
    return flit_[slot(u, (meta_[u].head + i) & strideMask_)];
  }

  [[nodiscard]] const std::uint32_t* routeRow(int u) const noexcept {
    return route_.data() + u;
  }
  /// Base of the always-empty credit row appended past the real units (see
  /// ctor): size(creditSinkBase() + vc) never reports a full buffer.
  [[nodiscard]] int creditSinkBase() const noexcept {
    return nodes_ * unitsPerRouter_;
  }

  /// Push/pop take the owning router id so the occupancy transition needs
  /// no division; callers always know it (asserted in debug builds).
  void push(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    pushImpl<false>(node, u, f, arrivalCycle);
  }

  /// `now` is the popping cycle; in the inexact-arrival mode it feeds the
  /// conservative front stamp (see the freshness lemma in the class comment).
  /// Engine callers must pass the current cycle; tests running in the exact
  /// mode may omit it.
  Flit pop(NodeId node, int u, std::uint64_t now = 0) noexcept {
    return popImpl<false>(node, u, now);
  }

  /// Variants safe for the sparse-mt engine's parallel commit phase. A
  /// domain owns its routers' units outright — flit rings, sizes, occupancy
  /// words and counts are all router-local — but the network-level active_
  /// bitmap packs 64 routers per word, so two domains meeting inside one
  /// word may RMW it concurrently. These make exactly that one transition
  /// atomic (relaxed: the barrier after the commit phase publishes); all
  /// other state is written plainly, as in push/pop.
  void pushMt(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    pushImpl<true>(node, u, f, arrivalCycle);
  }
  Flit popMt(NodeId node, int u, std::uint64_t now = 0) noexcept {
    return popImpl<true>(node, u, now);
  }

  // --- per-unit routing state -----------------------------------------------
  // Packed into one word per unit (bit 0: routed, bits 8..15: outPort,
  // bits 16..23: outVc) so the switch-allocation path pays one load, not
  // three. An allocation also enters the unit into the per-output-port
  // request mask that switch allocation walks; `allocateRoute` and
  // `releaseRoute` are the only mutators, keeping word and masks in sync.
  [[nodiscard]] std::uint32_t routeWord(int u) const noexcept { return route_[u]; }
  [[nodiscard]] static bool wordRouted(std::uint32_t w) noexcept { return (w & 1u) != 0; }
  [[nodiscard]] static int wordOutPort(std::uint32_t w) noexcept {
    return static_cast<int>((w >> 8) & 0xFFu);
  }
  [[nodiscard]] static int wordOutVc(std::uint32_t w) noexcept {
    return static_cast<int>((w >> 16) & 0xFFu);
  }
  [[nodiscard]] bool routed(int u) const noexcept { return wordRouted(route_[u]); }
  [[nodiscard]] std::uint8_t outPort(int u) const noexcept {
    return static_cast<std::uint8_t>(wordOutPort(route_[u]));
  }
  [[nodiscard]] std::uint8_t outVc(int u) const noexcept {
    return static_cast<std::uint8_t>(wordOutVc(route_[u]));
  }

  /// The head message of unit `localUnit` at router `node` holds output
  /// (port, vc) from now until `releaseRoute` (tail departure). `downUnit`
  /// is the global index of the downstream unit the allocation feeds (the
  /// neighbour's input unit, or the credit sink for ejection); the arena
  /// snapshots its credit state into downOk_ and registers the feedback
  /// edge so later depth crossings at the downstream keep the bit live.
  void allocateRoute(NodeId node, int localUnit, int port, int vc,
                     int downUnit) noexcept {
    const int g = base(node) + localUnit;
    route_[g] = 1u | (static_cast<std::uint32_t>(port) << 8) |
                (static_cast<std::uint32_t>(vc) << 16);
    const std::uint64_t bit = 1ULL << (localUnit & 63);
    routedMask_[maskIndex(node, localUnit)] |= bit;
    portMembers_[memberIndex(node, port, localUnit)] |= bit;
    routeDown_[g] = downUnit;
    assert((downOk_[maskIndex(node, localUnit)] & bit) == 0);
    if ((creditOk_[static_cast<std::size_t>(downUnit) >> 6] >>
         (downUnit & 63)) & 1u) {
      downOk_[maskIndex(node, localUnit)] |= bit;
    }
    if (downUnit < creditSinkBase()) {
      assert(feeder_[downUnit] < 0);
      feeder_[downUnit] =
          (static_cast<std::int64_t>(node) << 32) | localUnit;
    }
  }
  void releaseRoute(NodeId node, int localUnit) noexcept {
    const int g = base(node) + localUnit;
    const int port = wordOutPort(route_[g]);
    route_[g] &= ~1u;
    const std::uint64_t bit = 1ULL << (localUnit & 63);
    routedMask_[maskIndex(node, localUnit)] &= ~bit;
    portMembers_[memberIndex(node, port, localUnit)] &= ~bit;
    downOk_[maskIndex(node, localUnit)] &= ~bit;
    const int du = routeDown_[g];
    routeDown_[g] = -1;
    if (du >= 0 && du < creditSinkBase()) feeder_[du] = -1;
  }

  /// Bit per unit: currently routed (holds an output allocation).
  [[nodiscard]] const std::uint64_t* routedWords(NodeId id) const noexcept {
    return routedMask_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  /// Bit per unit: routed with outPort == `port` (switch requesters). The
  /// `ports` rows of a router are contiguous: with one occupancy word per
  /// router, portMembers(id, 0) is the base of a dense ports x 1 matrix the
  /// SIMD port sweep strides through.
  [[nodiscard]] const std::uint64_t* portMembers(NodeId id, int port) const noexcept {
    return portMembers_.data() +
           (static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(occWords_);
  }

  // --- incremental qualification bitmaps ------------------------------------
  /// Bit per unit: occupied as of the last cycle boundary, which is exactly
  /// "front arrived strictly before the cycle being executed". Stale for a
  /// router between its own mid-cycle pops and the next matureFreshness();
  /// engines never read it there (see the fresh_ invariant in the header
  /// comment).
  [[nodiscard]] const std::uint64_t* freshWords(NodeId id) const noexcept {
    return fresh_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  /// Bit per unit: routed and the downstream target has a credit.
  [[nodiscard]] const std::uint64_t* downOkWords(NodeId id) const noexcept {
    return downOk_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  /// Credit state of one global unit (tests/validation; the engines read
  /// credit through downOkWords).
  [[nodiscard]] bool creditOkBit(int u) const noexcept {
    return ((creditOk_[static_cast<std::size_t>(u) >> 6] >> (u & 63)) & 1u) != 0;
  }

  /// Cycle-boundary maturation: for every router touched by a push or pop
  /// since the last sweep (freshDirty_ byte set), fresh = occ — at a
  /// boundary every occupied front arrived in some earlier cycle. Engines
  /// run it once per cycle, after all pushes and pops, on one thread.
  void matureFreshness() noexcept;

  /// Recompute every derived bitmap from scalar state (sizes, route words,
  /// front stamps) and diff against the incremental masks; returns "" or a
  /// description of the first divergence. `freshCycle` is the last executed
  /// cycle (now() - 1 between cycles, 0 before the first cycle runs). Fresh
  /// rows of routers with a pending dirty byte are skipped — they mature at
  /// the next matureFreshness(); between engine cycles every row is clean,
  /// so the oracle checks the full fresh == occ boundary invariant.
  [[nodiscard]] std::string auditMasks(std::uint64_t freshCycle) const;

  // --- output-VC ownership (network ports only) -----------------------------
  /// Owner (input-unit index local to router `id`) of an output VC, -1 free.
  [[nodiscard]] std::int16_t outOwner(NodeId id, int port, int vc) const noexcept {
    return outOwner_[ownerIndex(id, port, vc)];
  }
  void setOutOwner(NodeId id, int port, int vc, std::int16_t owner) noexcept {
    outOwner_[ownerIndex(id, port, vc)] = owner;
    const std::size_t i = static_cast<std::size_t>(id) *
                              static_cast<std::size_t>(networkPorts_) +
                          static_cast<std::size_t>(port);
    const auto bit = static_cast<std::uint16_t>(1u << vc);
    if (owner < 0) {
      freeVc_[i] |= bit;
    } else {
      freeVc_[i] = static_cast<std::uint16_t>(freeVc_[i] & ~bit);
    }
  }
  /// Bit per VC of output port `port`: set iff the VC has no owner. Mirrors
  /// outOwner_ exactly (maintained by setOutOwner), so the VC-allocation scan
  /// ANDs one word instead of probing owners per VC.
  [[nodiscard]] std::uint16_t freeVcMask(NodeId id, int port) const noexcept {
    return freeVc_[static_cast<std::size_t>(id) *
                       static_cast<std::size_t>(networkPorts_) +
                   static_cast<std::size_t>(port)];
  }

  // --- round-robin switch-arbitration cursors -------------------------------
  [[nodiscard]] std::uint16_t cursor(NodeId id, int port) const noexcept {
    return cursor_[static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
                   static_cast<std::size_t>(port)];
  }
  void setCursor(NodeId id, int port, std::uint16_t c) noexcept {
    cursor_[static_cast<std::size_t>(id) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)] = c;
  }

  // --- occupancy ------------------------------------------------------------
  [[nodiscard]] int occWordsPerRouter() const noexcept { return occWords_; }
  [[nodiscard]] const std::uint64_t* occWords(NodeId id) const noexcept {
    return occ_.data() + static_cast<std::size_t>(id) * static_cast<std::size_t>(occWords_);
  }
  [[nodiscard]] int occupiedUnits(NodeId id) const noexcept {
    int n = 0;
    const std::uint64_t* row = occWords(id);
    for (int w = 0; w < occWords_; ++w) n += std::popcount(row[w]);
    return n;
  }
  [[nodiscard]] bool anyOccupied(NodeId id) const noexcept {
    const std::uint64_t* row = occWords(id);
    for (int w = 0; w < occWords_; ++w) {
      if (row[w] != 0) return true;
    }
    return false;
  }

  /// Network-level active set: bit `id` set iff router `id` has any occupied
  /// input unit. Updated by push/pop; the sparse engine walks it live.
  [[nodiscard]] const std::vector<std::uint64_t>& activeWords() const noexcept {
    return active_;
  }

 private:
  [[nodiscard]] int slot(int u, int ringPos) const noexcept {
    return (u << strideLog2_) + ringPos;
  }
  [[nodiscard]] std::size_t ownerIndex(NodeId id, int port, int vc) const noexcept {
    return static_cast<std::size_t>(id) *
               static_cast<std::size_t>(networkPorts_ * vcs_) +
           static_cast<std::size_t>(port * vcs_ + vc);
  }
  [[nodiscard]] std::size_t maskIndex(NodeId node, int localUnit) const noexcept {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(occWords_) +
           static_cast<std::size_t>(localUnit >> 6);
  }
  /// True when every occupancy word of `node`'s row except localUnit's own
  /// is zero. Trivially true for single-word routers; only reached on the
  /// rare all-but-this-word-empty paths of push/pop.
  [[nodiscard]] bool rowOtherWordsZero(NodeId node, int localUnit) const noexcept {
    const std::uint64_t* row =
        occ_.data() + static_cast<std::size_t>(node) * static_cast<std::size_t>(occWords_);
    const int own = localUnit >> 6;
    for (int w = 0; w < occWords_; ++w) {
      if (w != own && row[w] != 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t memberIndex(NodeId node, int port,
                                        int localUnit) const noexcept {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(totalPorts_) +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(occWords_) +
           static_cast<std::size_t>(localUnit >> 6);
  }

  /// A push/pop at unit `u` crossed the depth boundary: flip its creditOk_
  /// bit and, when a routed upstream unit feeds it, that feeder's downOk_
  /// bit. Under kAtomicActive both words may be shared with units another
  /// domain is committing (creditOk_ packs adjacent routers into one word;
  /// the feeder is a neighbour router, possibly cross-domain), so the RMWs
  /// are atomic (relaxed: the phase barrier publishes). feeder_[u] itself is
  /// only written by the serial phases, so the plain read does not race.
  template <bool kAtomicActive>
  void creditCrossed(int u, bool nowOk) noexcept {
    const std::uint64_t cbit = 1ULL << (u & 63);
    std::uint64_t& cw = creditOk_[static_cast<std::size_t>(u) >> 6];
    if constexpr (kAtomicActive) {
      if (nowOk) {
        std::atomic_ref<std::uint64_t>(cw).fetch_or(cbit, std::memory_order_relaxed);
      } else {
        std::atomic_ref<std::uint64_t>(cw).fetch_and(~cbit, std::memory_order_relaxed);
      }
    } else {
      if (nowOk) cw |= cbit; else cw &= ~cbit;
    }
    const std::int64_t f = feeder_[u];
    if (f < 0) return;
    const auto fNode = static_cast<NodeId>(f >> 32);
    const int fLocal = static_cast<int>(f & 0x7FFFFFFF);
    std::uint64_t& dw = downOk_[maskIndex(fNode, fLocal)];
    const std::uint64_t dbit = 1ULL << (fLocal & 63);
    if constexpr (kAtomicActive) {
      if (nowOk) {
        std::atomic_ref<std::uint64_t>(dw).fetch_or(dbit, std::memory_order_relaxed);
      } else {
        std::atomic_ref<std::uint64_t>(dw).fetch_and(~dbit, std::memory_order_relaxed);
      }
    } else {
      if (nowOk) dw |= dbit; else dw &= ~dbit;
    }
  }

  // push/pop are deliberately branch-poor. At the saturation knee buffer
  // sizes oscillate around 0..2, so the was-empty / became-empty transitions
  // are data-dependent coin flips a predictor cannot learn; every update
  // below that depends on them is a mask or a conditional move, not a
  // branch. The remaining branches are either engine constants
  // (exactArrivals_) or rare and cheap to predict (depth crossings, whole-
  // router active transitions). Neither touches fresh_: the row is a
  // boundary snapshot nobody reads between a router's own pops and the next
  // matureFreshness(), so both just mark the router's freshDirty_ byte —
  // unconditionally, because a spurious mark only makes the sweep recopy a
  // row that already equals its occupancy word.
  template <bool kAtomicActive>
  void pushImpl(NodeId node, int u, Flit f, std::uint64_t arrivalCycle) noexcept {
    assert(u >= base(node) && u < base(node) + unitsPerRouter_);
    UnitMeta& m = meta_[u];
    const std::uint16_t was = m.size;
    const int s = slot(u, (m.head + was) & strideMask_);
    flit_[s] = f;
    if (exactArrivals_) {
      arrival_[s] = arrivalCycle;
    } else {
      m.lastPush = arrivalCycle;
    }
    m.size = static_cast<std::uint16_t>(was + 1);
    const bool wasEmpty = was == 0;
    // Only a push into an empty unit installs a new front; it matures at the
    // next boundary sweep.
    m.frontArrival = wasEmpty ? arrivalCycle : m.frontArrival;
    const int local = u - base(node);
    const std::uint64_t bit = 1ULL << (local & 63);
    std::uint64_t& ow = occ_[maskIndex(node, local)];
    const std::uint64_t before = ow;
    ow = before | bit;  // idempotent when already occupied
    freshDirty_[node] = 1;
    // Active transition iff the whole row was zero. The unit's own word
    // screens out almost every push with one already-loaded compare; the
    // remaining words (none for <= 64-unit routers) hide behind the
    // well-predicted rare branch.
    if (before == 0 && rowOtherWordsZero(node, local)) activate<kAtomicActive>(node);
    if (m.size == depth_) creditCrossed<kAtomicActive>(u, false);
  }

  template <bool kAtomicActive>
  Flit popImpl(NodeId node, int u, std::uint64_t now) noexcept {
    assert(u >= base(node) && u < base(node) + unitsPerRouter_);
    UnitMeta& m = meta_[u];
    const Flit f = flit_[slot(u, m.head)];
    m.head = static_cast<std::uint16_t>((m.head + 1) & strideMask_);
    const bool wasFull = m.size == depth_;
    const std::uint16_t left = static_cast<std::uint16_t>(m.size - 1);
    m.size = left;
    const int local = u - base(node);
    const std::uint64_t fbit = 1ULL << (local & 63);
    std::uint64_t fa;
    if (exactArrivals_) {
      fa = arrival_[slot(u, m.head)];  // stale-but-unread when emptied
    } else {
      // Freshness lemma: a lone survivor is the latest push; >= 2 survivors
      // all arrived strictly before the popping cycle (see ctor comment).
      assert(left <= 1 || now > 0);
      fa = left == 1 ? m.lastPush : now - 1;
    }
    m.frontArrival = fa;
    freshDirty_[node] = 1;
    const bool emptied = left == 0;
    std::uint64_t& ow = occ_[maskIndex(node, local)];
    const std::uint64_t after =
        ow & ~(fbit & (0 - static_cast<std::uint64_t>(emptied)));
    ow = after;
    // Active transition iff the whole row just became zero (the clear above
    // is a no-op unless `emptied`); same screening as pushImpl.
    if (after == 0 && emptied && rowOtherWordsZero(node, local)) {
      deactivate<kAtomicActive>(node);
    }
    if (wasFull) creditCrossed<kAtomicActive>(u, true);
    return f;
  }

  // Whole-router active-set transitions (occCount 0 <-> 1). Rare relative to
  // push/pop traffic, so they stay behind a branch; the active_ word is the
  // one mask shared across MT domains, hence the atomic flavor.
  template <bool kAtomicActive>
  void activate(NodeId node) noexcept {
    if constexpr (kAtomicActive) {
      std::atomic_ref<std::uint64_t>(active_[static_cast<std::size_t>(node) >> 6])
          .fetch_or(1ULL << (node & 63), std::memory_order_relaxed);
    } else {
      active_[static_cast<std::size_t>(node) >> 6] |= (1ULL << (node & 63));
    }
  }
  template <bool kAtomicActive>
  void deactivate(NodeId node) noexcept {
    if constexpr (kAtomicActive) {
      std::atomic_ref<std::uint64_t>(active_[static_cast<std::size_t>(node) >> 6])
          .fetch_and(~(1ULL << (node & 63)), std::memory_order_relaxed);
    } else {
      active_[static_cast<std::size_t>(node) >> 6] &= ~(1ULL << (node & 63));
    }
  }

  int nodes_;
  int totalPorts_;
  int networkPorts_;
  int vcs_;
  int depth_;
  int unitsPerRouter_;
  int strideLog2_;   // ring stride = bit_ceil(depth); slots per unit
  int strideMask_;
  int occWords_;     // occupancy words per router
  bool exactArrivals_;

  // Flit rings: slot = (unit << strideLog2) + ringPos.
  std::vector<Flit> flit_;
  std::vector<std::uint64_t> arrival_;  // per-slot stamps (exact mode only)
  // Hot per-unit ring metadata, packed so one cache access serves a whole
  // push or pop (a flit move reads and writes every field; keeping them in
  // parallel arrays cost a separate line touch each). 24-byte stride; the
  // u16s sit after the u64s so the record needs no internal padding. The
  // credit sink (vcs entries past the real units, see ctor) rides along with
  // permanently-zero sizes.
  struct UnitMeta {
    std::uint64_t frontArrival = 0;  // stamp of the front flit
    std::uint64_t lastPush = 0;      // latest stamp (inexact mode only)
    std::uint16_t head = 0;
    std::uint16_t size = 0;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(UnitMeta) == 24);
  std::vector<UnitMeta> meta_;

  std::vector<std::uint32_t> route_;
  std::vector<std::uint64_t> routedMask_;   // node x occWords
  std::vector<std::uint64_t> portMembers_;  // (node x totalPorts) x occWords

  // Incremental qualification state (see class comment / DESIGN.md §8).
  std::vector<std::uint64_t> fresh_;      // node x occWords
  std::vector<std::uint64_t> downOk_;     // node x occWords
  std::vector<std::uint64_t> creditOk_;   // global units + sink row, bit-packed
  std::vector<std::int32_t> routeDown_;   // per unit: downstream target, -1 free
  std::vector<std::int64_t> feeder_;      // per unit: upstream (node<<32|local), -1
  std::vector<std::uint8_t> freshDirty_;  // per router: freshness changed last cycle

  std::vector<std::int16_t> outOwner_;
  std::vector<std::uint16_t> freeVc_;  // per (node, port): bit vc = unowned
  std::vector<std::uint16_t> cursor_;

  std::vector<std::uint64_t> occ_;
  std::vector<std::uint64_t> active_;
};

}  // namespace swft
