// Canonical SimConfig serialization for content-addressed result caching.
//
// Two configurations that must produce bit-identical SimResults map to the
// same canonical key; any configuration change that can alter a result maps
// to a different key. Concretely: every semantic field (topology, router
// shape, workload, routing, faults, measurement protocol, seed) is written
// in a fixed order with exact value encodings, while the engine selector and
// `sim_threads` are deliberately EXCLUDED — the dense, sparse and sparse-mt
// engines are proven bit-identical at every thread count (DESIGN.md §4/§6),
// so a result simulated by any of them satisfies a lookup from any other.
//
// The key embeds kEngineSemanticsVersion. Any PR that changes what a
// simulation computes for a fixed config — RNG draw order, arbitration
// order, statistics definitions, default semantics of an existing field —
// MUST bump the constant, which invalidates every cached result at once.
// Adding a new config field requires writing it into canonicalConfigKey
// (give it a token even at its default value) and counts as a semantics
// bump only if the default changes behaviour of old configs.
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/config.hpp"

namespace swft {

/// Version of the simulation semantics: what SimResult a given canonical
/// config produces. Bump on any change to RNG draw order, allocation or
/// arbitration order, stop conditions, or statistics definitions.
inline constexpr std::uint32_t kEngineSemanticsVersion = 1;

/// Exact, locale-independent encoding of a double: the 16-hex-digit bit
/// pattern (IEEE-754 binary64). Distinct values — including ones that print
/// identically at any decimal precision — encode distinctly.
[[nodiscard]] std::string exactDoubleToken(double v);

/// Single-line canonical serialization of every semantic field of `cfg`,
/// in fixed order, prefixed with the format tag and `semanticsVersion`.
/// Excludes cfg.engine and cfg.simThreads (see header comment).
[[nodiscard]] std::string canonicalConfigKey(
    const SimConfig& cfg, std::uint32_t semanticsVersion = kEngineSemanticsVersion);

/// FNV-1a 64 over canonicalConfigKey — the content address of a result.
[[nodiscard]] std::uint64_t canonicalConfigHash(
    const SimConfig& cfg, std::uint32_t semanticsVersion = kEngineSemanticsVersion);

}  // namespace swft
