// Processing-element side of a node: message generation, the source queue,
// and the messaging-layer queue of absorbed messages awaiting re-injection
// (paper assumptions (a), (d), (i)).
#pragma once

#include <cstdint>
#include <deque>

#include "src/router/flit.hpp"
#include "src/util/rng.hpp"

namespace swft {

struct PendingReinjection {
  MsgId msg = kInvalidMsg;
  std::uint64_t readyCycle = 0;
};

struct NodeState {
  /// Locally generated messages waiting to enter the network.
  std::deque<MsgId> sourceQueue;
  /// Absorbed messages being held by the messaging layer for Δ cycles.
  /// FIFO: Δ is constant, so the deque stays sorted by readyCycle.
  std::deque<PendingReinjection> swQueue;

  /// Message currently being streamed into an injection virtual channel.
  MsgId streaming = kInvalidMsg;
  int streamVc = -1;
  int nextFlit = 0;
  /// Length of the streaming message, cached so per-flit kind computation
  /// does not re-read the message pool (sparse engine).
  std::uint16_t streamLen = 0;

  /// Next cycle at which the Poisson (geometric inter-arrival) source fires.
  std::uint64_t nextGenCycle = 0;

  /// Per-node random stream: generation times, destinations.
  Rng rng;

  [[nodiscard]] std::size_t queuedMessages() const noexcept {
    return sourceQueue.size() + swQueue.size();
  }
};

}  // namespace swft
