#include "src/sim/stats.hpp"

#include "src/sim/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace swft {

const char* PhaseBreakdown::phaseName(int p) noexcept {
  switch (p) {
    case kCards: return "cards";
    case kLinkQual: return "linkq";
    case kGen: return "gen";
    case kInj: return "inj";
    case kWalk: return "walk";
    case kCommit: return "commit";
    case kBarrier: return "barrier";
    default: return "?";
  }
}

std::string PhaseBreakdown::toString() const {
  std::string out;
  char buf[48];
  for (int p = 0; p < kPhaseCount; ++p) {
    std::snprintf(buf, sizeof(buf), "%s%s %.3fs", p ? " " : "", phaseName(p),
                  sec[p]);
    out += buf;
  }
  return out;
}

ScalePreset scaleFromEnv() {
  const char* env = std::getenv("SWFT_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) return ScalePreset::Paper;
  return ScalePreset::Reduced;
}

void applyScale(SimConfig& cfg, ScalePreset scale) {
  if (scale == ScalePreset::Paper) {
    // Paper §5.2: 100,000 messages per generation rate, statistics inhibited
    // for the first 10,000.
    cfg.warmupMessages = 10'000;
    cfg.measuredMessages = 90'000;
    cfg.maxCycles = 40'000'000;
  } else {
    cfg.warmupMessages = 2'000;
    cfg.measuredMessages = 8'000;
    cfg.maxCycles = 1'500'000;
  }
}

}  // namespace swft
