#include "src/sim/stats.hpp"

#include "src/sim/config.hpp"

#include <cstdlib>
#include <cstring>

namespace swft {

ScalePreset scaleFromEnv() {
  const char* env = std::getenv("SWFT_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) return ScalePreset::Paper;
  return ScalePreset::Reduced;
}

void applyScale(SimConfig& cfg, ScalePreset scale) {
  if (scale == ScalePreset::Paper) {
    // Paper §5.2: 100,000 messages per generation rate, statistics inhibited
    // for the first 10,000.
    cfg.warmupMessages = 10'000;
    cfg.measuredMessages = 90'000;
    cfg.maxCycles = 40'000'000;
  } else {
    cfg.warmupMessages = 2'000;
    cfg.measuredMessages = 8'000;
    cfg.maxCycles = 1'500'000;
  }
}

}  // namespace swft
