#include "src/sim/network.hpp"

#include <cmath>
#include <stdexcept>

namespace swft {

namespace {

FaultSet buildFaults(const TorusTopology& topo, const FaultSpec& spec, Rng rng) {
  FaultSet faults(topo);
  for (NodeId id : spec.explicitNodes) faults.failNode(id);
  for (const auto& link : spec.explicitLinks) {
    faults.failLink(link[0], static_cast<int>(link[1]),
                    link[2] == 0 ? Dir::Pos : Dir::Neg);
  }
  for (const RegionSpec& region : spec.regions) applyRegion(faults, region);
  if (spec.randomNodes > 0) applyRandomNodeFaults(faults, spec.randomNodes, rng);
  if (!spec.empty() && !healthyNetworkConnected(faults)) {
    throw std::runtime_error("Network: fault pattern disconnects the network");
  }
  return faults;
}

}  // namespace

Network::Network(const SimConfig& cfg)
    : cfg_(cfg),
      topo_(cfg.radix, cfg.dims),
      faults_(buildFaults(topo_, cfg.faults, Rng(cfg.seed).split(0xFA17))),
      part_(cfg.routing, cfg.vcs, cfg.escapeVcs),
      ecube_(topo_),
      duato_(topo_),
      software0_(std::make_unique<SoftwareLayer>(topo_, faults_, cfg.livelockThreshold)),
      software_(*software0_),
      traffic_(cfg.pattern, faults_),
      engineRng_(Rng(cfg.seed).split(0xE61E)) {
  routers_.reserve(topo_.nodeCount());
  nodes_.reserve(topo_.nodeCount());
  const Rng nodeSeeder = Rng(cfg.seed).split(0x50DE);
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    routers_.emplace_back(topo_.totalPorts(), topo_.networkPorts(), cfg.vcs,
                          cfg.bufferDepth);
    NodeState node;
    node.rng = nodeSeeder.split(id);
    if (cfg.injectionRate > 0.0 && !faults_.nodeFaulty(id)) {
      node.nextGenCycle = node.rng.geometric(cfg.injectionRate);
    } else {
      node.nextGenCycle = ~std::uint64_t{0};
    }
    nodes_.push_back(std::move(node));
  }
  healthyNodeCount_ = faults_.healthyNodes().size();
  networkPorts_ = topo_.networkPorts();
  nbr_.resize(static_cast<std::size_t>(topo_.nodeCount()) *
              static_cast<std::size_t>(networkPorts_));
  wrapBit_.resize(nbr_.size());
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    for (int port = 0; port < networkPorts_; ++port) {
      const std::size_t idx =
          static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
          static_cast<std::size_t>(port);
      nbr_[idx] = topo_.neighbor(id, port);
      wrapBit_[idx] = topo_.isWrapLink(id, dimOfPort(port), dirOfPort(port)) ? 1 : 0;
    }
  }
  if (cfg.warmupMessages == 0) {
    windowOpen_ = true;
    windowStartCycle_ = 0;
  }
}

MsgId Network::injectTestMessage(NodeId src, NodeId dest, int length, RoutingMode mode) {
  if (faults_.nodeFaulty(src) || faults_.nodeFaulty(dest)) {
    throw std::invalid_argument("injectTestMessage: endpoint is faulty");
  }
  const MsgId id = pool_.allocate();
  Message& m = pool_.get(id);
  m.src = src;
  m.finalDest = dest;
  m.curTarget = dest;
  m.seq = genSeq_++;
  m.genCycle = cycle_;
  m.length = static_cast<std::uint16_t>(length);
  m.mode = mode;
  nodes_[src].sourceQueue.push_back(id);
  ++generatedTotal_;
  return id;
}

SimResult Network::snapshot() const {
  SimResult r;
  r.meanLatency = latency_.stat().mean();
  r.latencyStddev =
      latency_.stat().count() > 1 ? std::sqrt(latency_.stat().variance()) : 0.0;
  r.maxLatency = latency_.stat().max();
  r.latencyP50 = latency_.percentile(0.50);
  r.latencyP95 = latency_.percentile(0.95);
  r.latencyP99 = latency_.percentile(0.99);
  r.latencyCi95 = latency_.ciHalfWidth95();
  r.meanHops = hops_.mean();
  r.cycles = cycle_;
  r.generatedTotal = generatedTotal_;
  r.deliveredTotal = deliveredTotal_;
  r.deliveredMeasured = deliveredMeasured_;
  r.offeredLoad = cfg_.injectionRate;
  if (windowOpen_ && cycle_ > windowStartCycle_ && healthyNodeCount_ > 0) {
    r.throughput = static_cast<double>(deliveredInWindow_) /
                   (static_cast<double>(healthyNodeCount_) *
                    static_cast<double>(cycle_ - windowStartCycle_));
  }
  const SoftwareLayerStats& sw = software_.stats();
  r.messagesQueued = sw.absorptions;
  r.absorbedMessages = absorbedMessages_;
  r.reversals = sw.reversals;
  r.detours = sw.detours;
  r.escalations = sw.escalations;
  r.deadlockSuspected = deadlockSuspected_;
  r.completed = deliveredMeasured_ >= cfg_.measuredMessages;
  // Saturation heuristic: the run did not complete, or the accepted rate
  // fell visibly below the offered rate while queues grew.
  const double accepted = r.throughput;
  r.saturated = !r.completed ||
                (cfg_.injectionRate > 0 && accepted > 0 &&
                 accepted < 0.85 * cfg_.injectionRate && sourceQueueMean() > 8.0);
  return r;
}

double Network::sourceQueueMean() const {
  if (healthyNodeCount_ == 0) return 0.0;
  std::size_t total = 0;
  for (const NodeState& n : nodes_) total += n.queuedMessages();
  return static_cast<double>(total) / static_cast<double>(healthyNodeCount_);
}

SimResult Network::run() {
  while (cycle_ < cfg_.maxCycles) {
    if (deliveredMeasured_ >= cfg_.measuredMessages) break;
    if (deadlockSuspected_) break;
    advanceCycle();
  }
  return snapshot();
}

void Network::step(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles && !deadlockSuspected_; ++i) advanceCycle();
}

SimResult runSimulation(const SimConfig& cfg) { return Network(cfg).run(); }

std::string Network::validateInvariants() const {
  const int vcs = cfg_.vcs;
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    const RouterState& router = routers_[id];
    // 1. Occupancy bits mirror buffer emptiness exactly.
    for (int u = 0; u < router.unitCount(); ++u) {
      const bool bit = (router.occupancy()[static_cast<std::size_t>(u) >> 6] >>
                        (u & 63)) & 1u;
      const bool nonEmpty = !router.unit(u).buf.empty();
      if (bit != nonEmpty) {
        return "occupancy bit mismatch at node " + std::to_string(id) + " unit " +
               std::to_string(u);
      }
    }
    // 2. Output-VC ownership: every owner refers to a routed unit whose
    //    allocation points back at exactly that (port, vc).
    for (int port = 0; port < topo_.networkPorts(); ++port) {
      for (int vc = 0; vc < vcs; ++vc) {
        const std::int16_t owner = router.outOwner(port, vc);
        if (owner < 0) continue;
        if (owner >= router.unitCount()) {
          return "out-of-range output owner at node " + std::to_string(id);
        }
        const InputUnit& unit = router.unit(owner);
        if (!unit.routed || unit.outPort != port || unit.outVc != vc) {
          return "inconsistent output ownership at node " + std::to_string(id) +
                 " port " + std::to_string(port) + " vc " + std::to_string(vc);
        }
      }
    }
    // 3. A routed unit targeting a network port must hold that output VC.
    for (int u = 0; u < router.unitCount(); ++u) {
      const InputUnit& unit = router.unit(u);
      if (!unit.routed || unit.outPort == topo_.localPort()) continue;
      if (router.outOwner(unit.outPort, unit.outVc) != static_cast<std::int16_t>(u)) {
        return "routed unit without matching ownership at node " + std::to_string(id);
      }
    }
    // 4. Wormhole contiguity: within a VC buffer, flits between a header and
    //    its tail belong to one message, and kinds follow H (B*) T framing.
    for (int u = 0; u < router.unitCount(); ++u) {
      FlitFifo copy = router.unit(u).buf;  // value copy: safe to drain
      MsgId current = kInvalidMsg;
      while (!copy.empty()) {
        const Flit f = copy.pop();
        if (current == kInvalidMsg) {
          // First flit of a framing span: either a header, or the mid-drain
          // remainder of a message whose header departed earlier.
          current = f.msg;
        } else if (f.msg != current) {
          return "interleaved messages in one VC buffer at node " + std::to_string(id);
        }
        if (f.isTail()) current = kInvalidMsg;
      }
    }
  }
  // 5. Message accounting: pool live count covers queued + in-network flits.
  std::size_t queued = 0;
  for (const NodeState& n : nodes_) queued += n.queuedMessages();
  if (queued > pool_.liveCount()) {
    return "more queued messages than live pool slots";
  }
  return {};
}

}  // namespace swft
