#include "src/sim/network.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/sim/engine_mt.hpp"

namespace swft {

namespace {

FaultSet buildFaults(const TorusTopology& topo, const FaultSpec& spec, Rng rng) {
  FaultSet faults(topo);
  for (NodeId id : spec.explicitNodes) faults.failNode(id);
  for (const auto& link : spec.explicitLinks) {
    faults.failLink(link[0], static_cast<int>(link[1]),
                    link[2] == 0 ? Dir::Pos : Dir::Neg);
  }
  for (const RegionSpec& region : spec.regions) applyRegion(faults, region);
  if (spec.randomNodes > 0) applyRandomNodeFaults(faults, spec.randomNodes, rng);
  if (!spec.empty() && !healthyNetworkConnected(faults)) {
    throw std::runtime_error("Network: fault pattern disconnects the network");
  }
  return faults;
}

}  // namespace

Network::Network(const SimConfig& cfg)
    : cfg_(cfg),
      topo_(cfg.radix, cfg.dims),
      faults_(buildFaults(topo_, cfg.faults, Rng(cfg.seed).split(0xFA17))),
      part_(cfg.routing, cfg.vcs, cfg.escapeVcs),
      ecube_(topo_),
      duato_(topo_),
      software0_(std::make_unique<SoftwareLayer>(topo_, faults_, cfg.livelockThreshold)),
      software_(*software0_),
      traffic_(cfg.pattern, faults_, cfg.hotspotFraction),
      arena_(static_cast<int>(topo_.nodeCount()), topo_.totalPorts(),
             topo_.networkPorts(), cfg.vcs, cfg.bufferDepth,
             /*exactArrivals=*/cfg.routerDecisionTime > 0),
      engineRng_(Rng(cfg.seed).split(0xE61E)) {
  if (cfg.engine == EngineKind::Dense) {
    // The dense reference engine runs on the seed's per-router storage; the
    // arena stays unused (it is cheap to construct and keeps the type simple).
    legacy_.reserve(topo_.nodeCount());
    for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
      legacy_.emplace_back(topo_.totalPorts(), topo_.networkPorts(), cfg.vcs,
                           cfg.bufferDepth);
    }
  }
  nodes_.reserve(topo_.nodeCount());
  nodeWork_.resize((static_cast<std::size_t>(topo_.nodeCount()) + 63) / 64, 0);
  const Rng nodeSeeder = Rng(cfg.seed).split(0x50DE);
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    NodeState node;
    node.rng = nodeSeeder.split(id);
    if (cfg.injectionRate > 0.0 && !faults_.nodeFaulty(id)) {
      node.nextGenCycle = node.rng.geometric(cfg.injectionRate);
      calendar_.schedule(id, node.nextGenCycle);
    } else {
      node.nextGenCycle = ~std::uint64_t{0};
    }
    nodes_.push_back(std::move(node));
  }
  healthyNodeCount_ = faults_.healthyNodes().size();
  networkPorts_ = topo_.networkPorts();
  nbr_.resize(static_cast<std::size_t>(topo_.nodeCount()) *
              static_cast<std::size_t>(networkPorts_));
  wrapBit_.resize(nbr_.size());
  // downBase_ has a row per *total* port: the ejection port's entry points at
  // the arena's always-zero credit sink, so the link-qualification loop can
  // read a downstream size row for every port without branching on locality.
  downBase_.resize(static_cast<std::size_t>(topo_.nodeCount()) *
                   static_cast<std::size_t>(networkPorts_ + 1));
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    for (int port = 0; port < networkPorts_; ++port) {
      const std::size_t idx =
          static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
          static_cast<std::size_t>(port);
      nbr_[idx] = topo_.neighbor(id, port);
      wrapBit_[idx] = topo_.isWrapLink(id, dimOfPort(port), dirOfPort(port)) ? 1 : 0;
      downBase_[static_cast<std::size_t>(id) *
                    static_cast<std::size_t>(networkPorts_ + 1) +
                static_cast<std::size_t>(port)] =
          static_cast<std::int32_t>(arena_.base(nbr_[idx]) + (port ^ 1) * cfg.vcs);
    }
    downBase_[static_cast<std::size_t>(id) *
                  static_cast<std::size_t>(networkPorts_ + 1) +
              static_cast<std::size_t>(networkPorts_)] =
        static_cast<std::int32_t>(arena_.creditSinkBase());
  }
  if (cfg.warmupMessages == 0) {
    windowOpen_ = true;
    windowStartCycle_ = 0;
  }
  // Slot 0 (the main/baton thread); the mt engine widens this to one slot
  // per domain before its workers spawn.
  if (cfg.phaseTimers) phaseShards_.resize(1);
  if (cfg.engine == EngineKind::SparseMt) {
    // Last: the engine captures the fully-built network (caches, arena).
    mt_ = std::make_unique<MtEngine>(*this, cfg.simThreads);
  }
}

Network::~Network() = default;  // here: ~MtEngine needs the complete type

MsgId Network::injectTestMessage(NodeId src, NodeId dest, int length, RoutingMode mode) {
  if (faults_.nodeFaulty(src) || faults_.nodeFaulty(dest)) {
    throw std::invalid_argument("injectTestMessage: endpoint is faulty");
  }
  const MsgId id = pool_.allocate();
  Message& m = pool_.get(id);
  m.src = src;
  m.finalDest = dest;
  m.curTarget = dest;
  m.seq = genSeq_++;
  m.genCycle = cycle_;
  m.length = static_cast<std::uint16_t>(length);
  m.mode = mode;
  nodes_[src].sourceQueue.push_back(id);
  markNodeWork(src);
  ++generatedTotal_;
  return id;
}

SimResult Network::snapshot() const {
  SimResult r;
  r.meanLatency = latency_.stat().mean();
  r.latencyStddev =
      latency_.stat().count() > 1 ? std::sqrt(latency_.stat().variance()) : 0.0;
  r.maxLatency = latency_.stat().max();
  r.latencyP50 = latency_.percentile(0.50);
  r.latencyP95 = latency_.percentile(0.95);
  r.latencyP99 = latency_.percentile(0.99);
  r.latencyCi95 = latency_.ciHalfWidth95();
  r.meanHops = hops_.mean();
  r.cycles = cycle_;
  r.generatedTotal = generatedTotal_;
  r.deliveredTotal = deliveredTotal_;
  r.deliveredMeasured = deliveredMeasured_;
  r.offeredLoad = cfg_.injectionRate;
  if (windowOpen_ && cycle_ > windowStartCycle_ && healthyNodeCount_ > 0) {
    r.throughput = static_cast<double>(deliveredInWindow_) /
                   (static_cast<double>(healthyNodeCount_) *
                    static_cast<double>(cycle_ - windowStartCycle_));
  }
  const SoftwareLayerStats& sw = software_.stats();
  r.messagesQueued = sw.absorptions;
  r.absorbedMessages = absorbedMessages_;
  r.reversals = sw.reversals;
  r.detours = sw.detours;
  r.escalations = sw.escalations;
  r.deadlockSuspected = deadlockSuspected_;
  r.completed = deliveredMeasured_ >= cfg_.measuredMessages;
  // Saturation heuristic: the run did not complete, or the accepted rate
  // fell visibly below the offered rate while queues grew.
  const double accepted = r.throughput;
  r.saturated = !r.completed ||
                (cfg_.injectionRate > 0 && accepted > 0 &&
                 accepted < 0.85 * cfg_.injectionRate && sourceQueueMean() > 8.0);
  return r;
}

double Network::sourceQueueMean() const {
  if (healthyNodeCount_ == 0) return 0.0;
  std::size_t total = 0;
  for (const NodeState& n : nodes_) total += n.queuedMessages();
  return static_cast<double>(total) / static_cast<double>(healthyNodeCount_);
}

SimResult Network::run() {
  while (cycle_ < cfg_.maxCycles) {
    if (deliveredMeasured_ >= cfg_.measuredMessages) break;
    if (deadlockSuspected_) break;
    advanceCycle();
  }
  return snapshot();
}

void Network::step(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles && !deadlockSuspected_; ++i) advanceCycle();
}

SimResult runSimulation(const SimConfig& cfg) {
  Network net(cfg);
  SimResult result = net.run();
  if (cfg.phaseTimers) {
    const std::vector<PhaseBreakdown>& shards = net.phaseShards();
    PhaseBreakdown merged;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      merged += shards[i];
      std::fprintf(stderr, "phase timers[%zu]: %s\n", i,
                   shards[i].toString().c_str());
    }
    if (shards.size() > 1) {
      std::fprintf(stderr, "phase timers[merged]: %s\n",
                   merged.toString().c_str());
    }
  }
  return result;
}

std::string Network::validateInvariants() const {
  if (cfg_.engine == EngineKind::Dense) {
    std::string v = validateLegacyRouters();
    if (!v.empty()) return v;
  } else {
    std::string v = validateArenaRouters();
    if (!v.empty()) return v;
  }
  // Shared checks, independent of the storage backend.
  // Message accounting: pool live count covers queued + in-network flits.
  std::size_t queued = 0;
  for (const NodeState& n : nodes_) queued += n.queuedMessages();
  if (queued > pool_.liveCount()) {
    return "more queued messages than live pool slots";
  }
  // Injection-side work set covers every node with pending work (the
  // sparse engine never visits a node whose bit is clear, so a clear bit
  // with queued/streaming work would silently stall that node). One
  // exception: a node streaming into a *full* injection buffer is parked —
  // only a router-side pop can unblock it, and that pop re-arms the bit.
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    const bool bit = (nodeWork_[static_cast<std::size_t>(id) >> 6] >> (id & 63)) & 1u;
    if (!bit && !nodeIdle(id)) {
      const NodeState& n = nodes_[id];
      const bool parkedOnFullBuffer =
          n.streaming != kInvalidMsg &&
          arena_.full(arena_.unitIndex(id, topo_.localPort(), n.streamVc));
      if (!parkedOnFullBuffer) {
        return "work-set bit clear for busy node " + std::to_string(id);
      }
    }
  }
  return {};
}

std::string Network::validateArenaRouters() const {
  const int vcs = cfg_.vcs;
  const int unitCount = arena_.unitsPerRouter();
  // 0. The incremental qualification bitmaps (fresh/creditOk/downOk/
  //    portMembers and the feeder edges) match a from-scratch recomputation
  //    from scalar state. Between cycles the freshness masks were last
  //    maintained against the cycle that just executed.
  if (std::string err =
          arena_.auditMasks(cycle_ == 0 ? 0 : cycle_ - 1);
      !err.empty()) {
    return err;
  }
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    const std::uint64_t* occ = arena_.occWords(id);
    // 1. Occupancy bits, the occupied-unit count and the network-level
    //    active bit all mirror buffer emptiness exactly.
    int occupied = 0;
    for (int u = 0; u < unitCount; ++u) {
      const bool bit = (occ[u >> 6] >> (u & 63)) & 1u;
      const bool nonEmpty = !arena_.empty(arena_.base(id) + u);
      if (bit != nonEmpty) {
        return "occupancy bit mismatch at node " + std::to_string(id) + " unit " +
               std::to_string(u);
      }
      occupied += nonEmpty ? 1 : 0;
    }
    if (occupied != arena_.occupiedUnits(id)) {
      return "occupied-unit count mismatch at node " + std::to_string(id);
    }
    const bool activeBit =
        (arena_.activeWords()[static_cast<std::size_t>(id) >> 6] >> (id & 63)) & 1u;
    if (activeBit != (occupied > 0)) {
      return "active-set bit mismatch at node " + std::to_string(id);
    }
    // 2. Output-VC ownership: every owner refers to a routed unit whose
    //    allocation points back at exactly that (port, vc).
    for (int port = 0; port < topo_.networkPorts(); ++port) {
      for (int vc = 0; vc < vcs; ++vc) {
        const std::int16_t owner = arena_.outOwner(id, port, vc);
        if (owner < 0) continue;
        if (owner >= unitCount) {
          return "out-of-range output owner at node " + std::to_string(id);
        }
        const int g = arena_.base(id) + owner;
        if (!arena_.routed(g) || arena_.outPort(g) != port || arena_.outVc(g) != vc) {
          return "inconsistent output ownership at node " + std::to_string(id) +
                 " port " + std::to_string(port) + " vc " + std::to_string(vc);
        }
      }
    }
    // 3. A routed unit targeting a network port must hold that output VC.
    for (int u = 0; u < unitCount; ++u) {
      const int g = arena_.base(id) + u;
      if (!arena_.routed(g) || arena_.outPort(g) == topo_.localPort()) continue;
      if (arena_.outOwner(id, arena_.outPort(g), arena_.outVc(g)) !=
          static_cast<std::int16_t>(u)) {
        return "routed unit without matching ownership at node " + std::to_string(id);
      }
    }
    // 3b. The routed mask and per-port request masks mirror the route words.
    for (int u = 0; u < unitCount; ++u) {
      const int g = arena_.base(id) + u;
      const bool routedBit = (arena_.routedWords(id)[u >> 6] >> (u & 63)) & 1u;
      if (routedBit != arena_.routed(g)) {
        return "routed-mask mismatch at node " + std::to_string(id) + " unit " +
               std::to_string(u);
      }
      for (int port = 0; port < topo_.totalPorts(); ++port) {
        const bool reqBit = (arena_.portMembers(id, port)[u >> 6] >> (u & 63)) & 1u;
        const bool expected = arena_.routed(g) && arena_.outPort(g) == port;
        if (reqBit != expected) {
          return "request-mask mismatch at node " + std::to_string(id) + " unit " +
                 std::to_string(u) + " port " + std::to_string(port);
        }
      }
    }
    // 4. Wormhole contiguity: within a VC buffer, flits between a header and
    //    its tail belong to one message, and kinds follow H (B*) T framing.
    for (int u = 0; u < unitCount; ++u) {
      const int g = arena_.base(id) + u;
      MsgId current = kInvalidMsg;
      for (int i = 0; i < arena_.size(g); ++i) {
        const Flit& f = arena_.flitAt(g, i);
        if (current == kInvalidMsg) {
          // First flit of a framing span: either a header, or the mid-drain
          // remainder of a message whose header departed earlier.
          current = f.msg;
        } else if (f.msg != current) {
          return "interleaved messages in one VC buffer at node " + std::to_string(id);
        }
        if (f.isTail()) current = kInvalidMsg;
      }
    }
  }
  return {};
}

}  // namespace swft
