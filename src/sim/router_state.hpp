// Per-router microarchitectural state (paper §2 node structure).
//
// Each router has (2n+1) input ports (2n network + injection) and (2n+1)
// output ports (2n network + ejection), V virtual channels per port, a flit
// buffer per input VC, and a crossbar that moves at most one flit per output
// physical channel per cycle (virtual channels time-multiplex the link).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/router/flit.hpp"

namespace swft {

/// One input virtual channel: buffer + routing state of the head message.
struct InputUnit {
  FlitFifo buf{4};
  bool routed = false;      // head message holds an output allocation
  std::uint8_t outPort = 0; // valid when routed
  std::uint8_t outVc = 0;   // valid when routed and outPort is a network port
};

/// All state of one router. Units are indexed unit = port * V + vc.
class RouterState {
 public:
  static constexpr int kOccWords = 5;  // supports up to 320 input units

  RouterState(int totalPorts, int networkPorts, int vcs, int bufferDepth);

  [[nodiscard]] int vcs() const noexcept { return vcs_; }
  [[nodiscard]] int unitCount() const noexcept { return static_cast<int>(units_.size()); }
  [[nodiscard]] int unitIndex(int port, int vc) const noexcept { return port * vcs_ + vc; }

  [[nodiscard]] InputUnit& unit(int idx) noexcept { return units_[idx]; }
  [[nodiscard]] const InputUnit& unit(int idx) const noexcept { return units_[idx]; }
  [[nodiscard]] InputUnit& unit(int port, int vc) noexcept {
    return units_[unitIndex(port, vc)];
  }

  /// Owner (input-unit index at this router) of a network output VC, -1 free.
  [[nodiscard]] std::int16_t outOwner(int port, int vc) const noexcept {
    return outOwner_[port * vcs_ + vc];
  }
  void setOutOwner(int port, int vc, std::int16_t owner) noexcept {
    outOwner_[port * vcs_ + vc] = owner;
  }

  // --- occupancy tracking (skip empty VCs in the per-cycle scans) ----------
  void markOccupied(int unitIdx) noexcept {
    occ_[static_cast<std::size_t>(unitIdx) >> 6] |= (1ULL << (unitIdx & 63));
  }
  void markEmpty(int unitIdx) noexcept {
    occ_[static_cast<std::size_t>(unitIdx) >> 6] &= ~(1ULL << (unitIdx & 63));
  }
  [[nodiscard]] bool anyOccupied() const noexcept {
    for (auto w : occ_)
      if (w) return true;
    return false;
  }
  [[nodiscard]] const std::array<std::uint64_t, kOccWords>& occupancy() const noexcept {
    return occ_;
  }

  /// Round-robin cursor for switch arbitration at an output port.
  [[nodiscard]] std::uint16_t cursor(int port) const noexcept { return rrCursor_[port]; }
  void setCursor(int port, std::uint16_t c) noexcept { rrCursor_[port] = c; }

 private:
  int vcs_;
  std::vector<InputUnit> units_;
  std::vector<std::int16_t> outOwner_;
  std::array<std::uint64_t, kOccWords> occ_{};
  std::vector<std::uint16_t> rrCursor_;
};

}  // namespace swft
