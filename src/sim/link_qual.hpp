// The link-candidate qualification pass shared by the sparse engine's
// batched link traversal (engine.cpp, PR 5) and the sparse-mt engine's
// parallel candidate-card precomputation (engine_mt.cpp).
//
// Since the arena keeps freshness, downstream credit and port membership as
// incrementally-maintained bitmaps (router_arena.hpp, DESIGN.md §8), the
// pass is pure word arithmetic — no per-candidate loop, no credit callable:
//
//   ok          = fresh & downOk            (fresh ⊆ occ, downOk ⊆ routed,
//                                            so no extra live AND is needed)
//   okp[port]   = ok & portMembers[port]    (SIMD sweep over the contiguous
//                                            per-port membership rows)
//   blocked     = fresh & routed & ~downOk  (optional: candidates stalled
//                                            only on credit)
//
// The mt engine consumes `blocked` at P1: its baton re-checks exactly those
// bits against virtual credits (size_ + sizeDelta_), keeping the callable
// form off the fast path. A card candidate's credit can only *improve*
// before its router's baton turn (pops by earlier routers free slots; the
// only pusher into its downstream unit is this router itself, by output-VC
// ownership), so qualified-at-snapshot candidates never need re-checking —
// see DESIGN.md §6.
//
// The pass *assigns* okp[0..ports) — callers need no zeroing prelude.
// occW == 1 configurations only (the generic multi-word path ANDs the same
// rows word-by-word in the engines).
#pragma once

#include <cassert>
#include <cstdint>

#include "src/sim/router_arena.hpp"
#include "src/util/simd.hpp"

namespace swft {

/// One pass over router `id`'s qualification bitmaps: qualified candidate
/// bits land in okp[port] (all `ports` rows assigned), and the returned mask
/// has bit `port` set iff the port has at least one qualified candidate.
/// When `blockedOut` is non-null it receives the fresh-but-credit-starved
/// candidate bits. The ejection port's downstream is the arena's credit
/// sink, whose creditOk_ bits are pinned set, so no candidate needs a
/// locality branch.
[[gnu::always_inline]] inline std::uint64_t qualifyLinkCandidates(
    const RouterArena& a, NodeId id, std::uint64_t* okp, int ports,
    std::uint64_t* blockedOut = nullptr) {
  assert(a.occWordsPerRouter() == 1);
  const std::uint64_t fresh = a.freshWords(id)[0];
  const std::uint64_t downOk = a.downOkWords(id)[0];
  const std::uint64_t ok = fresh & downOk;
  if (blockedOut != nullptr) {
    *blockedOut = fresh & a.routedWords(id)[0] & ~downOk;
  }
  return simd::qualifyPorts(ok, a.portMembers(id, 0), okp, ports);
}

}  // namespace swft
