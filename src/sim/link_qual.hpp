// The branchless link-candidate qualification pass shared by the sparse
// engine's batched link traversal (engine.cpp, PR 5) and the sparse-mt
// engine's parallel candidate-card precomputation (engine_mt.cpp).
//
// Given one router's live mask (occupied AND routed: the union of every
// output link's candidate set, occW == 1 configurations only), the pass
// qualifies each candidate — front flit arrived strictly before this cycle
// AND the downstream unit has credit — and buckets the qualified bits per
// output port. The credit probe is a callable so the two engines can plug in
// their own authority: the sparse engine reads arena sizes directly, the mt
// engine's P1 pass reads the start-of-cycle snapshot (arena sizes with all
// deltas zero) while its baton validates against virtual sizes
// (size_ + sizeDelta_).
//
// With kTrackBlocked, candidates that are fresh but credit-starved are
// reported in *blockedOut. The mt baton re-checks exactly those bits against
// virtual credits: a card candidate's credit can only *improve* before its
// router's baton turn (pops by earlier routers free slots; the only pusher
// into its downstream unit is this router itself, by output-VC ownership),
// so qualified-at-snapshot candidates never need re-checking — see
// DESIGN.md §6.
#pragma once

#include <bit>
#include <cstdint>

#include "src/sim/router_arena.hpp"

namespace swft {

/// One pass over `live` (unit bitmask, <= 64 units): qualified candidate
/// bits land in okp[port], the returned mask has bit `port` set iff the port
/// has at least one qualified candidate. `credit(port, routeWord)` must
/// return 1 when the candidate's downstream unit can accept a flit (the
/// ejection port's probe reads the arena's always-zero credit sink, so no
/// candidate needs a locality branch). okp rows [0, maxPort] must be zeroed
/// by the caller.
template <bool kTrackBlocked, typename CreditFn>
[[gnu::always_inline]] inline std::uint64_t qualifyLinkCandidates(
    std::uint64_t live, const std::uint32_t* routeRow,
    const std::uint64_t* frontArrivalRow, std::uint64_t cycle,
    std::uint64_t* okp, CreditFn&& credit,
    std::uint64_t* blockedOut = nullptr) {
  std::uint64_t pm = 0;
  std::uint64_t blocked = 0;
  std::uint64_t m = live;
  while (m != 0) {
    const int u = std::countr_zero(m);
    m &= m - 1;
    const std::uint32_t r = routeRow[u];
    const int port = RouterArena::wordOutPort(r);
    const auto fresh = static_cast<std::uint64_t>(frontArrivalRow[u] < cycle);
    const auto cred = static_cast<std::uint64_t>(credit(port, r));
    const std::uint64_t q = fresh & cred;
    okp[port] |= q << u;
    pm |= q << port;
    if constexpr (kTrackBlocked) blocked |= (fresh & (cred ^ 1u)) << u;
  }
  if constexpr (kTrackBlocked) *blockedOut = blocked;
  return pm;
}

}  // namespace swft
