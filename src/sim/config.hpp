// Simulation configuration (paper §5.1 assumptions and §5.2 parameters).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/regions.hpp"
#include "src/router/message.hpp"
#include "src/traffic/patterns.hpp"

namespace swft {

/// Cycle-engine implementation selector. `Sparse` (default) is the
/// event-sparse engine: a calendar queue for generation, active-set bitsets
/// for injection and router sweeps, contiguous arena storage. `Dense` is the
/// straightforward all-nodes reference sweep retained for equivalence
/// testing and as the "before" side of the perf baseline. `SparseMt` is the
/// domain-decomposed multithreaded variant of the sparse engine: the torus
/// is partitioned into contiguous node-id domains (`simThreads` workers)
/// with a barrier-phased cycle (DESIGN.md §6). All three produce
/// bit-identical SimResults by construction — at every thread count —
/// (see DESIGN.md); anything else is a bug.
enum class EngineKind : std::uint8_t { Sparse = 0, Dense = 1, SparseMt = 2 };

/// Declarative fault pattern: applied to a fresh FaultSet at network build.
struct FaultSpec {
  int randomNodes = 0;                  // assumption (h): random node faults
  std::vector<RegionSpec> regions;      // coalesced fault regions (Fig. 1/5)
  std::vector<NodeId> explicitNodes;    // for tests / reproducibility
  std::vector<std::array<std::uint32_t, 3>> explicitLinks;  // {node, dim, dir}

  [[nodiscard]] bool empty() const noexcept {
    return randomNodes == 0 && regions.empty() && explicitNodes.empty() &&
           explicitLinks.empty();
  }
};

struct SimConfig {
  // --- topology -------------------------------------------------------------
  int radix = 8;            // k
  int dims = 2;             // n
  // --- router ---------------------------------------------------------------
  int vcs = 4;              // V virtual channels per physical channel
  int escapeVcs = 2;        // escape pool size under adaptive routing (Duato)
  int bufferDepth = 4;      // flit buffer slots per virtual channel
  int routerDecisionTime = 0;  // Td cycles (paper experiments use 0)
  // --- workload ---------------------------------------------------------
  int messageLength = 32;   // M flits, header included (assumption (c))
  double injectionRate = 0.005;  // lambda, messages/node/cycle (assumption (a))
  TrafficPattern pattern = TrafficPattern::Uniform;
  double hotspotFraction = 0.1;  // share of traffic aimed at the hotspot node
  // --- software-based routing ------------------------------------------
  RoutingMode routing = RoutingMode::Deterministic;
  int reinjectDelay = 0;    // Delta cycles of software overhead (assumption (i))
  int livelockThreshold = 96;  // absorptions before the Valiant escalation
  // --- faults ----------------------------------------------------------
  FaultSpec faults;
  // --- measurement -----------------------------------------------------
  std::uint32_t warmupMessages = 2000;    // statistics inhibited below this seq
  std::uint32_t measuredMessages = 8000;  // stop after this many measured deliveries
  std::uint64_t maxCycles = 1'500'000;
  std::uint64_t deadlockWindow = 20'000;  // watchdog: cycles without any flit movement
  std::uint64_t seed = 1;
  // --- engine ----------------------------------------------------------
  EngineKind engine = EngineKind::Sparse;
  // Worker threads for EngineKind::SparseMt (ignored by the other engines).
  // Clamped to the node count at network build; results are bit-identical
  // at every value by construction.
  int simThreads = 1;
  // Collect per-phase wall-clock timers during the run (`phase_timers=1`,
  // `swft_bench --phase-timers`). runSimulation prints one line per engine
  // thread to stderr; Network::phaseShards() exposes them programmatically.
  // Diagnostic only — never affects simulated results, and (like engine /
  // simThreads) it is excluded from the canonical result-cache key.
  bool phaseTimers = false;

  [[nodiscard]] std::string routingName() const {
    return routing == RoutingMode::Deterministic ? "deterministic" : "adaptive";
  }
};

/// Scale presets: the paper simulates 100k messages with 10k warm-up per
/// point; `Reduced` preserves the curve shapes at ~1/10 the cost (default on
/// the single-core CI machine). Controlled by the SWFT_SCALE env variable.
enum class ScalePreset { Reduced, Paper };

ScalePreset scaleFromEnv();
void applyScale(SimConfig& cfg, ScalePreset scale);

}  // namespace swft
