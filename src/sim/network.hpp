// The simulated network: topology + faults + routers + PEs + the cycle
// engine implementing flit-level wormhole switching with Software-Based
// fault-tolerant routing (paper §4, §5).
#pragma once

#include <memory>

#include "src/fault/connectivity.hpp"
#include "src/router/message_pool.hpp"
#include "src/routing/duato.hpp"
#include "src/routing/ecube.hpp"
#include "src/routing/software_layer.hpp"
#include "src/sim/config.hpp"
#include "src/sim/node.hpp"
#include "src/sim/router_state.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/trace.hpp"
#include "src/traffic/patterns.hpp"

namespace swft {

class Network {
 public:
  explicit Network(const SimConfig& cfg);

  /// Run the full experiment: warm-up, measurement, stop conditions.
  SimResult run();

  /// Advance exactly `cycles` cycles (stepping API for tests/examples).
  void step(std::uint64_t cycles);

  /// Finalise counters into a SimResult without running further.
  [[nodiscard]] SimResult snapshot() const;

  // --- introspection (tests, examples) -------------------------------------
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const TorusTopology& topology() const noexcept { return topo_; }
  [[nodiscard]] const FaultSet& faults() const noexcept { return faults_; }
  [[nodiscard]] const SoftwareLayer& softwareLayer() const noexcept { return software_; }
  [[nodiscard]] const MessagePool& pool() const noexcept { return pool_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] std::uint64_t generated() const noexcept { return generatedTotal_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return deliveredTotal_; }
  [[nodiscard]] std::uint64_t inFlight() const noexcept { return pool_.liveCount(); }
  [[nodiscard]] bool deadlockSuspected() const noexcept { return deadlockSuspected_; }
  [[nodiscard]] const RouterState& router(NodeId id) const noexcept { return routers_[id]; }
  [[nodiscard]] const NodeState& node(NodeId id) const noexcept { return nodes_[id]; }

  /// Inject a specific message immediately (testing hook). Returns its id.
  MsgId injectTestMessage(NodeId src, NodeId dest, int length, RoutingMode mode);

  /// Attach (or detach with nullptr) a per-message event recorder. The
  /// recorder must outlive the network. Intended for tests and debugging;
  /// tracing every event is O(messages x hops) memory.
  void attachTrace(TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Validate microarchitectural invariants (occupancy bits vs buffers,
  /// output-VC ownership consistency, wormhole per-VC message contiguity,
  /// credit bounds). Returns an empty string when consistent, else a
  /// description of the first violation. O(network size); test/debug use.
  [[nodiscard]] std::string validateInvariants() const;

 private:
  // One simulation cycle: injection, route computation + VC allocation,
  // switch allocation + link traversal, ejection.
  void advanceCycle();

  void stepGeneration(NodeId id);
  void stepInjection(NodeId id);
  // Single pass per router: route computation + VC allocation for unrouted
  // headers, then switch arbitration and link traversal for routed units.
  void stepRouter(NodeId id);

  [[nodiscard]] NodeId cachedNeighbor(NodeId id, int port) const noexcept {
    return nbr_[static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
                static_cast<std::size_t>(port)];
  }
  [[nodiscard]] bool cachedWrap(NodeId id, int port) const noexcept {
    return wrapBit_[static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
                    static_cast<std::size_t>(port)] != 0;
  }

  void routeHeader(NodeId id, int unitIdx);
  void ejectFlit(NodeId id, int unitIdx);
  void finalizeEjected(NodeId id, MsgId msgId);
  void scheduleReinjection(NodeId id, MsgId msgId);
  [[nodiscard]] double sourceQueueMean() const;

  SimConfig cfg_;
  TorusTopology topo_;
  FaultSet faults_;
  VcPartition part_;
  EcubeRouting ecube_;
  DuatoRouting duato_;
  std::unique_ptr<SoftwareLayer> software0_;  // built after faults applied
  SoftwareLayer& software_;
  TrafficGenerator traffic_;
  MessagePool pool_;

  std::vector<RouterState> routers_;
  std::vector<NodeState> nodes_;
  Rng engineRng_;

  // Hot-path topology caches (one entry per node x network port).
  int networkPorts_ = 0;
  std::vector<NodeId> nbr_;
  std::vector<std::uint8_t> wrapBit_;

  TraceRecorder* trace_ = nullptr;

  // --- engine counters ------------------------------------------------------
  std::uint64_t cycle_ = 0;
  std::uint64_t lastMovementCycle_ = 0;
  std::uint32_t genSeq_ = 0;
  std::uint64_t generatedTotal_ = 0;
  std::uint64_t deliveredTotal_ = 0;
  std::uint64_t deliveredMeasured_ = 0;
  std::uint64_t deliveredInWindow_ = 0;
  std::uint64_t windowStartCycle_ = 0;
  bool windowOpen_ = false;
  std::uint64_t absorbedMessages_ = 0;  // distinct messages absorbed >= once
  LatencyTracker latency_;
  RunningStat hops_;
  bool deadlockSuspected_ = false;
  std::size_t healthyNodeCount_ = 0;
};

/// Convenience wrapper: build the network from `cfg` and run to completion.
SimResult runSimulation(const SimConfig& cfg);

}  // namespace swft
