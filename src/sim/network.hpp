// The simulated network: topology + faults + routers + PEs + the cycle
// engine implementing flit-level wormhole switching with Software-Based
// fault-tolerant routing (paper §4, §5).
//
// Two engine implementations coexist (selected by `cfg.engine`):
//
//   Sparse (engine.cpp)        — the production event-sparse engine over the
//                                contiguous RouterArena.
//   Dense  (engine_dense.cpp)  — the seed engine, kept deliberately
//                                verbatim (per-router RouterState storage,
//                                all-nodes sweep) as the reference
//                                implementation and the "before" side of
//                                bench/kernel_microbench's perf baseline.
//   SparseMt (engine_mt.cpp)   — the sparse engine domain-decomposed across
//                                `cfg.simThreads` worker threads with a
//                                barrier-phased cycle (DESIGN.md §6).
//
// All engines must produce bit-identical SimResults for identical configs —
// SparseMt at every thread count; tests/test_engine_equivalence.cpp,
// test_engine_mt.cpp and test_engine_fuzz.cpp enforce it.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/fault/connectivity.hpp"
#include "src/router/message_pool.hpp"
#include "src/routing/duato.hpp"
#include "src/routing/ecube.hpp"
#include "src/routing/software_layer.hpp"
#include "src/sim/config.hpp"
#include "src/sim/gen_calendar.hpp"
#include "src/sim/node.hpp"
#include "src/sim/router_arena.hpp"
#include "src/sim/router_state.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/trace.hpp"
#include "src/traffic/patterns.hpp"

namespace swft {

class MtEngine;

class Network {
 public:
  explicit Network(const SimConfig& cfg);
  // Out of line: ~MtEngine (joining the worker threads) needs the complete
  // type, which this header only forward-declares.
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Run the full experiment: warm-up, measurement, stop conditions.
  SimResult run();

  /// Advance exactly `cycles` cycles (stepping API for tests/examples).
  void step(std::uint64_t cycles);

  /// Finalise counters into a SimResult without running further.
  [[nodiscard]] SimResult snapshot() const;

  // --- introspection (tests, examples) -------------------------------------
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const TorusTopology& topology() const noexcept { return topo_; }
  [[nodiscard]] const FaultSet& faults() const noexcept { return faults_; }
  [[nodiscard]] const SoftwareLayer& softwareLayer() const noexcept { return software_; }
  [[nodiscard]] const MessagePool& pool() const noexcept { return pool_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] std::uint64_t generated() const noexcept { return generatedTotal_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return deliveredTotal_; }
  [[nodiscard]] std::uint64_t inFlight() const noexcept { return pool_.liveCount(); }
  [[nodiscard]] bool deadlockSuspected() const noexcept { return deadlockSuspected_; }
  [[nodiscard]] const RouterArena& arena() const noexcept { return arena_; }
  [[nodiscard]] const NodeState& node(NodeId id) const noexcept { return nodes_[id]; }

  /// Inject a specific message immediately (testing hook). Returns its id.
  MsgId injectTestMessage(NodeId src, NodeId dest, int length, RoutingMode mode);

  /// Attach (or detach with nullptr) a per-message event recorder. The
  /// recorder must outlive the network. Intended for tests and debugging;
  /// tracing every event is O(messages x hops) memory.
  void attachTrace(TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Per-engine-thread phase timers, collected when `cfg.phaseTimers` is
  /// set (empty otherwise). Slot 0 is the main/baton thread; the sparse-mt
  /// engine adds one slot per worker domain. Read only after run()/step()
  /// returns — the barrier handoff makes worker slots visible then.
  [[nodiscard]] const std::vector<PhaseBreakdown>& phaseShards() const noexcept {
    return phaseShards_;
  }

  /// Validate microarchitectural invariants (occupancy bits/counts/active
  /// set vs buffers, output-VC ownership consistency, wormhole per-VC
  /// message contiguity, injection-side work-set coverage). Returns an empty
  /// string when consistent, else a description of the first violation.
  /// O(network size); test/debug use.
  [[nodiscard]] std::string validateInvariants() const;

 private:
  friend struct NetworkTestAccess;  // white-box unit tests
  friend class MtEngine;            // the sparse-mt engine (engine_mt.cpp)

  // One simulation cycle: injection, route computation + VC allocation,
  // switch allocation + link traversal, ejection.
  void advanceCycle();
  // Reference implementation (engine_dense.cpp): the seed engine — sweep
  // every node every cycle over per-router RouterState storage.
  void advanceCycleDense();
  // Event-sparse implementation: generation calendar + active-set walks.
  void advanceCycleSparse();

  void stepGeneration(NodeId id);
  // Returns true when the node can make no injection progress until an
  // external event (queues drained, or streaming blocked on a full buffer
  // that only a router-side pop can drain), so the sparse engine can clear
  // its work bit; the event source re-arms it (generation: stepGeneration,
  // buffer drain: commitLink/ejectFlit).
  bool stepInjection(NodeId id);
  // Single pass per router: route computation + VC allocation for unrouted
  // headers, then the batched link pass (per-link switch arbitration fused
  // with the traversal commit; see engine.cpp).
  void stepRouter(NodeId id);
  // Winner commit for one network link: advance the round-robin cursor, pop
  // at the winner unit, push into the hoisted downstream unit, release the
  // route on tail departure. Force-inlined into stepRouter (its only caller)
  // so arena row pointers stay in registers across selection and commit.
  [[gnu::always_inline]] void commitLink(NodeId id, int port, int winnerIdx);

  // Seed-engine step functions over the legacy storage (engine_dense.cpp).
  void stepInjectionDense(NodeId id);
  void routeHeaderDense(NodeId id, int unitIdx);
  void stepRouterDense(NodeId id);
  void ejectFlitDense(NodeId id, int unitIdx);
  [[nodiscard]] std::string validateLegacyRouters() const;
  [[nodiscard]] std::string validateArenaRouters() const;

  [[nodiscard]] NodeId cachedNeighbor(NodeId id, int port) const noexcept {
    return nbr_[static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
                static_cast<std::size_t>(port)];
  }
  [[nodiscard]] bool cachedWrap(NodeId id, int port) const noexcept {
    return wrapBit_[static_cast<std::size_t>(id) * static_cast<std::size_t>(networkPorts_) +
                    static_cast<std::size_t>(port)] != 0;
  }

  void routeHeader(NodeId id, int unitIdx);
  // routeHeader split for the sparse-mt engine: the pure route computation
  // (safe to precompute in a parallel phase) and the mutating part (route
  // allocation + the VC-allocation RNG draw, which must run at the router's
  // dense-sweep position). routeHeader == applyRouteDecision(computeRoute).
  [[nodiscard]] RouteDecision computeRoute(const Message& msg, NodeId id) const;
  void applyRouteDecision(NodeId id, int unitIdx, MsgId msgId,
                          const RouteDecision& decision);
  [[gnu::always_inline]] void ejectFlit(NodeId id, int unitIdx);
  void finalizeEjected(NodeId id, MsgId msgId);
  void scheduleReinjection(NodeId id, MsgId msgId);
  [[nodiscard]] double sourceQueueMean() const;

  // Injection-side active set: bit per node with queued or streaming work.
  void markNodeWork(NodeId id) noexcept {
    nodeWork_[static_cast<std::size_t>(id) >> 6] |= (1ULL << (id & 63));
  }
  [[nodiscard]] bool nodeIdle(NodeId id) const noexcept {
    const NodeState& n = nodes_[id];
    return n.streaming == kInvalidMsg && n.sourceQueue.empty() && n.swQueue.empty();
  }

  SimConfig cfg_;
  TorusTopology topo_;
  FaultSet faults_;
  VcPartition part_;
  EcubeRouting ecube_;
  DuatoRouting duato_;
  std::unique_ptr<SoftwareLayer> software0_;  // built after faults applied
  SoftwareLayer& software_;
  TrafficGenerator traffic_;
  MessagePool pool_;

  RouterArena arena_;
  std::vector<RouterState> legacy_;  // populated only for EngineKind::Dense
  std::vector<NodeState> nodes_;
  Rng engineRng_;

  // Event-sparse engine state. The calendar holds every healthy node's next
  // generation cycle; nodeWork_ covers every node with injection-side work.
  // Both are conservative supersets of "nodes that will do something" —
  // visiting an idle node is a no-op in both engines, so the active sets can
  // never change results, only skip provably-dead work.
  GenCalendar calendar_;
  std::vector<std::uint64_t> nodeWork_;

  // Hot-path topology caches (one entry per node x network port).
  int networkPorts_ = 0;
  std::vector<NodeId> nbr_;
  std::vector<std::uint8_t> wrapBit_;
  // Arena base of the downstream input-port units reached through (id, port):
  // neighbor * unitsPerRouter + (port ^ 1) * vcs. Adding outVc yields the
  // downstream unit in one add — the credit check needs no multiplies. The
  // ejection port's entry is the arena's always-zero credit sink (the PE
  // always accepts), so the row exists for every port of the router.
  std::vector<std::int32_t> downBase_;

  [[nodiscard]] std::int32_t cachedDownBase(NodeId id, int port) const noexcept {
    return downBase_[static_cast<std::size_t>(id) *
                         static_cast<std::size_t>(networkPorts_ + 1) +
                     static_cast<std::size_t>(port)];
  }

  TraceRecorder* trace_ = nullptr;

  // When non-null (installed by the sparse-mt engine), trace events stage
  // into this buffer instead of hitting the recorder's hash map; the mt
  // engine flushes it FIFO while its parallel commit phase runs. Every
  // emission site must route through emitTrace so the two paths stay in
  // sync. All emission happens on the baton (main) thread.
  TraceBuffer* traceSink_ = nullptr;

  // Callers guard on trace_ != nullptr before building the event.
  void emitTrace(const TraceEvent& event) {
    if (traceSink_ != nullptr) {
      traceSink_->stage(event);
    } else {
      trace_->record(event);
    }
  }

  // Per-engine-thread phase timers; sized by the engine at construction
  // when cfg_.phaseTimers is set, never resized mid-run.
  std::vector<PhaseBreakdown> phaseShards_;

  [[nodiscard]] PhaseBreakdown* phaseShard(std::size_t slot) noexcept {
    return slot < phaseShards_.size() ? &phaseShards_[slot] : nullptr;
  }

  // When non-null (sparse-mt's ordered phase), stepInjection reports every
  // header pushed into an empty injection unit here so the mt router walk
  // can fold the new head into its precomputed route-candidate cards.
  std::vector<std::pair<NodeId, std::int32_t>>* injFoldSink_ = nullptr;

  // --- engine counters ------------------------------------------------------
  std::uint64_t cycle_ = 0;
  std::uint64_t lastMovementCycle_ = 0;
  std::uint32_t genSeq_ = 0;
  std::uint64_t generatedTotal_ = 0;
  std::uint64_t deliveredTotal_ = 0;
  std::uint64_t deliveredMeasured_ = 0;
  std::uint64_t deliveredInWindow_ = 0;
  std::uint64_t windowStartCycle_ = 0;
  bool windowOpen_ = false;
  std::uint64_t absorbedMessages_ = 0;  // distinct messages absorbed >= once
  LatencyTracker latency_;
  RunningStat hops_;
  bool deadlockSuspected_ = false;
  std::size_t healthyNodeCount_ = 0;

  // Built only for EngineKind::SparseMt. Declared last: members destroy in
  // reverse order, so the worker threads join before any state they touch
  // (arena, pool, nodes) is torn down.
  std::unique_ptr<MtEngine> mt_;
};

/// Convenience wrapper: build the network from `cfg` and run to completion.
SimResult runSimulation(const SimConfig& cfg);

}  // namespace swft
