#include "src/sim/config_parse.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace swft {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument(what); }

long long parseInt(const std::string& key, const std::string& value) {
  long long out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    fail("config: '" + key + "' expects an integer, got '" + value + "'");
  }
  return out;
}

double parseDouble(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double out = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return out;
  } catch (const std::exception&) {
    fail("config: '" + key + "' expects a number, got '" + value + "'");
  }
}

RegionShape parseShape(const std::string& name) {
  if (name == "I") return RegionShape::I;
  if (name == "II") return RegionShape::II;
  if (name == "rect") return RegionShape::Rect;
  if (name == "L") return RegionShape::L;
  if (name == "U") return RegionShape::U;
  if (name == "plus") return RegionShape::Plus;
  if (name == "T") return RegionShape::T;
  if (name == "H") return RegionShape::H;
  fail("config: unknown region shape '" + name + "'");
}

/// region value syntax: shape:E0xE1[@x,y], e.g. "U:4x3@2,2" or "rect:3x3".
RegionSpec parseRegion(const SimConfig& cfg, const std::string& value) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) fail("config: region needs 'shape:E0xE1[@x,y]'");
  RegionSpec spec;
  spec.shape = parseShape(value.substr(0, colon));
  std::string rest = value.substr(colon + 1);
  std::string anchorPart;
  if (const auto at = rest.find('@'); at != std::string::npos) {
    anchorPart = rest.substr(at + 1);
    rest = rest.substr(0, at);
  }
  const auto x = rest.find('x');
  if (x == std::string::npos) fail("config: region extents need 'E0xE1'");
  spec.extent0 = static_cast<int>(parseInt("region", rest.substr(0, x)));
  spec.extent1 = static_cast<int>(parseInt("region", rest.substr(x + 1)));
  spec.anchor.digit.resize(static_cast<std::size_t>(cfg.dims));
  for (int d = 0; d < cfg.dims; ++d) spec.anchor[d] = static_cast<std::int16_t>(1);
  if (!anchorPart.empty()) {
    std::stringstream ss(anchorPart);
    std::string digit;
    int d = 0;
    while (std::getline(ss, digit, ',') && d < cfg.dims) {
      spec.anchor[d++] = static_cast<std::int16_t>(parseInt("region anchor", digit));
    }
  }
  return spec;
}

}  // namespace

void applyConfigAssignment(SimConfig& cfg, const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos) {
    fail("config: expected key=value, got '" + assignment + "'");
  }
  const std::string key = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);

  if (key == "k") {
    cfg.radix = static_cast<int>(parseInt(key, value));
  } else if (key == "n") {
    cfg.dims = static_cast<int>(parseInt(key, value));
  } else if (key == "vcs") {
    cfg.vcs = static_cast<int>(parseInt(key, value));
  } else if (key == "escape_vcs") {
    cfg.escapeVcs = static_cast<int>(parseInt(key, value));
  } else if (key == "buffer_depth") {
    cfg.bufferDepth = static_cast<int>(parseInt(key, value));
  } else if (key == "msg_length") {
    cfg.messageLength = static_cast<int>(parseInt(key, value));
  } else if (key == "rate") {
    cfg.injectionRate = parseDouble(key, value);
  } else if (key == "delta") {
    cfg.reinjectDelay = static_cast<int>(parseInt(key, value));
  } else if (key == "td") {
    cfg.routerDecisionTime = static_cast<int>(parseInt(key, value));
  } else if (key == "nf") {
    cfg.faults.randomNodes = static_cast<int>(parseInt(key, value));
  } else if (key == "warmup") {
    cfg.warmupMessages = static_cast<std::uint32_t>(parseInt(key, value));
  } else if (key == "measured") {
    cfg.measuredMessages = static_cast<std::uint32_t>(parseInt(key, value));
  } else if (key == "max_cycles") {
    cfg.maxCycles = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "seed") {
    cfg.seed = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "livelock_threshold") {
    cfg.livelockThreshold = static_cast<int>(parseInt(key, value));
  } else if (key == "routing") {
    if (value == "det" || value == "deterministic") {
      cfg.routing = RoutingMode::Deterministic;
    } else if (value == "adaptive" || value == "adp") {
      cfg.routing = RoutingMode::Adaptive;
    } else {
      fail("config: routing must be det|adaptive, got '" + value + "'");
    }
  } else if (key == "traffic" || key == "pattern") {  // `pattern` is the legacy key
    const std::optional<TrafficPattern> p = parseTrafficPattern(value);
    if (!p) fail("config: unknown traffic pattern '" + value + "'");
    cfg.pattern = *p;
  } else if (key == "hotspot_fraction") {
    cfg.hotspotFraction = parseDouble(key, value);
    if (cfg.hotspotFraction < 0.0 || cfg.hotspotFraction > 1.0) {
      fail("config: hotspot_fraction must be in [0, 1], got '" + value + "'");
    }
  } else if (key == "engine") {
    if (value == "sparse") {
      cfg.engine = EngineKind::Sparse;
    } else if (value == "dense") {
      cfg.engine = EngineKind::Dense;
    } else if (value == "sparse-mt") {
      cfg.engine = EngineKind::SparseMt;
    } else {
      fail("config: engine must be sparse|dense|sparse-mt, got '" + value + "'");
    }
  } else if (key == "sim_threads") {
    cfg.simThreads = static_cast<int>(parseInt(key, value));
    if (cfg.simThreads < 1) {
      fail("config: sim_threads must be >= 1, got '" + value + "'");
    }
  } else if (key == "phase_timers") {
    cfg.phaseTimers = parseInt(key, value) != 0;
  } else if (key == "region") {
    cfg.faults.regions.push_back(parseRegion(cfg, value));
  } else {
    fail("config: unknown key '" + key + "'");
  }
}

SimConfig parseConfig(std::span<const std::string> assignments, const SimConfig& defaults) {
  SimConfig cfg = defaults;
  for (const std::string& a : assignments) applyConfigAssignment(cfg, a);
  return cfg;
}

std::string describeConfig(const SimConfig& cfg) {
  std::ostringstream os;
  os << cfg.radix << "-ary " << cfg.dims << "-cube, " << cfg.routingName()
     << " routing, V=" << cfg.vcs << ", M=" << cfg.messageLength
     << ", lambda=" << cfg.injectionRate << ", traffic=" << trafficPatternName(cfg.pattern);
  if (cfg.pattern == TrafficPattern::Hotspot) {
    os << " (fraction " << cfg.hotspotFraction << ")";
  }
  os << ", nf=" << cfg.faults.randomNodes;
  if (!cfg.faults.regions.empty()) {
    os << ", regions=" << cfg.faults.regions.size();
  }
  os << ", Delta=" << cfg.reinjectDelay << ", seed=" << cfg.seed;
  return os.str();
}

}  // namespace swft
