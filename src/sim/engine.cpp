// The per-cycle wormhole pipeline: generation/injection, route computation +
// virtual-channel allocation, switch allocation + link traversal, ejection.
//
// Timing model (paper assumptions (f), (g)): routing decisions take Td
// cycles (0 in all paper experiments); a flit crosses one link per cycle
// when the downstream buffer has a free slot. A flit that arrived in cycle t
// becomes eligible to depart in cycle t+1, which yields exactly one
// cycle/hop end to end.
//
// This file is the event-sparse production engine: the generation calendar
// yields only due PEs, the nodeWork_ bitset yields only PEs with
// queued/streaming messages, and the arena's active set yields only routers
// with any occupied input unit. The dense reference engine (the seed
// implementation) lives in engine_dense.cpp.
//
// The sparse walks visit exactly the nodes whose step functions would do
// observable work, in exactly the order the dense sweep visits them — so the
// two engines draw the same RNG sequences and produce bit-identical results
// (enforced by tests/test_engine_equivalence.cpp). Invariant for future
// edits: activity tracking may skip provably-dead work, never reorder or
// change live work.
#include <bit>
#include <cassert>

#include "src/sim/engine_mt.hpp"
#include "src/sim/link_qual.hpp"
#include "src/sim/network.hpp"
#include "src/util/simd.hpp"

// Per-phase wall-clock breakdown is a *runtime* option now (`phase_timers=1`
// on the swft_sim command line, `--phase-timers` on swft_bench): PhaseClock
// against Network::phaseShard(0), a no-op when the flag is off. The old
// SWFT_PHASE_TIMERS compile-time define is gone.

// Temporary event-count instrumentation (diagnostics only, off by default).
#ifdef SWFT_EVENT_COUNTS
#include <cstdio>
#include <x86intrin.h>
namespace {
struct EventCounts {
  unsigned long long cycles = 0, routers = 0, phaseAUnits = 0, livePorts = 0,
                     okIters = 0, commits = 0, ejections = 0, ejCand = 0;
  unsigned long long tPhaseA = 0, tQual = 0, tWinners = 0, tOther = 0;
  unsigned long long tPop = 0, tPush = 0, tEject = 0;
  unsigned long long tGen = 0, tInj = 0, tWalk = 0;
  ~EventCounts() {
    std::fprintf(stderr,
                 "event counts per cycle: routers %.2f phaseA %.2f livePorts "
                 "%.2f okIters %.2f commits %.2f ejCand %.2f ejections %.2f\n",
                 1.0 * routers / cycles, 1.0 * phaseAUnits / cycles,
                 1.0 * livePorts / cycles, 1.0 * okIters / cycles,
                 1.0 * commits / cycles, 1.0 * ejCand / cycles,
                 1.0 * ejections / cycles);
    std::fprintf(stderr,
                 "tsc per cycle: phaseA %.0f qual %.0f winners %.0f other %.0f "
                 "pop %.0f push %.0f eject %.0f\n",
                 1.0 * tPhaseA / cycles, 1.0 * tQual / cycles,
                 1.0 * tWinners / cycles, 1.0 * tOther / cycles,
                 1.0 * tPop / cycles, 1.0 * tPush / cycles,
                 1.0 * tEject / cycles);
    std::fprintf(stderr, "tsc per cycle: gen %.0f inj %.0f walk %.0f\n",
                 1.0 * tGen / cycles, 1.0 * tInj / cycles, 1.0 * tWalk / cycles);
  }
} g_ec;
}  // namespace
#define SWFT_EC_ADD(field, n) g_ec.field += static_cast<unsigned long long>(n)
#define SWFT_EC_TSC(field, stmt)                  \
  do {                                            \
    const unsigned long long t0_ = __rdtsc();     \
    stmt;                                         \
    g_ec.field += __rdtsc() - t0_;                \
  } while (0)
// Fine-grained (per-pop/push) pairs distort the enclosing buckets by the
// rdtsc cost; enable them separately.
#ifdef SWFT_EVENT_COUNTS_FINE
#define SWFT_EC_TSC_F(field, stmt) SWFT_EC_TSC(field, stmt)
#else
#define SWFT_EC_TSC_F(field, stmt) stmt
#endif
#else
#define SWFT_EC_ADD(field, n)
#define SWFT_EC_TSC(field, stmt) stmt
#define SWFT_EC_TSC_F(field, stmt) stmt
#endif

namespace swft {

void Network::advanceCycle() {
  if (cfg_.engine == EngineKind::Dense) {
    advanceCycleDense();
  } else if (cfg_.engine == EngineKind::SparseMt) {
    mt_->advanceCycle();
  } else {
    advanceCycleSparse();
  }
  ++cycle_;

  // Deadlock watchdog (invariant: must never fire; see tests).
  if (pool_.liveCount() > 0 && cycle_ - lastMovementCycle_ > cfg_.deadlockWindow) {
    deadlockSuspected_ = true;
  }
}

void Network::advanceCycleSparse() {
  PhaseClock clock(phaseShard(0));
  SWFT_EC_ADD(cycles, 1);
  // Phase 1a: generation, due PEs only. The calendar returns them ascending
  // by id — the order the dense sweep would reach them — so the global
  // generation sequence numbers match. Generation touches no injection
  // state of *other* nodes, so running all generations before all
  // injections is observationally identical to the dense gen/inj interleave.
  SWFT_EC_TSC(tGen, for (NodeId id : calendar_.takeDue(cycle_)) {
    stepGeneration(id);
    const std::uint64_t next = nodes_[id].nextGenCycle;
    if (next != ~std::uint64_t{0}) calendar_.schedule(id, next);
  });

  clock.mark(PhaseBreakdown::kGen);
  // Phase 1b: injection, only PEs with queued or streaming work, ascending.
  // stepInjection on a workless node is a no-op with no RNG draws, so the
  // conservative bitset (cleared lazily here) cannot change results.
  // (stepInjection never marks work on other nodes, so the SIMD skip over
  // zero words cannot miss a bit set mid-walk.)
  SWFT_EC_TSC(tInj, for (std::size_t w = simd::findNonZero(nodeWork_.data(), 0,
                                                           nodeWork_.size());
                         w < nodeWork_.size();
                         w = simd::findNonZero(nodeWork_.data(), w + 1,
                                               nodeWork_.size())) {
    std::uint64_t bits = nodeWork_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      if (stepInjection(id)) nodeWork_[w] &= ~(1ULL << b);
    }
  });

  clock.mark(PhaseBreakdown::kInj);
  // Phase 2+3: walk the live active set in the alternating sweep direction.
  // stepRouter can activate a *downstream* router mid-sweep (a flit pushed
  // into a previously-empty buffer); the dense sweep visits such a router
  // if and only if it lies later in sweep order, so the walk re-reads the
  // current word after every step instead of iterating a stale snapshot.
  // The SIMD scan to the next nonzero word is safe for the same reason the
  // per-word re-read is: a mid-sweep activation the dense sweep would visit
  // lies *later* in sweep order than the router that caused it, i.e. at or
  // after the scan position; a word skipped as zero can only have gained
  // bits the dense sweep would also skip this cycle.
  const std::vector<std::uint64_t>& active = arena_.activeWords();
  const bool forward = (cycle_ & 1) == 0;
  SWFT_EC_TSC(tWalk, if (forward) {
    for (std::size_t w = simd::findNonZero(active.data(), 0, active.size());
         w < active.size();
         w = simd::findNonZero(active.data(), w + 1, active.size())) {
      std::uint64_t bits = active[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        stepRouter(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = (b == 63) ? 0 : (active[w] & (~0ULL << (b + 1)));
      }
    }
  } else {
    for (std::size_t w = simd::findNonZeroDown(active.data(), active.size() - 1);
         w != simd::kNone;
         w = (w == 0) ? simd::kNone : simd::findNonZeroDown(active.data(), w - 1)) {
      std::uint64_t bits = active[w];
      while (bits) {
        const int b = 63 - std::countl_zero(bits);
        stepRouter(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = active[w] & ((1ULL << b) - 1);
      }
    }
  });
  // Cycle-end boundary: mature the freshness snapshots (fronts pushed this
  // cycle become eligible next cycle) after the last push/pop of the cycle.
  SWFT_EC_TSC(tOther, arena_.matureFreshness());
  clock.mark(PhaseBreakdown::kWalk);
}

void Network::stepGeneration(NodeId id) {
  NodeState& node = nodes_[id];
  while (node.nextGenCycle <= cycle_) {
    const NodeId dest = traffic_.pickDestination(id, node.rng);
    node.nextGenCycle += node.rng.geometric(cfg_.injectionRate);
    if (dest == kInvalidNode) continue;  // permutation maps to self/faulty
    const MsgId msgId = pool_.allocate();
    Message& m = pool_.get(msgId);
    m.src = id;
    m.finalDest = dest;
    m.curTarget = dest;
    m.seq = genSeq_++;
    m.genCycle = cycle_;
    m.length = static_cast<std::uint16_t>(cfg_.messageLength);
    m.mode = cfg_.routing;
    node.sourceQueue.push_back(msgId);
    markNodeWork(id);
    ++generatedTotal_;
    if (!windowOpen_ && genSeq_ >= cfg_.warmupMessages) {
      windowOpen_ = true;
      windowStartCycle_ = cycle_;
    }
  }
}

bool Network::stepInjection(NodeId id) {
  NodeState& node = nodes_[id];
  const int injPort = topo_.localPort();

  // Pick the next message to stream: absorbed messages have priority over
  // new messages (paper §4, starvation prevention). Peek, don't pop — if
  // every injection VC turns out to be busy the message must stay exactly
  // where it is, keeping its readyCycle and its absorbed-over-new priority.
  if (node.streaming == kInvalidMsg) {
    MsgId next = kInvalidMsg;
    bool fromSwQueue = false;
    if (!node.swQueue.empty() && node.swQueue.front().readyCycle <= cycle_) {
      next = node.swQueue.front().msg;
      fromSwQueue = true;
    } else if (!node.sourceQueue.empty()) {
      next = node.sourceQueue.front();
    }
    // Idle exactly when both queues are drained (a waiting reinjection
    // with a future readyCycle still counts as work).
    if (next == kInvalidMsg) return node.swQueue.empty() && node.sourceQueue.empty();
    // Choose an injection VC whose buffer is empty; rotate the start index
    // (one RNG draw, unsigned arithmetic) to spread successive messages
    // over the V injection buffers.
    const auto start = static_cast<std::uint32_t>(engineRng_.next() >> 32);
    int chosenVc = -1;
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int vc = static_cast<int>((start + static_cast<std::uint32_t>(i)) %
                                      static_cast<std::uint32_t>(cfg_.vcs));
      const int g = arena_.unitIndex(id, injPort, vc);
      if (arena_.empty(g) && !arena_.routed(g)) {
        chosenVc = vc;
        break;
      }
    }
    if (chosenVc < 0) return false;  // all injection buffers busy: retry later
    if (fromSwQueue) {
      node.swQueue.pop_front();
    } else {
      node.sourceQueue.pop_front();
    }
    node.streaming = next;
    node.streamVc = chosenVc;
    node.nextFlit = 0;
    Message& m = pool_.get(next);
    m.resetTransit();  // fresh network segment: wrap classes reset
    m.flitsEjected = 0;
    node.streamLen = m.length;  // flit kinds need no pool access per flit
    if (m.firstInjectCycle == ~std::uint64_t{0}) m.firstInjectCycle = cycle_;
  }

  // Stream one flit per cycle (injection channel bandwidth, assumption (g)).
  // The flit kind is Message::flitKindAt over the cached stream length, so
  // body/tail flits touch no pool state at all.
  const int unitIdx = arena_.unitIndex(id, injPort, node.streamVc);
  // Blocked on a full injection buffer: park the node (no RNG is drawn on
  // this path, so skipping the retry calls is invisible to the dense
  // reference). Any pop of an injection unit re-arms the work bit — see
  // commitLink/ejectFlit — and a full buffer that is never popped blocks
  // the dense engine's retries just the same.
  if (arena_.full(unitIdx)) return true;
  const int idx = node.nextFlit;
  const int len = node.streamLen;
  Flit f;
  f.msg = node.streaming;
  f.kind = len == 1            ? FlitKind::HeaderTail
           : idx == 0          ? FlitKind::Header
           : idx == len - 1    ? FlitKind::Tail
                               : FlitKind::Body;
  arena_.push(id, unitIdx, f, cycle_);
  lastMovementCycle_ = cycle_;
  // Headers stream only into empty units (the VC chooser above requires
  // emptiness), so idx == 0 is exactly "a new head appeared" — what the
  // sparse-mt walk needs to fold into its precomputed candidate cards.
  if (injFoldSink_ != nullptr && idx == 0) {
    injFoldSink_->emplace_back(id, static_cast<std::int32_t>(unitIdx));
  }
  if (trace_ != nullptr && idx == 0) {
    const Message& m = pool_.get(node.streaming);
    emitTrace({m.absorptions > 0 ? TraceEvent::Kind::Reinject
                                 : TraceEvent::Kind::Inject,
               cycle_, id, 0, m.seq});
  }
  ++node.nextFlit;
  if (f.isTail()) {
    node.streaming = kInvalidMsg;
    node.streamVc = -1;
    return node.swQueue.empty() && node.sourceQueue.empty();
  }
  return false;
}

void Network::routeHeader(NodeId id, int unitIdx) {
  const MsgId msgId = arena_.front(arena_.base(id) + unitIdx).msg;
  applyRouteDecision(id, unitIdx, msgId, computeRoute(pool_.get(msgId), id));
}

RouteDecision Network::computeRoute(const Message& msg, NodeId id) const {
  // Pure: routing functions take the message and network state by const
  // reference and draw no RNG, which is what lets the sparse-mt engine
  // precompute decisions in its parallel phase (DESIGN.md §6).
  if (msg.curTarget == id) return RouteDecision::deliver();
  if (msg.mode == RoutingMode::Adaptive) return duato_.route(msg, id, faults_, part_);
  return ecube_.route(msg, id, faults_, part_);
}

void Network::applyRouteDecision(NodeId id, int unitIdx, MsgId msgId,
                                 const RouteDecision& decision) {
  switch (decision.kind) {
    case RouteDecision::Kind::Deliver:
      arena_.allocateRoute(id, unitIdx, topo_.localPort(), 0,
                           cachedDownBase(id, topo_.localPort()));
      return;
    case RouteDecision::Kind::Absorb: {
      // The required outgoing channel leads to a fault: eject here and hand
      // the message to the messaging layer (assumption (i)).
      Message& msg = pool_.get(msgId);
      msg.blockedValid = true;
      msg.blockedDim = decision.blockedDim;
      msg.blockedDirStep = decision.blockedDirStep;
      arena_.allocateRoute(id, unitIdx, topo_.localPort(), 0,
                           cachedDownBase(id, topo_.localPort()));
      return;
    }
    case RouteDecision::Kind::Forward:
      break;
  }

  // Virtual-channel allocation: collect free output VCs over all candidates
  // and pick one at random (assumption (e): "chooses randomly one of the
  // available virtual channels ... that brings it closer to its destination").
  // The per-port free-VC bitmask mirrors outOwner state, so one AND replaces
  // the per-VC owner probes; bit iteration visits VCs in ascending order,
  // matching the dense reference's scan (and hence its RNG draw) exactly.
  InlineVector<std::uint16_t, 128> free;  // encoded port * 16 + vc
  for (const RouteCandidate& cand : decision.candidates) {
    std::uint32_t avail = cand.vcs & arena_.freeVcMask(id, cand.outPort);
    while (avail != 0 && free.size() < free.capacity()) {
      const int vc = std::countr_zero(avail);
      avail &= avail - 1;
      free.push_back(static_cast<std::uint16_t>(cand.outPort * 16 + vc));
    }
    if (free.size() == free.capacity()) break;
  }
  if (free.empty()) return;  // all admissible VCs busy: retry next cycle
  const std::uint16_t pick =
      free[engineRng_.uniform(static_cast<std::uint32_t>(free.size()))];
  const int outPort = pick / 16;
  const int outVc = pick % 16;
  arena_.allocateRoute(id, unitIdx, outPort, outVc,
                       cachedDownBase(id, outPort) + outVc);
  arena_.setOutOwner(id, outPort, outVc, static_cast<std::int16_t>(unitIdx));
}

void Network::stepRouter(NodeId id) {
  SWFT_EC_ADD(routers, 1);
  const int localPort = networkPorts_;
  const auto td = static_cast<std::uint64_t>(cfg_.routerDecisionTime);
  const int routerBase = arena_.base(id);
  const int occW = arena_.occWordsPerRouter();
  const std::uint64_t* occ = arena_.occWords(id);

  // Phase A: route computation + VC allocation for occupied unrouted heads,
  // in ascending unit order. This is the only RNG-drawing part of a router
  // step, so the order must match the dense reference scan exactly.
  const std::uint64_t* routedW = arena_.routedWords(id);
  SWFT_EC_TSC(tPhaseA, {
    for (int w = 0; w < occW; ++w) {
      std::uint64_t bits = occ[w] & ~routedW[w];
      while (bits) {
        const int unitIdx = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const int g = routerBase + unitIdx;
        SWFT_EC_ADD(phaseAUnits, 1);
        if (!arena_.front(g).isHeader()) continue;
        if (td != 0 && arena_.frontArrival(g) + td > cycle_) continue;  // Td model
        routeHeader(id, unitIdx);
      }
    }
  });

  // Phase B: the batched link pass. One pass per output link, ascending port
  // order with the ejection port last: the link's candidate set is a single
  // request-mask word ANDed with the occupancy word, its downstream credit
  // line is hoisted once (the V downstream buffer sizes are contiguous
  // uint16s), and the first eligible candidate in circular round-robin order
  // from the port cursor — exactly the min-key winner of the dense
  // reference's full scan — commits immediately.
  //
  // Fusing selection and commit per link is legal because links of one
  // router cannot interfere: a commit on port p pops a unit that requests
  // only p (route words are per-unit), pushes into neighbor(id, p)'s input
  // port p^1 while port q's credit line lives at neighbor(id, q)'s input
  // port q^1 (distinct unless p == q, even when both ports reach the same
  // neighbor on a radix-2 ring), and cursors are per-port. Hence every
  // eligibility probe reads exactly the state the dense engine's
  // select-all-then-commit pass would read. The ejection port commits last
  // so software-layer RNG draws (absorption replanning) stay in the dense
  // engine's position in the stream.
  if (occW == 1) {
    // Every router configuration with <= 64 input units. Qualification is
    // three row loads and two word ANDs against the arena's incrementally
    // maintained bitmaps — ok = fresh & downOk (freshness and mapped
    // downstream credit, each a superset-pruned subset of live), bucketed
    // per output port by the SIMD membership sweep. Reading all
    // qualifications from pre-commit state is legal by the non-interference
    // argument above: no commit on port p changes port q's candidates, their
    // arrival stamps, or their downstream credit line. occW == 1 bounds the
    // unit count by 64 and hence the port count by 64 / vcs. The pass lives
    // in link_qual.hpp, shared with the sparse-mt engine's P1
    // precomputation, and owns the okp rows outright (no zeroing prelude).
    std::uint64_t okp[64];
    std::uint64_t pm;
    SWFT_EC_TSC(tQual,
                pm = qualifyLinkCandidates(arena_, id, okp, localPort + 1));
    SWFT_EC_ADD(okIters, std::popcount(occ[0] & routedW[0]));
    // Commit winners in ascending port order, ejection (the highest port)
    // last. Per port, the first qualified bit in circular round-robin order
    // from the cursor is picked with one rotate: rotr moves bit u to
    // (u - cur) mod 64, so the lowest rotated bit is exactly the min-key
    // winner of the dense reference's scan.
    const int unitCount = arena_.unitsPerRouter();
    SWFT_EC_TSC(tWinners, while (pm != 0) {
      SWFT_EC_ADD(livePorts, 1);
      const int port = std::countr_zero(pm);
      pm &= pm - 1;
      const int cur = arena_.cursor(id, port);
      const std::uint64_t rot = std::rotr(okp[port], cur);
      const int winnerIdx = (cur + std::countr_zero(rot)) & 63;
      if (port == localPort) {
        arena_.setCursor(id, port,
                         static_cast<std::uint16_t>(
                             winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
        SWFT_EC_ADD(ejections, 1);
        SWFT_EC_TSC_F(tEject, ejectFlit(id, winnerIdx));
      } else {
        SWFT_EC_ADD(commits, 1);
        commitLink(id, port, winnerIdx);
      }
    });
    return;
  }

  // Generic multi-word path (routers with more than 64 input units, e.g. a
  // 3-cube with V = 10): same per-link batching, candidate words walked
  // circularly from the cursor word, qualified by the same bitmap ANDs as
  // the one-word fast path (fresh & downOk; membership plays the role of
  // the request mask).
  const int unitCount = arena_.unitsPerRouter();
  const std::uint64_t* freshW = arena_.freshWords(id);
  const std::uint64_t* downOkW = arena_.downOkWords(id);
  for (int port = 0; port <= localPort; ++port) {
    const std::uint64_t* req = arena_.portMembers(id, port);
    const bool isLocal = port == localPort;
    const int cur = arena_.cursor(id, port);
    const int cw = cur >> 6;
    const int cb = cur & 63;
    int winnerIdx = -1;
    for (int k = 0; k <= occW && winnerIdx < 0; ++k) {
      int w = cw + k;
      if (w >= occW) w -= occW;
      std::uint64_t m = req[w] & freshW[w] & downOkW[w];
      if (k == 0) {
        m &= ~0ULL << cb;
      } else if (k == occW) {
        m &= (cb == 0) ? 0 : ((1ULL << cb) - 1);  // wrapped tail of cursor word
      }
      if (m != 0) winnerIdx = w * 64 + std::countr_zero(m);
    }
    if (winnerIdx < 0) continue;
    if (isLocal) {
      arena_.setCursor(id, port,
                       static_cast<std::uint16_t>(
                           winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
      ejectFlit(id, winnerIdx);
    } else {
      commitLink(id, port, winnerIdx);
    }
  }
}

inline void Network::commitLink(NodeId id, int port, int winnerIdx) {
  const int unitCount = arena_.unitsPerRouter();
  arena_.setCursor(id, port,
                   static_cast<std::uint16_t>(
                       winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
  const int g = arena_.base(id) + winnerIdx;
  const int outVc = arena_.outVc(g);
  Flit flit;
  SWFT_EC_TSC_F(tPop, flit = arena_.pop(id, g, cycle_));
  lastMovementCycle_ = cycle_;
  // Draining an injection unit re-arms the owning PE: it may have been
  // parked by stepInjection while this buffer was full.
  if (winnerIdx >= networkPorts_ * cfg_.vcs) markNodeWork(id);

  // Only headers touch Message state on a link traversal: body/tail flits
  // skip the (random-access) pool load entirely.
  if (flit.isHeader()) {
    Message& msg = pool_.get(flit.msg);
    ++msg.hops;
    if (cachedWrap(id, port)) msg.setWrapped(dimOfPort(port));
    if (trace_ != nullptr) {
      emitTrace({TraceEvent::Kind::Hop, cycle_, id,
                 static_cast<std::uint8_t>(port), msg.seq});
    }
  }
  SWFT_EC_TSC_F(tPush, arena_.push(cachedNeighbor(id, port),
                                 cachedDownBase(id, port) + outVc, flit,
                                 cycle_));

  if (flit.isTail()) {
    arena_.releaseRoute(id, winnerIdx);
    arena_.setOutOwner(id, port, outVc, -1);
  }
}

inline void Network::ejectFlit(NodeId id, int unitIdx) {
  const int g = arena_.base(id) + unitIdx;
  const Flit flit = arena_.pop(id, g, cycle_);
  lastMovementCycle_ = cycle_;
  // Self-absorbed traffic can eject straight out of an injection unit; the
  // drain re-arms the owning PE just as a link traversal would.
  if (unitIdx >= networkPorts_ * cfg_.vcs) markNodeWork(id);

#ifndef NDEBUG
  // flitsEjected feeds only the partial-ejection assert in finalizeEjected;
  // body/tail ejections need no pool access in release builds.
  ++pool_.get(flit.msg).flitsEjected;
#endif
  if (flit.isTail()) {
    arena_.releaseRoute(id, unitIdx);
    finalizeEjected(id, flit.msg);
  }
}

void Network::finalizeEjected(NodeId id, MsgId msgId) {
  Message& msg = pool_.get(msgId);
  assert(msg.flitsEjected == msg.length && "partial message ejected");

  const bool software = msg.blockedValid || (msg.absorbAtTarget && msg.curTarget == id);
  if (trace_ != nullptr) {
    emitTrace({software ? TraceEvent::Kind::Absorb : TraceEvent::Kind::Deliver,
               cycle_, id, 0, msg.seq});
  }
  if (!software) {
    // Final delivery: the last data flit reached the destination PE.
    assert(id == msg.finalDest);
    ++deliveredTotal_;
    if (windowOpen_) ++deliveredInWindow_;
    if (msg.seq >= cfg_.warmupMessages) {
      ++deliveredMeasured_;
      latency_.add(static_cast<double>(cycle_ - msg.genCycle));
      hops_.add(static_cast<double>(msg.hops));
    }
    pool_.release(msgId);
    return;
  }

  // Software absorption: the messaging layer rewrites the header and queues
  // the message for re-injection after Δ cycles (assumption (i)).
  if (msg.absorptions == 0) ++absorbedMessages_;
  software_.planReroute(msg, id, engineRng_);
  scheduleReinjection(id, msgId);
}

void Network::scheduleReinjection(NodeId id, MsgId msgId) {
  nodes_[id].swQueue.push_back(
      PendingReinjection{msgId, cycle_ + static_cast<std::uint64_t>(cfg_.reinjectDelay)});
  markNodeWork(id);
}

}  // namespace swft
