// The per-cycle wormhole pipeline: generation/injection, route computation +
// virtual-channel allocation, switch allocation + link traversal, ejection.
//
// Timing model (paper assumptions (f), (g)): routing decisions take Td
// cycles (0 in all paper experiments); a flit crosses one link per cycle
// when the downstream buffer has a free slot. A flit that arrived in cycle t
// becomes eligible to depart in cycle t+1, which yields exactly one
// cycle/hop end to end.
//
// This file is the event-sparse production engine: the generation calendar
// yields only due PEs, the nodeWork_ bitset yields only PEs with
// queued/streaming messages, and the arena's active set yields only routers
// with any occupied input unit. The dense reference engine (the seed
// implementation) lives in engine_dense.cpp.
//
// The sparse walks visit exactly the nodes whose step functions would do
// observable work, in exactly the order the dense sweep visits them — so the
// two engines draw the same RNG sequences and produce bit-identical results
// (enforced by tests/test_engine_equivalence.cpp). Invariant for future
// edits: activity tracking may skip provably-dead work, never reorder or
// change live work.
#include <bit>
#include <cassert>

#include "src/sim/network.hpp"

namespace swft {

void Network::advanceCycle() {
  if (cfg_.engine == EngineKind::Dense) {
    advanceCycleDense();
  } else {
    advanceCycleSparse();
  }
  ++cycle_;

  // Deadlock watchdog (invariant: must never fire; see tests).
  if (pool_.liveCount() > 0 && cycle_ - lastMovementCycle_ > cfg_.deadlockWindow) {
    deadlockSuspected_ = true;
  }
}

void Network::advanceCycleSparse() {
  // Phase 1a: generation, due PEs only. The calendar returns them ascending
  // by id — the order the dense sweep would reach them — so the global
  // generation sequence numbers match. Generation touches no injection
  // state of *other* nodes, so running all generations before all
  // injections is observationally identical to the dense gen/inj interleave.
  for (NodeId id : calendar_.takeDue(cycle_)) {
    stepGeneration(id);
    const std::uint64_t next = nodes_[id].nextGenCycle;
    if (next != ~std::uint64_t{0}) calendar_.schedule(id, next);
  }

  // Phase 1b: injection, only PEs with queued or streaming work, ascending.
  // stepInjection on a workless node is a no-op with no RNG draws, so the
  // conservative bitset (cleared lazily here) cannot change results.
  for (std::size_t w = 0; w < nodeWork_.size(); ++w) {
    std::uint64_t bits = nodeWork_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const auto id = static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b));
      if (stepInjection(id)) nodeWork_[w] &= ~(1ULL << b);
    }
  }

  // Phase 2+3: walk the live active set in the alternating sweep direction.
  // stepRouter can activate a *downstream* router mid-sweep (a flit pushed
  // into a previously-empty buffer); the dense sweep visits such a router
  // if and only if it lies later in sweep order, so the walk re-reads the
  // current word after every step instead of iterating a stale snapshot.
  const std::vector<std::uint64_t>& active = arena_.activeWords();
  const bool forward = (cycle_ & 1) == 0;
  if (forward) {
    for (std::size_t w = 0; w < active.size(); ++w) {
      std::uint64_t bits = active[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        stepRouter(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = (b == 63) ? 0 : (active[w] & (~0ULL << (b + 1)));
      }
    }
  } else {
    for (std::size_t w = active.size(); w-- > 0;) {
      std::uint64_t bits = active[w];
      while (bits) {
        const int b = 63 - std::countl_zero(bits);
        stepRouter(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits = active[w] & ((1ULL << b) - 1);
      }
    }
  }
}

void Network::stepGeneration(NodeId id) {
  NodeState& node = nodes_[id];
  while (node.nextGenCycle <= cycle_) {
    const NodeId dest = traffic_.pickDestination(id, node.rng);
    node.nextGenCycle += node.rng.geometric(cfg_.injectionRate);
    if (dest == kInvalidNode) continue;  // permutation maps to self/faulty
    const MsgId msgId = pool_.allocate();
    Message& m = pool_.get(msgId);
    m.src = id;
    m.finalDest = dest;
    m.curTarget = dest;
    m.seq = genSeq_++;
    m.genCycle = cycle_;
    m.length = static_cast<std::uint16_t>(cfg_.messageLength);
    m.mode = cfg_.routing;
    node.sourceQueue.push_back(msgId);
    markNodeWork(id);
    ++generatedTotal_;
    if (!windowOpen_ && genSeq_ >= cfg_.warmupMessages) {
      windowOpen_ = true;
      windowStartCycle_ = cycle_;
    }
  }
}

bool Network::stepInjection(NodeId id) {
  NodeState& node = nodes_[id];
  const int injPort = topo_.localPort();

  // Pick the next message to stream: absorbed messages have priority over
  // new messages (paper §4, starvation prevention). Peek, don't pop — if
  // every injection VC turns out to be busy the message must stay exactly
  // where it is, keeping its readyCycle and its absorbed-over-new priority.
  if (node.streaming == kInvalidMsg) {
    MsgId next = kInvalidMsg;
    bool fromSwQueue = false;
    if (!node.swQueue.empty() && node.swQueue.front().readyCycle <= cycle_) {
      next = node.swQueue.front().msg;
      fromSwQueue = true;
    } else if (!node.sourceQueue.empty()) {
      next = node.sourceQueue.front();
    }
    // Idle exactly when both queues are drained (a waiting reinjection
    // with a future readyCycle still counts as work).
    if (next == kInvalidMsg) return node.swQueue.empty() && node.sourceQueue.empty();
    // Choose an injection VC whose buffer is empty; rotate the start index
    // (one RNG draw, unsigned arithmetic) to spread successive messages
    // over the V injection buffers.
    const auto start = static_cast<std::uint32_t>(engineRng_.next() >> 32);
    int chosenVc = -1;
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int vc = static_cast<int>((start + static_cast<std::uint32_t>(i)) %
                                      static_cast<std::uint32_t>(cfg_.vcs));
      const int g = arena_.unitIndex(id, injPort, vc);
      if (arena_.empty(g) && !arena_.routed(g)) {
        chosenVc = vc;
        break;
      }
    }
    if (chosenVc < 0) return false;  // all injection buffers busy: retry later
    if (fromSwQueue) {
      node.swQueue.pop_front();
    } else {
      node.sourceQueue.pop_front();
    }
    node.streaming = next;
    node.streamVc = chosenVc;
    node.nextFlit = 0;
    Message& m = pool_.get(next);
    m.resetTransit();  // fresh network segment: wrap classes reset
    m.flitsEjected = 0;
    if (m.firstInjectCycle == ~std::uint64_t{0}) m.firstInjectCycle = cycle_;
  }

  // Stream one flit per cycle (injection channel bandwidth, assumption (g)).
  const int unitIdx = arena_.unitIndex(id, injPort, node.streamVc);
  if (arena_.full(unitIdx)) return false;
  Message& m = pool_.get(node.streaming);
  Flit f;
  f.msg = node.streaming;
  f.kind = m.flitKindAt(node.nextFlit);
  arena_.push(id, unitIdx, f, cycle_);
  lastMovementCycle_ = cycle_;
  if (trace_ != nullptr && node.nextFlit == 0) {
    trace_->record({m.absorptions > 0 ? TraceEvent::Kind::Reinject
                                      : TraceEvent::Kind::Inject,
                    cycle_, id, 0, m.seq});
  }
  ++node.nextFlit;
  if (f.isTail()) {
    node.streaming = kInvalidMsg;
    node.streamVc = -1;
    return node.swQueue.empty() && node.sourceQueue.empty();
  }
  return false;
}

void Network::routeHeader(NodeId id, int unitIdx) {
  const int g = arena_.base(id) + unitIdx;
  Message& msg = pool_.get(arena_.front(g).msg);

  RouteDecision decision;
  if (msg.curTarget == id) {
    decision = RouteDecision::deliver();
  } else if (msg.mode == RoutingMode::Adaptive) {
    decision = duato_.route(msg, id, faults_, part_);
  } else {
    decision = ecube_.route(msg, id, faults_, part_);
  }

  switch (decision.kind) {
    case RouteDecision::Kind::Deliver:
      arena_.allocateRoute(id, unitIdx, topo_.localPort(), 0);
      return;
    case RouteDecision::Kind::Absorb:
      // The required outgoing channel leads to a fault: eject here and hand
      // the message to the messaging layer (assumption (i)).
      msg.blockedValid = true;
      msg.blockedDim = decision.blockedDim;
      msg.blockedDirStep = decision.blockedDirStep;
      arena_.allocateRoute(id, unitIdx, topo_.localPort(), 0);
      return;
    case RouteDecision::Kind::Forward:
      break;
  }

  // Virtual-channel allocation: collect free output VCs over all candidates
  // and pick one at random (assumption (e): "chooses randomly one of the
  // available virtual channels ... that brings it closer to its destination").
  InlineVector<std::uint16_t, 128> free;  // encoded port * 16 + vc
  for (const RouteCandidate& cand : decision.candidates) {
    if (free.size() == free.capacity()) break;
    for (int vc = 0; vc < cfg_.vcs; ++vc) {
      if (!(cand.vcs & (1u << vc))) continue;
      if (arena_.outOwner(id, cand.outPort, vc) >= 0) continue;
      free.push_back(static_cast<std::uint16_t>(cand.outPort * 16 + vc));
      if (free.size() == free.capacity()) break;
    }
  }
  if (free.empty()) return;  // all admissible VCs busy: retry next cycle
  const std::uint16_t pick =
      free[engineRng_.uniform(static_cast<std::uint32_t>(free.size()))];
  const int outPort = pick / 16;
  const int outVc = pick % 16;
  arena_.allocateRoute(id, unitIdx, outPort, outVc);
  arena_.setOutOwner(id, outPort, outVc, static_cast<std::int16_t>(unitIdx));
}

void Network::stepRouter(NodeId id) {
  const int ports = topo_.totalPorts();
  const int localPort = topo_.localPort();
  const auto td = static_cast<std::uint64_t>(cfg_.routerDecisionTime);
  const int routerBase = arena_.base(id);
  const int unitCount = arena_.unitsPerRouter();
  const int occW = arena_.occWordsPerRouter();
  const std::uint64_t* occ = arena_.occWords(id);

  // Phase A: route computation + VC allocation for occupied unrouted heads,
  // in ascending unit order. This is the only RNG-drawing part of a router
  // step, so the order must match the dense reference scan exactly.
  {
    const std::uint64_t* routedW = arena_.routedWords(id);
    for (int w = 0; w < occW; ++w) {
      std::uint64_t bits = occ[w] & ~routedW[w];
      while (bits) {
        const int unitIdx = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const int g = routerBase + unitIdx;
        if (!arena_.front(g).isHeader()) continue;
        if (arena_.frontArrival(g) + td > cycle_) continue;  // Td model
        routeHeader(id, unitIdx);
      }
    }
  }

  // Phase B winner selection: per output port, the first *eligible*
  // requester (front flit arrived before this cycle, downstream credit
  // available) in circular round-robin order from the port cursor — exactly
  // the min-key winner of the dense reference's full scan. Two strategies
  // pick the same winners: nearly-empty routers scan their few occupied
  // units directly; busy routers walk the per-port request masks so the
  // cost is O(requesters probed), not O(occupied units).
  InlineVector<std::int16_t, 2 * kMaxDims + 1> winner;
  winner.resize(static_cast<std::size_t>(ports), -1);
  const auto eligible = [&](int unitIdx, int port) -> bool {
    const int g = routerBase + unitIdx;
    if (arena_.frontArrival(g) >= cycle_) return false;  // arrived this cycle
    if (port != localPort &&
        arena_.full(cachedDownBase(id, port) +
                    RouterArena::wordOutVc(arena_.routeWord(g)))) {
      return false;  // no downstream credit
    }
    return true;
  };

  if (arena_.occupiedUnits(id) < ports) {
    // Sparse router: one pass over the few occupied units, min round-robin
    // key per port.
    InlineVector<std::int16_t, 2 * kMaxDims + 1> winnerKey;
    winnerKey.resize(static_cast<std::size_t>(ports), std::int16_t{0x7FFF});
    const std::uint64_t* routedW = arena_.routedWords(id);
    for (int w = 0; w < occW; ++w) {
      std::uint64_t bits = occ[w] & routedW[w];
      while (bits) {
        const int unitIdx = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const int port =
            RouterArena::wordOutPort(arena_.routeWord(routerBase + unitIdx));
        if (!eligible(unitIdx, port)) continue;
        int key = unitIdx - arena_.cursor(id, port);
        if (key < 0) key += unitCount;
        if (key < winnerKey[static_cast<std::size_t>(port)]) {
          winnerKey[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(key);
          winner[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(unitIdx);
        }
      }
    }
  } else {
    for (int port = 0; port < ports; ++port) {
      const std::uint64_t* req = arena_.requestWords(id, port);
      const int cur = arena_.cursor(id, port);
      const int cw = cur >> 6;
      const int cb = cur & 63;
      for (int k = 0; k <= occW && winner[static_cast<std::size_t>(port)] < 0; ++k) {
        int w = cw + k;
        if (w >= occW) w -= occW;
        std::uint64_t m = req[w] & occ[w];
        if (k == 0) {
          m &= ~0ULL << cb;
        } else if (k == occW) {
          m &= (cb == 0) ? 0 : ((1ULL << cb) - 1);  // wrapped tail of cursor word
        }
        while (m) {
          const int unitIdx = w * 64 + std::countr_zero(m);
          m &= m - 1;
          if (!eligible(unitIdx, port)) continue;
          winner[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(unitIdx);
          break;
        }
      }
    }
  }

  // Commit pass: switch traversal for each port's winner, ejection port
  // last so software-layer RNG draws (absorption replanning) stay in the
  // dense engine's position in the stream.
  for (int port = 0; port < ports; ++port) {
    const int winnerIdx = winner[static_cast<std::size_t>(port)];
    if (winnerIdx < 0) continue;
    arena_.setCursor(id, port,
                     static_cast<std::uint16_t>(
                         winnerIdx + 1 == unitCount ? 0 : winnerIdx + 1));
    if (port == localPort) {
      ejectFlit(id, winnerIdx);
      continue;
    }
    const int g = routerBase + winnerIdx;
    const int outVc = arena_.outVc(g);
    const Flit flit = arena_.pop(id, g);
    lastMovementCycle_ = cycle_;

    // Only headers touch Message state on a link traversal: body/tail flits
    // skip the (random-access) pool load entirely.
    if (flit.isHeader()) {
      Message& msg = pool_.get(flit.msg);
      ++msg.hops;
      if (cachedWrap(id, port)) msg.setWrapped(dimOfPort(port));
      if (trace_ != nullptr) {
        trace_->record({TraceEvent::Kind::Hop, cycle_, id,
                        static_cast<std::uint8_t>(port), msg.seq});
      }
    }
    arena_.push(cachedNeighbor(id, port), cachedDownBase(id, port) + outVc, flit,
                cycle_);

    if (flit.isTail()) {
      arena_.releaseRoute(id, winnerIdx);
      arena_.setOutOwner(id, port, outVc, -1);
    }
  }
}

void Network::ejectFlit(NodeId id, int unitIdx) {
  const int g = arena_.base(id) + unitIdx;
  const Flit flit = arena_.pop(id, g);
  lastMovementCycle_ = cycle_;

  Message& msg = pool_.get(flit.msg);
  ++msg.flitsEjected;
  if (flit.isTail()) {
    arena_.releaseRoute(id, unitIdx);
    finalizeEjected(id, flit.msg);
  }
}

void Network::finalizeEjected(NodeId id, MsgId msgId) {
  Message& msg = pool_.get(msgId);
  assert(msg.flitsEjected == msg.length && "partial message ejected");

  const bool software = msg.blockedValid || (msg.absorbAtTarget && msg.curTarget == id);
  if (trace_ != nullptr) {
    trace_->record({software ? TraceEvent::Kind::Absorb : TraceEvent::Kind::Deliver,
                    cycle_, id, 0, msg.seq});
  }
  if (!software) {
    // Final delivery: the last data flit reached the destination PE.
    assert(id == msg.finalDest);
    ++deliveredTotal_;
    if (windowOpen_) ++deliveredInWindow_;
    if (msg.seq >= cfg_.warmupMessages) {
      ++deliveredMeasured_;
      latency_.add(static_cast<double>(cycle_ - msg.genCycle));
      hops_.add(static_cast<double>(msg.hops));
    }
    pool_.release(msgId);
    return;
  }

  // Software absorption: the messaging layer rewrites the header and queues
  // the message for re-injection after Δ cycles (assumption (i)).
  if (msg.absorptions == 0) ++absorbedMessages_;
  software_.planReroute(msg, id, engineRng_);
  scheduleReinjection(id, msgId);
}

void Network::scheduleReinjection(NodeId id, MsgId msgId) {
  nodes_[id].swQueue.push_back(
      PendingReinjection{msgId, cycle_ + static_cast<std::uint64_t>(cfg_.reinjectDelay)});
  markNodeWork(id);
}

}  // namespace swft
