// The per-cycle wormhole pipeline: generation/injection, route computation +
// virtual-channel allocation, switch allocation + link traversal, ejection.
//
// Timing model (paper assumptions (f), (g)): routing decisions take Td
// cycles (0 in all paper experiments); a flit crosses one link per cycle
// when the downstream buffer has a free slot. A flit that arrived in cycle t
// becomes eligible to depart in cycle t+1, which yields exactly one
// cycle/hop end to end.
#include <bit>
#include <cassert>

#include "src/sim/network.hpp"

namespace swft {

void Network::advanceCycle() {
  // Phase 1: PEs generate traffic and stream flits into injection VCs.
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    stepGeneration(id);
    stepInjection(id);
  }

  // Phase 2+3 per router. Alternate the sweep direction each cycle so the
  // single-pass commit semantics do not systematically favour low ids.
  const bool forward = (cycle_ & 1) == 0;
  const auto n = static_cast<std::int64_t>(topo_.nodeCount());
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(forward ? i : n - 1 - i);
    if (!routers_[id].anyOccupied()) continue;
    stepRouter(id);
  }

  ++cycle_;

  // Deadlock watchdog (invariant: must never fire; see tests).
  if (pool_.liveCount() > 0 && cycle_ - lastMovementCycle_ > cfg_.deadlockWindow) {
    deadlockSuspected_ = true;
  }
}

void Network::stepGeneration(NodeId id) {
  NodeState& node = nodes_[id];
  while (node.nextGenCycle <= cycle_) {
    const NodeId dest = traffic_.pickDestination(id, node.rng);
    node.nextGenCycle += node.rng.geometric(cfg_.injectionRate);
    if (dest == kInvalidNode) continue;  // permutation maps to self/faulty
    const MsgId msgId = pool_.allocate();
    Message& m = pool_.get(msgId);
    m.src = id;
    m.finalDest = dest;
    m.curTarget = dest;
    m.seq = genSeq_++;
    m.genCycle = cycle_;
    m.length = static_cast<std::uint16_t>(cfg_.messageLength);
    m.mode = cfg_.routing;
    node.sourceQueue.push_back(msgId);
    ++generatedTotal_;
    if (!windowOpen_ && genSeq_ >= cfg_.warmupMessages) {
      windowOpen_ = true;
      windowStartCycle_ = cycle_;
    }
  }
}

void Network::stepInjection(NodeId id) {
  NodeState& node = nodes_[id];
  RouterState& router = routers_[id];
  const int injPort = topo_.localPort();

  // Pick the next message to stream: absorbed messages have priority over
  // new messages (paper §4, starvation prevention).
  if (node.streaming == kInvalidMsg) {
    MsgId next = kInvalidMsg;
    if (!node.swQueue.empty() && node.swQueue.front().readyCycle <= cycle_) {
      next = node.swQueue.front().msg;
      node.swQueue.pop_front();
    } else if (!node.sourceQueue.empty()) {
      next = node.sourceQueue.front();
      node.sourceQueue.pop_front();
    }
    if (next == kInvalidMsg) return;
    // Choose an injection VC whose buffer is empty; rotate the start index
    // to spread successive messages over the V injection buffers.
    int chosenVc = -1;
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int vc = static_cast<int>((engineRng_.next() >> 32) + i) % cfg_.vcs;
      if (router.unit(injPort, vc).buf.empty() && !router.unit(injPort, vc).routed) {
        chosenVc = vc;
        break;
      }
    }
    if (chosenVc < 0) {
      // All injection buffers busy: put the message back and retry later.
      node.sourceQueue.push_front(next);
      return;
    }
    node.streaming = next;
    node.streamVc = chosenVc;
    node.nextFlit = 0;
    Message& m = pool_.get(next);
    m.resetTransit();  // fresh network segment: wrap classes reset
    m.flitsEjected = 0;
    if (m.firstInjectCycle == ~std::uint64_t{0}) m.firstInjectCycle = cycle_;
  }

  // Stream one flit per cycle (injection channel bandwidth, assumption (g)).
  Message& m = pool_.get(node.streaming);
  const int unitIdx = router.unitIndex(injPort, node.streamVc);
  InputUnit& unit = router.unit(unitIdx);
  if (unit.buf.full()) return;
  Flit f;
  f.msg = node.streaming;
  f.kind = m.flitKindAt(node.nextFlit);
  const bool wasEmpty = unit.buf.empty();
  unit.buf.push(f, cycle_);
  if (wasEmpty) router.markOccupied(unitIdx);
  lastMovementCycle_ = cycle_;
  if (trace_ != nullptr && node.nextFlit == 0) {
    trace_->record({m.absorptions > 0 ? TraceEvent::Kind::Reinject
                                      : TraceEvent::Kind::Inject,
                    cycle_, id, 0, m.seq});
  }
  ++node.nextFlit;
  if (f.isTail()) {
    node.streaming = kInvalidMsg;
    node.streamVc = -1;
  }
}

void Network::routeHeader(NodeId id, int unitIdx) {
  RouterState& router = routers_[id];
  InputUnit& unit = router.unit(unitIdx);
  Message& msg = pool_.get(unit.buf.front().msg);

  RouteDecision decision;
  if (msg.curTarget == id) {
    decision = RouteDecision::deliver();
  } else if (msg.mode == RoutingMode::Adaptive) {
    decision = duato_.route(msg, id, faults_, part_);
  } else {
    decision = ecube_.route(msg, id, faults_, part_);
  }

  switch (decision.kind) {
    case RouteDecision::Kind::Deliver:
      unit.routed = true;
      unit.outPort = static_cast<std::uint8_t>(topo_.localPort());
      return;
    case RouteDecision::Kind::Absorb:
      // The required outgoing channel leads to a fault: eject here and hand
      // the message to the messaging layer (assumption (i)).
      msg.blockedValid = true;
      msg.blockedDim = decision.blockedDim;
      msg.blockedDirStep = decision.blockedDirStep;
      unit.routed = true;
      unit.outPort = static_cast<std::uint8_t>(topo_.localPort());
      return;
    case RouteDecision::Kind::Forward:
      break;
  }

  // Virtual-channel allocation: collect free output VCs over all candidates
  // and pick one at random (assumption (e): "chooses randomly one of the
  // available virtual channels ... that brings it closer to its destination").
  InlineVector<std::uint16_t, 128> free;  // encoded port * 16 + vc
  for (const RouteCandidate& cand : decision.candidates) {
    if (free.size() == free.capacity()) break;
    for (int vc = 0; vc < cfg_.vcs; ++vc) {
      if (!(cand.vcs & (1u << vc))) continue;
      if (router.outOwner(cand.outPort, vc) >= 0) continue;
      free.push_back(static_cast<std::uint16_t>(cand.outPort * 16 + vc));
      if (free.size() == free.capacity()) break;
    }
  }
  if (free.empty()) return;  // all admissible VCs busy: retry next cycle
  const std::uint16_t pick =
      free[engineRng_.uniform(static_cast<std::uint32_t>(free.size()))];
  const int outPort = pick / 16;
  const int outVc = pick % 16;
  unit.routed = true;
  unit.outPort = static_cast<std::uint8_t>(outPort);
  unit.outVc = static_cast<std::uint8_t>(outVc);
  router.setOutOwner(outPort, outVc, static_cast<std::int16_t>(unitIdx));
}

void Network::stepRouter(NodeId id) {
  RouterState& router = routers_[id];
  const int ports = topo_.totalPorts();
  const int localPort = topo_.localPort();
  const auto td = static_cast<std::uint64_t>(cfg_.routerDecisionTime);

  // Single pass over occupied units: route-compute unrouted headers, then
  // record switch requests; per output port keep the round-robin-best
  // eligible requester. (portOf(dim, opposite(dir)) == port ^ 1.)
  InlineVector<std::int16_t, 2 * kMaxDims + 1> winner;
  InlineVector<std::int16_t, 2 * kMaxDims + 1> winnerKey;
  winner.resize(static_cast<std::size_t>(ports), -1);
  winnerKey.resize(static_cast<std::size_t>(ports), std::int16_t{0x7FFF});

  const auto& occ = router.occupancy();
  const int unitCount = router.unitCount();
  for (int w = 0; w < RouterState::kOccWords; ++w) {
    std::uint64_t bits = occ[w];
    while (bits) {
      const int unitIdx = w * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      InputUnit& unit = router.unit(unitIdx);
      if (!unit.routed) {
        if (!unit.buf.front().isHeader()) continue;
        if (unit.buf.frontArrival() + td > cycle_) continue;  // Td model
        routeHeader(id, unitIdx);
        if (!unit.routed) continue;
      }
      if (unit.buf.frontArrival() >= cycle_) continue;  // arrived this cycle
      const int port = unit.outPort;
      if (port != localPort) {
        // Credit check: the downstream input buffer must have a free slot.
        const RouterState& downRouter = routers_[cachedNeighbor(id, port)];
        if (downRouter.unit((port ^ 1) * cfg_.vcs + unit.outVc).buf.full()) continue;
      }
      // Round-robin key relative to the port cursor (branch beats modulo).
      int key = unitIdx - router.cursor(port);
      if (key < 0) key += unitCount;
      if (key < winnerKey[static_cast<std::size_t>(port)]) {
        winnerKey[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(key);
        winner[static_cast<std::size_t>(port)] = static_cast<std::int16_t>(unitIdx);
      }
    }
  }

  for (int port = 0; port < ports; ++port) {
    const int unitIdx = winner[static_cast<std::size_t>(port)];
    if (unitIdx < 0) continue;
    router.setCursor(port, static_cast<std::uint16_t>((unitIdx + 1) % unitCount));
    if (port == localPort) {
      ejectFlit(id, unitIdx);
      continue;
    }
    InputUnit& unit = router.unit(unitIdx);
    const Flit flit = unit.buf.pop();
    if (unit.buf.empty()) router.markEmpty(unitIdx);
    lastMovementCycle_ = cycle_;

    Message& msg = pool_.get(flit.msg);
    if (flit.isHeader()) {
      ++msg.hops;
      if (cachedWrap(id, port)) msg.setWrapped(dimOfPort(port));
      if (trace_ != nullptr) {
        trace_->record({TraceEvent::Kind::Hop, cycle_, id,
                        static_cast<std::uint8_t>(port), msg.seq});
      }
    }
    RouterState& downRouter = routers_[cachedNeighbor(id, port)];
    const int downUnitIdx = downRouter.unitIndex(port ^ 1, unit.outVc);
    InputUnit& downUnit = downRouter.unit(downUnitIdx);
    const bool wasEmpty = downUnit.buf.empty();
    downUnit.buf.push(flit, cycle_);
    if (wasEmpty) downRouter.markOccupied(downUnitIdx);

    if (flit.isTail()) {
      unit.routed = false;
      router.setOutOwner(port, unit.outVc, -1);
    }
  }
}

void Network::ejectFlit(NodeId id, int unitIdx) {
  RouterState& router = routers_[id];
  InputUnit& unit = router.unit(unitIdx);
  const Flit flit = unit.buf.pop();
  if (unit.buf.empty()) router.markEmpty(unitIdx);
  lastMovementCycle_ = cycle_;

  Message& msg = pool_.get(flit.msg);
  ++msg.flitsEjected;
  if (flit.isTail()) {
    unit.routed = false;
    finalizeEjected(id, flit.msg);
  }
}

void Network::finalizeEjected(NodeId id, MsgId msgId) {
  Message& msg = pool_.get(msgId);
  assert(msg.flitsEjected == msg.length && "partial message ejected");

  const bool software = msg.blockedValid || (msg.absorbAtTarget && msg.curTarget == id);
  if (trace_ != nullptr) {
    trace_->record({software ? TraceEvent::Kind::Absorb : TraceEvent::Kind::Deliver,
                    cycle_, id, 0, msg.seq});
  }
  if (!software) {
    // Final delivery: the last data flit reached the destination PE.
    assert(id == msg.finalDest);
    ++deliveredTotal_;
    if (windowOpen_) ++deliveredInWindow_;
    if (msg.seq >= cfg_.warmupMessages) {
      ++deliveredMeasured_;
      latency_.add(static_cast<double>(cycle_ - msg.genCycle));
      hops_.add(static_cast<double>(msg.hops));
    }
    pool_.release(msgId);
    return;
  }

  // Software absorption: the messaging layer rewrites the header and queues
  // the message for re-injection after Δ cycles (assumption (i)).
  if (msg.absorptions == 0) ++absorbedMessages_;
  software_.planReroute(msg, id, engineRng_);
  scheduleReinjection(id, msgId);
}

void Network::scheduleReinjection(NodeId id, MsgId msgId) {
  nodes_[id].swQueue.push_back(
      PendingReinjection{msgId, cycle_ + static_cast<std::uint64_t>(cfg_.reinjectDelay)});
}

}  // namespace swft
