// Bucketed calendar queue for traffic-generation events.
//
// The seed engine asked every PE "is your next arrival due?" every cycle — an
// O(N) sweep that dominates at low injection rates where almost every answer
// is no. The calendar keys each node on its `nextGenCycle`: a ring of
// single-cycle buckets covers the next `kWindow` cycles, and arrivals beyond
// the window sit in an overflow list that is re-sifted each time the window
// advances (classic calendar-queue design). Geometric inter-arrival gaps at
// paper rates are well under the window, so the overflow path is cold.
//
// Determinism contract: `takeDue(cycle)` returns the due nodes sorted by
// ascending id, so the engine processes them in exactly the order the dense
// reference sweep would — the global generation sequence numbers (and thus
// every downstream statistic) are bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/topology/coordinates.hpp"

namespace swft {

class GenCalendar {
 public:
  static constexpr std::uint64_t kWindow = 1024;  // ring size, power of two

  GenCalendar() : ring_(kWindow) {}

  /// Register node `id` to fire at `cycle`. Each node must be scheduled at
  /// most once at a time (re-schedule only after its bucket was consumed).
  void schedule(NodeId id, std::uint64_t cycle) {
    if (cycle < windowBase_ + kWindow) {
      ring_[cycle & (kWindow - 1)].push_back(id);
    } else {
      overflow_.push_back(Pending{cycle, id});
    }
  }

  /// Nodes due exactly at `cycle`, ascending id. Cycles must be consumed in
  /// non-decreasing order; the returned reference is valid until the next call.
  const std::vector<NodeId>& takeDue(std::uint64_t cycle) {
    while (cycle >= windowBase_ + kWindow) advanceWindow();
    std::vector<NodeId>& bucket = ring_[cycle & (kWindow - 1)];
    due_.clear();
    due_.swap(bucket);
    std::sort(due_.begin(), due_.end());
    return due_;
  }

  [[nodiscard]] std::size_t pendingOverflow() const noexcept { return overflow_.size(); }

 private:
  struct Pending {
    std::uint64_t cycle;
    NodeId id;
  };

  void advanceWindow() {
    windowBase_ += kWindow;
    std::size_t kept = 0;
    for (const Pending& p : overflow_) {
      if (p.cycle < windowBase_ + kWindow) {
        ring_[p.cycle & (kWindow - 1)].push_back(p.id);
      } else {
        overflow_[kept++] = p;
      }
    }
    overflow_.resize(kept);
  }

  std::vector<std::vector<NodeId>> ring_;
  std::vector<Pending> overflow_;
  std::vector<NodeId> due_;
  std::uint64_t windowBase_ = 0;
};

}  // namespace swft
