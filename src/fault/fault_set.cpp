#include "src/fault/fault_set.hpp"

namespace swft {

FaultSet::FaultSet(const TorusTopology& topo)
    : topo_(&topo),
      nodeFaulty_(topo.nodeCount(), 0),
      linkFaulty_(static_cast<std::size_t>(topo.nodeCount()) *
                      static_cast<std::size_t>(topo.networkPorts()),
                  0) {}

void FaultSet::failNode(NodeId id) {
  if (nodeFaulty_[id]) return;
  nodeFaulty_[id] = 1;
  ++faultyNodes_;
  // All links incident on the node are unusable from both sides.
  for (int port = 0; port < topo_->networkPorts(); ++port) {
    linkFaulty_[linkIndex(id, port)] = 1;
    const NodeId nb = topo_->neighbor(id, port);
    const int back = portOf(dimOfPort(port), opposite(dirOfPort(port)));
    linkFaulty_[linkIndex(nb, back)] = 1;
  }
}

void FaultSet::failLink(NodeId id, int dim, Dir dir) {
  linkFaulty_[linkIndex(id, portOf(dim, dir))] = 1;
  const NodeId nb = topo_->neighbor(id, dim, dir);
  linkFaulty_[linkIndex(nb, portOf(dim, opposite(dir)))] = 1;
}

std::vector<NodeId> FaultSet::faultyNodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(faultyNodes_));
  for (NodeId id = 0; id < topo_->nodeCount(); ++id)
    if (nodeFaulty_[id]) out.push_back(id);
  return out;
}

std::vector<NodeId> FaultSet::healthyNodes() const {
  std::vector<NodeId> out;
  out.reserve(topo_->nodeCount() - static_cast<std::size_t>(faultyNodes_));
  for (NodeId id = 0; id < topo_->nodeCount(); ++id)
    if (!nodeFaulty_[id]) out.push_back(id);
  return out;
}

int FaultSet::healthyDegree(NodeId id) const noexcept {
  int deg = 0;
  for (int port = 0; port < topo_->networkPorts(); ++port)
    if (!linkFaulty(id, port)) ++deg;
  return deg;
}

}  // namespace swft
