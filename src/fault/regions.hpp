// Coalesced fault-region builders (paper Fig. 1 / Fig. 5).
//
// Regions are planar shapes placed in a chosen 2-D plane (dims d0, d1) of the
// torus, with all remaining coordinates fixed at an anchor node. Convex
// shapes: I (|), II (||), Rect (block/□). Concave shapes: L, U, Plus (+),
// T, H. Cardinalities are exact so the Fig. 5 configurations (rect nf=20,
// T nf=10, + nf=16, L nf=9, U nf=8) reproduce verbatim.
#pragma once

#include <string>
#include <vector>

#include "src/fault/fault_set.hpp"
#include "src/util/rng.hpp"

namespace swft {

enum class RegionShape { I, II, Rect, L, U, Plus, T, H };

[[nodiscard]] std::string_view regionShapeName(RegionShape s) noexcept;
[[nodiscard]] bool regionIsConvex(RegionShape s) noexcept;

/// Parameters for a planar fault region.
struct RegionSpec {
  RegionShape shape = RegionShape::Rect;
  /// Anchor: plane-local origin (lowest corner of the bounding box).
  Coordinates anchor;
  /// The two dimensions spanning the plane the shape lives in.
  int dim0 = 0;
  int dim1 = 1;
  /// Shape-specific extents (see regionCells for the exact meaning).
  int extent0 = 3;
  int extent1 = 3;
};

/// Plane-local cell offsets (x along dim0, y along dim1) of the shape.
///
/// Extents per shape (cell counts):
///   I    : extent1 x 1 column                    -> extent1 cells
///   II   : two columns of height extent1, 1 apart-> 2*extent1 cells
///   Rect : extent0 x extent1 block               -> extent0*extent1 cells
///   L    : vertical leg extent1 + horizontal leg extent0 (corner shared)
///          -> extent0 + extent1 - 1 cells
///   U    : base of width extent0 + two arms of height extent1 (corners shared)
///          -> extent0 + 2*(extent1 - 1) cells
///   Plus : horizontal 2 x extent0 bar and vertical extent1 x 2 bar crossing
///          in a 2x2 centre -> 2*extent0 + 2*extent1 - 4 cells
///   T    : horizontal bar of width extent0 + stem of height extent1 below the
///          bar centre -> extent0 + extent1 cells
///   H    : two vertical legs of height extent1 + crossbar of width extent0
///          between them at mid height -> 2*extent1 + extent0 - 2 cells
[[nodiscard]] std::vector<std::pair<int, int>> regionCells(const RegionSpec& spec);

/// Resolve the spec to concrete node ids on the torus.
[[nodiscard]] std::vector<NodeId> regionNodes(const TorusTopology& topo, const RegionSpec& spec);

/// Apply the region to a fault set; returns the failed nodes.
std::vector<NodeId> applyRegion(FaultSet& faults, const RegionSpec& spec);

/// Convenience builders matching the Fig. 5 legend exactly (8-ary 2-cube).
[[nodiscard]] RegionSpec fig5Rect20(const TorusTopology& topo);   // 4x5 block, 20 nodes
[[nodiscard]] RegionSpec fig5T10(const TorusTopology& topo);      // bar 5 + stem 5, 10 nodes
[[nodiscard]] RegionSpec fig5Plus16(const TorusTopology& topo);   // 2-thick cross, 16 nodes
[[nodiscard]] RegionSpec fig5L9(const TorusTopology& topo);       // legs 5+5, 9 nodes
[[nodiscard]] RegionSpec fig5U8(const TorusTopology& topo);       // base 4, arms 3, 8 nodes

/// Fail `count` random healthy nodes such that the surviving network stays
/// connected and no healthy node is fully isolated. Returns the failed nodes.
/// Throws if a valid placement cannot be found within `maxAttempts`.
std::vector<NodeId> applyRandomNodeFaults(FaultSet& faults, int count, Rng& rng,
                                          int maxAttempts = 1000);

}  // namespace swft
