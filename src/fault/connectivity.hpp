// Connectivity guard: the paper assumes faults never disconnect the network
// (assumption (h)). These helpers verify that assumption for generated fault
// patterns and are reused by the tests as a structural invariant.
#pragma once

#include "src/fault/fault_set.hpp"

namespace swft {

/// True iff all healthy nodes form one connected component over healthy links.
[[nodiscard]] bool healthyNetworkConnected(const FaultSet& faults);

/// Number of connected components among healthy nodes (0 if none healthy).
[[nodiscard]] int healthyComponentCount(const FaultSet& faults);

/// Size of the component containing `start` (must be healthy).
[[nodiscard]] std::size_t componentSize(const FaultSet& faults, NodeId start);

}  // namespace swft
