#include "src/fault/connectivity.hpp"

#include <vector>

namespace swft {

namespace {

/// BFS over healthy links from `start`, marking `visited`. Returns count.
std::size_t bfs(const FaultSet& faults, NodeId start, std::vector<std::uint8_t>& visited) {
  const TorusTopology& topo = faults.topology();
  std::vector<NodeId> frontier{start};
  visited[start] = 1;
  std::size_t seen = 1;
  while (!frontier.empty()) {
    const NodeId cur = frontier.back();
    frontier.pop_back();
    for (int port = 0; port < topo.networkPorts(); ++port) {
      if (faults.linkFaulty(cur, port)) continue;
      const NodeId nb = topo.neighbor(cur, port);
      if (visited[nb]) continue;
      visited[nb] = 1;
      ++seen;
      frontier.push_back(nb);
    }
  }
  return seen;
}

}  // namespace

bool healthyNetworkConnected(const FaultSet& faults) {
  return healthyComponentCount(faults) <= 1;
}

int healthyComponentCount(const FaultSet& faults) {
  const TorusTopology& topo = faults.topology();
  std::vector<std::uint8_t> visited(topo.nodeCount(), 0);
  int components = 0;
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    if (faults.nodeFaulty(id) || visited[id]) continue;
    ++components;
    bfs(faults, id, visited);
  }
  return components;
}

std::size_t componentSize(const FaultSet& faults, NodeId start) {
  if (faults.nodeFaulty(start)) return 0;
  std::vector<std::uint8_t> visited(faults.topology().nodeCount(), 0);
  return bfs(faults, start, visited);
}

}  // namespace swft
