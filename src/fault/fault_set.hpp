// Static fault model (paper §3).
//
// Node faults mark the PE+router pair dead: every physical link and virtual
// channel incident on the node is also faulty as seen from adjacent routers.
// Link faults are supported directly as well, although the paper models a
// link failure as the failure of its two endpoint nodes (§5.2); both styles
// are available and tested.
#pragma once

#include <vector>

#include "src/topology/torus.hpp"

namespace swft {

class FaultSet {
 public:
  explicit FaultSet(const TorusTopology& topo);

  /// Mark a node (and all incident links) faulty.
  void failNode(NodeId id);
  /// Mark a single bidirectional link faulty (both directions).
  void failLink(NodeId id, int dim, Dir dir);

  [[nodiscard]] bool nodeFaulty(NodeId id) const noexcept {
    return nodeFaulty_[id] != 0;
  }
  /// True iff sending from `id` across network port `port` is impossible:
  /// the link is faulty, the neighbour is faulty, or `id` itself is faulty.
  [[nodiscard]] bool linkFaulty(NodeId id, int port) const noexcept {
    return linkFaulty_[linkIndex(id, port)] != 0;
  }
  [[nodiscard]] bool linkFaulty(NodeId id, int dim, Dir dir) const noexcept {
    return linkFaulty(id, portOf(dim, dir));
  }

  [[nodiscard]] int faultyNodeCount() const noexcept { return faultyNodes_; }
  [[nodiscard]] std::vector<NodeId> faultyNodes() const;
  [[nodiscard]] std::vector<NodeId> healthyNodes() const;

  /// Number of healthy (usable) outgoing network links of `id`.
  [[nodiscard]] int healthyDegree(NodeId id) const noexcept;

  [[nodiscard]] const TorusTopology& topology() const noexcept { return *topo_; }

 private:
  [[nodiscard]] std::size_t linkIndex(NodeId id, int port) const noexcept {
    return static_cast<std::size_t>(id) * static_cast<std::size_t>(topo_->networkPorts()) +
           static_cast<std::size_t>(port);
  }

  const TorusTopology* topo_;
  std::vector<std::uint8_t> nodeFaulty_;
  std::vector<std::uint8_t> linkFaulty_;
  int faultyNodes_ = 0;
};

}  // namespace swft
