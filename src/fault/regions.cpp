#include "src/fault/regions.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "src/fault/connectivity.hpp"

namespace swft {

std::string_view regionShapeName(RegionShape s) noexcept {
  switch (s) {
    case RegionShape::I: return "I";
    case RegionShape::II: return "II";
    case RegionShape::Rect: return "rect";
    case RegionShape::L: return "L";
    case RegionShape::U: return "U";
    case RegionShape::Plus: return "plus";
    case RegionShape::T: return "T";
    case RegionShape::H: return "H";
  }
  return "?";
}

bool regionIsConvex(RegionShape s) noexcept {
  switch (s) {
    case RegionShape::I:
    case RegionShape::II:
    case RegionShape::Rect:
      return true;
    default:
      return false;
  }
}

std::vector<std::pair<int, int>> regionCells(const RegionSpec& spec) {
  const int w = spec.extent0;
  const int h = spec.extent1;
  if (w < 1 || h < 1) throw std::invalid_argument("regionCells: extents must be >= 1");
  std::set<std::pair<int, int>> cells;
  auto add = [&cells](int x, int y) { cells.emplace(x, y); };

  switch (spec.shape) {
    case RegionShape::I:
      for (int y = 0; y < h; ++y) add(0, y);
      break;
    case RegionShape::II:
      // Two parallel columns with a healthy column between them.
      for (int y = 0; y < h; ++y) {
        add(0, y);
        add(2, y);
      }
      break;
    case RegionShape::Rect:
      for (int x = 0; x < w; ++x)
        for (int y = 0; y < h; ++y) add(x, y);
      break;
    case RegionShape::L:
      // Vertical leg on the left plus horizontal leg along the bottom.
      for (int y = 0; y < h; ++y) add(0, y);
      for (int x = 0; x < w; ++x) add(x, 0);
      break;
    case RegionShape::U:
      // Base along the bottom, arms on both ends pointing up.
      for (int x = 0; x < w; ++x) add(x, 0);
      for (int y = 1; y < h; ++y) {
        add(0, y);
        add(w - 1, y);
      }
      break;
    case RegionShape::Plus: {
      // Two-cell-thick horizontal and vertical bars crossing in the middle.
      if (w < 2 || h < 2) throw std::invalid_argument("plus region needs extents >= 2");
      const int cy = h / 2;
      const int cx = w / 2;
      for (int x = 0; x < w; ++x) {
        add(x, cy - 1);
        add(x, cy);
      }
      for (int y = 0; y < h; ++y) {
        add(cx - 1, y);
        add(cx, y);
      }
      break;
    }
    case RegionShape::T:
      // Horizontal bar along the top plus a stem hanging from its centre.
      for (int x = 0; x < w; ++x) add(x, h);
      for (int y = 0; y < h; ++y) add(w / 2, y);
      break;
    case RegionShape::H:
      // Two vertical legs joined by a crossbar at mid height.
      for (int y = 0; y < h; ++y) {
        add(0, y);
        add(w - 1, y);
      }
      for (int x = 1; x < w - 1; ++x) add(x, h / 2);
      break;
  }
  return {cells.begin(), cells.end()};
}

std::vector<NodeId> regionNodes(const TorusTopology& topo, const RegionSpec& spec) {
  if (spec.dim0 == spec.dim1 || spec.dim0 >= topo.dims() || spec.dim1 >= topo.dims()) {
    throw std::invalid_argument("regionNodes: bad plane dimensions");
  }
  if (spec.anchor.dims() != topo.dims()) {
    throw std::invalid_argument("regionNodes: anchor dimensionality mismatch");
  }
  std::vector<NodeId> out;
  for (const auto& [x, y] : regionCells(spec)) {
    Coordinates c = spec.anchor;
    c[spec.dim0] = topo.space().wrap(c[spec.dim0] + x);
    c[spec.dim1] = topo.space().wrap(c[spec.dim1] + y);
    out.push_back(topo.idOf(c));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> applyRegion(FaultSet& faults, const RegionSpec& spec) {
  auto nodes = regionNodes(faults.topology(), spec);
  for (NodeId id : nodes) faults.failNode(id);
  return nodes;
}

namespace {
Coordinates centeredAnchor(const TorusTopology& topo, int spanX, int spanY) {
  Coordinates c;
  c.digit.resize(static_cast<std::size_t>(topo.dims()));
  for (int d = 0; d < topo.dims(); ++d) c[d] = static_cast<std::int16_t>(topo.radix() / 2);
  c[0] = static_cast<std::int16_t>((topo.radix() - spanX) / 2);
  c[1] = static_cast<std::int16_t>((topo.radix() - spanY) / 2);
  return c;
}
}  // namespace

RegionSpec fig5Rect20(const TorusTopology& topo) {
  RegionSpec s;
  s.shape = RegionShape::Rect;
  s.extent0 = 4;
  s.extent1 = 5;  // 4x5 = 20 nodes
  s.anchor = centeredAnchor(topo, 4, 5);
  return s;
}

RegionSpec fig5T10(const TorusTopology& topo) {
  RegionSpec s;
  s.shape = RegionShape::T;
  s.extent0 = 5;
  s.extent1 = 5;  // bar 5 + stem 5 = 10 nodes
  s.anchor = centeredAnchor(topo, 5, 6);
  return s;
}

RegionSpec fig5Plus16(const TorusTopology& topo) {
  RegionSpec s;
  s.shape = RegionShape::Plus;
  s.extent0 = 5;
  s.extent1 = 5;  // 2*5 + 2*5 - 4 = 16 nodes
  s.anchor = centeredAnchor(topo, 5, 5);
  return s;
}

RegionSpec fig5L9(const TorusTopology& topo) {
  RegionSpec s;
  s.shape = RegionShape::L;
  s.extent0 = 5;
  s.extent1 = 5;  // 5 + 5 - 1 = 9 nodes
  s.anchor = centeredAnchor(topo, 5, 5);
  return s;
}

RegionSpec fig5U8(const TorusTopology& topo) {
  RegionSpec s;
  s.shape = RegionShape::U;
  s.extent0 = 4;
  s.extent1 = 3;  // 4 + 2*2 = 8 nodes
  s.anchor = centeredAnchor(topo, 4, 3);
  return s;
}

std::vector<NodeId> applyRandomNodeFaults(FaultSet& faults, int count, Rng& rng,
                                          int maxAttempts) {
  const TorusTopology& topo = faults.topology();
  if (count == 0) return {};
  if (count < 0 || static_cast<NodeId>(count) >= topo.nodeCount()) {
    throw std::invalid_argument("applyRandomNodeFaults: bad count");
  }
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    // Draw a candidate set, then validate connectivity on a scratch fault set.
    FaultSet trial(topo);
    std::vector<NodeId> chosen;
    chosen.reserve(static_cast<std::size_t>(count));
    while (static_cast<int>(chosen.size()) < count) {
      const NodeId id = rng.uniform(topo.nodeCount());
      if (faults.nodeFaulty(id) || trial.nodeFaulty(id)) continue;
      trial.failNode(id);
      chosen.push_back(id);
    }
    // Also respect pre-existing faults when validating.
    for (NodeId id : faults.faultyNodes()) trial.failNode(id);
    if (!healthyNetworkConnected(trial)) continue;
    for (NodeId id : chosen) faults.failNode(id);
    return chosen;
  }
  throw std::runtime_error("applyRandomNodeFaults: no connected placement found");
}

}  // namespace swft
