#include "src/model/analytic.hpp"

#include <algorithm>
#include <cmath>

namespace swft {

double meanUniformDistance(int radix, int dims) {
  // Per-dimension mean of min(d, k-d) over offsets d = 0..k-1, then scale by
  // N/(N-1) to exclude the self destination (offset 0 in every dimension).
  const int k = radix;
  double perDim = 0.0;
  for (int d = 0; d < k; ++d) perDim += std::min(d, k - d);
  perDim /= k;
  double nodes = 1.0;
  for (int i = 0; i < dims; ++i) nodes *= k;
  const double total = perDim * dims;               // includes the self pair
  return total * nodes / (nodes - 1.0);
}

namespace {

/// Dally's virtual-channel multiplexing factor with the classical truncated-
/// geometric occupancy (birth-death steady state): p_i ∝ rho^i, i = 0..V.
double multiplexFactor(int vcs, double rho) {
  rho = std::clamp(rho, 0.0, 0.999);
  double norm = 0.0;
  double num = 0.0;
  double den = 0.0;
  double w = 1.0;
  for (int i = 0; i <= vcs; ++i) {
    norm += w;
    num += static_cast<double>(i) * static_cast<double>(i) * w;
    den += static_cast<double>(i) * w;
    w *= rho;
  }
  (void)norm;  // cancels in the ratio
  return den > 0.0 ? std::max(1.0, num / den) : 1.0;
}

/// Probability that all V virtual channels of a physical channel are busy,
/// under the same truncated-geometric occupancy.
double allVcsBusy(int vcs, double rho) {
  rho = std::clamp(rho, 0.0, 0.999);
  double norm = 0.0;
  double w = 1.0;
  for (int i = 0; i <= vcs; ++i) {
    norm += w;
    w *= rho;
  }
  return std::pow(rho, vcs) / norm;
}

/// M/G/1 mean waiting time with service S, arrival rate a and squared
/// coefficient of variation cv2 (Pollaczek–Khinchine).
double mg1Wait(double a, double s, double cv2) {
  const double rho = a * s;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * s * (1.0 + cv2) / (2.0 * (1.0 - rho));
}

}  // namespace

ModelResult analyticLatency(const SimConfig& cfg) {
  ModelResult r;
  const int n = cfg.dims;
  const int v = cfg.vcs;
  const double m = cfg.messageLength;
  const double lambda = cfg.injectionRate;

  r.meanHops = meanUniformDistance(cfg.radix, n);

  // Faulty nodes neither generate nor sink traffic; the surviving healthy
  // population keeps the same uniform structure to first order.
  double totalNodes = 1.0;
  for (int i = 0; i < n; ++i) totalNodes *= cfg.radix;
  double nf = cfg.faults.randomNodes + static_cast<double>(cfg.faults.explicitNodes.size());
  for (const RegionSpec& spec : cfg.faults.regions) {
    nf += static_cast<double>(regionCells(spec).size());
  }

  // Software-Based fault extension: absorption probability and per-event
  // overhead. Each absorbed epoch re-plays ejection (M flit cycles), the
  // messaging layer (Delta), and a short detour (~k/4 extra hops).
  const double faultFraction = nf / std::max(1.0, totalNodes - 1.0);
  r.absorbProbability = 1.0 - std::pow(1.0 - faultFraction, r.meanHops);
  const double detour = static_cast<double>(cfg.radix) / 4.0;
  const double absorbCost = m + static_cast<double>(cfg.reinjectDelay) + detour;

  // Effective offered rate per directed network channel. Re-injected
  // messages add their traffic again (they re-traverse ~dbar/2 channels).
  const double reinjectFactor = 1.0 + 0.5 * r.absorbProbability;
  r.channelRate = lambda * reinjectFactor * r.meanHops / (2.0 * n);

  // Fixed point on the channel service time.
  const double cv2 = 0.5;  // wormhole service times are moderately variable
  double s = m;
  bool saturated = false;
  for (int iter = 0; iter < 200; ++iter) {
    const double rho = r.channelRate * s;
    if (rho >= 0.999) {
      saturated = true;
      break;
    }
    const double pAllBusy = allVcsBusy(v, rho);
    const double wait = mg1Wait(r.channelRate, s, cv2);
    const double next = m + pAllBusy * wait;
    if (std::abs(next - s) < 1e-9) {
      s = next;
      break;
    }
    s = 0.5 * s + 0.5 * next;  // damped iteration
  }
  r.serviceTime = s;
  r.channelUtilisation = std::min(1.0, r.channelRate * s);
  r.multiplexFactor = multiplexFactor(v, r.channelUtilisation);
  r.saturated = saturated;

  // Saturation estimate: rho -> 1 with the unloaded service time.
  r.saturationRate = 2.0 * n / (r.meanHops * m * reinjectFactor);

  if (saturated) {
    r.meanLatency = std::numeric_limits<double>::infinity();
    return r;
  }

  // Per-hop header delay: one cycle per hop plus contention amortised over
  // the path; the message body pipelines behind the header.
  const double rho = r.channelUtilisation;
  const double pAllBusy = allVcsBusy(v, rho);
  const double blockPerHop = pAllBusy * mg1Wait(r.channelRate, s, cv2);
  const double networkLatency =
      (r.meanHops + m + r.meanHops * blockPerHop) * r.multiplexFactor;

  // Injection (source) queue: M/G/1 with service ~ network header epoch.
  const double srcService = m * r.multiplexFactor;
  const double srcWait = mg1Wait(lambda * reinjectFactor, srcService, cv2);
  if (!std::isfinite(srcWait)) {
    r.saturated = true;
    r.meanLatency = std::numeric_limits<double>::infinity();
    return r;
  }

  // Expected software overhead per message (absorptions re-play an epoch).
  const double softwareOverhead = r.absorbProbability * (absorbCost + srcWait);

  r.meanLatency = networkLatency + srcWait + softwareOverhead;
  return r;
}

}  // namespace swft
