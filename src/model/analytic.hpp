// Analytical latency model for wormhole-switched k-ary n-cubes under
// Software-Based fault-tolerant routing — the paper's stated future work
// ("Our next object is to develop an analytical modeling approach", §6).
//
// The model follows the classical queueing decomposition used for wormhole
// tori (Draper & Ghosh 1994; Ould-Khaoua 1999 — the latter a co-author of
// the reproduced paper):
//
//   1. Mean minimal path length dbar from the uniform traffic pattern.
//   2. Directed-channel message rate lambda_c = lambda * dbar / (2n).
//   3. A fixed point on the effective channel service time S:
//        S = M + Pv(S) * Wc(S)
//      where Wc is the M/G/1 waiting time of a channel with utilisation
//      rho = lambda_c * S, and Pv = rho^V approximates the probability that
//      all V virtual channels of the required physical channel are busy.
//   4. Virtual-channel multiplexing inflates per-hop transfer time by
//      Dally's factor  Vbar = sum(i^2 p_i) / sum(i p_i)  with the classical
//      truncated-geometric occupancy p_i ∝ rho^i (birth-death steady state).
//   5. Source queueing is an M/G/1 wait at the injection channel.
//   6. Faults (Software-Based extension): a uniform message crosses
//      ~dbar intermediate routers; with nf random faulty nodes out of N the
//      per-message absorption probability is approximated by
//        P_abs = 1 - (1 - nf/(N-1))^dbar,
//      and each absorption adds an ejection + messaging-layer + re-injection
//      epoch of roughly (M + Delta + r) cycles, r = mean re-route detour.
//
// The model is a *first-order* design tool: tests validate it against the
// simulator to ~25% below ~60% of saturation and qualitatively beyond.
#pragma once

#include "src/sim/config.hpp"

namespace swft {

struct ModelResult {
  double meanLatency = 0.0;   // cycles, generation -> last flit at PE
  double meanHops = 0.0;      // dbar
  double channelRate = 0.0;   // lambda_c, messages/cycle/directed channel
  double channelUtilisation = 0.0;  // rho = lambda_c * S
  double serviceTime = 0.0;   // fixed-point S
  double multiplexFactor = 1.0;     // Dally's Vbar >= 1
  double absorbProbability = 0.0;   // per-message software absorption prob.
  double saturationRate = 0.0;      // estimated lambda at rho -> 1
  bool saturated = false;
};

/// Evaluate the analytic model for `cfg` (uniform traffic). Only the
/// topology/router/workload/fault-count fields are read; measurement fields
/// are ignored. Regions are approximated by their node count.
[[nodiscard]] ModelResult analyticLatency(const SimConfig& cfg);

/// Exact mean minimal (Lee) distance of uniform traffic on the k-ary n-cube
/// (destination uniform over the other N-1 nodes).
[[nodiscard]] double meanUniformDistance(int radix, int dims);

}  // namespace swft
