// k-ary n-cube (torus) topology: ports, neighbours, distances, wrap links.
//
// Port numbering at every router:
//   port 2d   = dimension d, positive (+1 mod k) direction
//   port 2d+1 = dimension d, negative (-1 mod k) direction
//   port 2n   = injection (from the local PE)
// and a conceptually separate ejection output (port index 2n as well on the
// output side; input port 2n is injection, output port 2n is ejection).
#pragma once

#include <cstdint>

#include "src/topology/coordinates.hpp"

namespace swft {

/// Direction along a dimension.
enum class Dir : std::uint8_t { Pos = 0, Neg = 1 };

constexpr Dir opposite(Dir d) noexcept { return d == Dir::Pos ? Dir::Neg : Dir::Pos; }
constexpr int dirStep(Dir d) noexcept { return d == Dir::Pos ? +1 : -1; }

/// Network port index helpers.
constexpr int portOf(int dim, Dir dir) noexcept {
  return 2 * dim + (dir == Dir::Neg ? 1 : 0);
}
constexpr int dimOfPort(int port) noexcept { return port / 2; }
constexpr Dir dirOfPort(int port) noexcept { return (port & 1) ? Dir::Neg : Dir::Pos; }

class TorusTopology {
 public:
  TorusTopology(int radix, int dims);

  [[nodiscard]] int radix() const noexcept { return space_.radix(); }
  [[nodiscard]] int dims() const noexcept { return space_.dims(); }
  [[nodiscard]] NodeId nodeCount() const noexcept { return space_.nodeCount(); }
  [[nodiscard]] const AddressSpace& space() const noexcept { return space_; }

  /// Number of network ports per router (excludes injection/ejection).
  [[nodiscard]] int networkPorts() const noexcept { return 2 * dims(); }
  /// Injection input port / ejection output port index.
  [[nodiscard]] int localPort() const noexcept { return networkPorts(); }
  /// Total ports including the local one.
  [[nodiscard]] int totalPorts() const noexcept { return networkPorts() + 1; }

  [[nodiscard]] Coordinates coordsOf(NodeId id) const noexcept { return space_.coordsOf(id); }
  [[nodiscard]] NodeId idOf(const Coordinates& c) const noexcept { return space_.idOf(c); }

  /// Neighbour of `id` across (dim, dir); torus links always exist.
  [[nodiscard]] NodeId neighbor(NodeId id, int dim, Dir dir) const noexcept;
  [[nodiscard]] NodeId neighbor(NodeId id, int port) const noexcept {
    return neighbor(id, dimOfPort(port), dirOfPort(port));
  }

  /// True iff the (dim, dir) link out of `id` is a wrap-around link.
  [[nodiscard]] bool isWrapLink(NodeId id, int dim, Dir dir) const noexcept;

  /// Signed minimal offset from a to b along `dim`, in [-k/2, k/2].
  /// Ties (|offset| == k/2 with k even) resolve to the positive direction.
  [[nodiscard]] int minimalOffset(std::int16_t from, std::int16_t to) const noexcept;

  /// Hops from a to b along `dim` when travelling in direction `dir`.
  [[nodiscard]] int ringDistance(std::int16_t from, std::int16_t to, Dir dir) const noexcept;

  /// Minimal torus (Lee) distance between two nodes.
  [[nodiscard]] int distance(NodeId a, NodeId b) const noexcept;

  /// Preferred minimal direction from `from` to `to` along `dim`
  /// (Pos when already equal; callers check equality first).
  [[nodiscard]] Dir minimalDir(std::int16_t from, std::int16_t to) const noexcept {
    return minimalOffset(from, to) >= 0 ? Dir::Pos : Dir::Neg;
  }

 private:
  AddressSpace space_;
};

}  // namespace swft
