#include "src/topology/torus.hpp"

#include <cstdlib>

namespace swft {

TorusTopology::TorusTopology(int radix, int dims) : space_(radix, dims) {}

NodeId TorusTopology::neighbor(NodeId id, int dim, Dir dir) const noexcept {
  Coordinates c = coordsOf(id);
  c[dim] = space_.wrap(c[dim] + dirStep(dir));
  return idOf(c);
}

bool TorusTopology::isWrapLink(NodeId id, int dim, Dir dir) const noexcept {
  const Coordinates c = coordsOf(id);
  if (dir == Dir::Pos) return c[dim] == radix() - 1;
  return c[dim] == 0;
}

int TorusTopology::minimalOffset(std::int16_t from, std::int16_t to) const noexcept {
  const int k = radix();
  int off = (to - from) % k;
  if (off < 0) off += k;           // now in [0, k)
  if (off > k / 2) off -= k;       // fold to (-k/2, k/2]
  if (off == k / 2 && k % 2 == 0) {
    // |off| == k/2: both directions minimal; canonicalise to positive.
    off = k / 2;
  }
  return off;
}

int TorusTopology::ringDistance(std::int16_t from, std::int16_t to, Dir dir) const noexcept {
  const int k = radix();
  int d = (dir == Dir::Pos) ? (to - from) : (from - to);
  d %= k;
  if (d < 0) d += k;
  return d;
}

int TorusTopology::distance(NodeId a, NodeId b) const noexcept {
  const Coordinates ca = coordsOf(a);
  const Coordinates cb = coordsOf(b);
  int total = 0;
  for (int d = 0; d < dims(); ++d) total += std::abs(minimalOffset(ca[d], cb[d]));
  return total;
}

}  // namespace swft
