#include "src/topology/coordinates.hpp"

#include <stdexcept>

namespace swft {

std::string Coordinates::str() const {
  std::string out = "(";
  for (int d = 0; d < dims(); ++d) {
    if (d) out += ',';
    out += std::to_string((*this)[d]);
  }
  out += ')';
  return out;
}

AddressSpace::AddressSpace(int radix, int dims) : radix_(radix), dims_(dims) {
  if (radix < 2) throw std::invalid_argument("AddressSpace: radix must be >= 2");
  if (dims < 1 || dims > kMaxDims) {
    throw std::invalid_argument("AddressSpace: dims out of range");
  }
  std::uint64_t count = 1;
  for (int d = 0; d < dims; ++d) {
    count *= static_cast<std::uint64_t>(radix);
    if (count > 1u << 24) {
      throw std::invalid_argument("AddressSpace: network too large (> 2^24 nodes)");
    }
  }
  count_ = static_cast<NodeId>(count);
}

Coordinates AddressSpace::coordsOf(NodeId id) const noexcept {
  Coordinates c;
  c.digit.resize(static_cast<std::size_t>(dims_));
  for (int d = 0; d < dims_; ++d) {
    c[d] = static_cast<std::int16_t>(id % static_cast<NodeId>(radix_));
    id /= static_cast<NodeId>(radix_);
  }
  return c;
}

NodeId AddressSpace::idOf(const Coordinates& c) const noexcept {
  NodeId id = 0;
  for (int d = dims_ - 1; d >= 0; --d) {
    id = id * static_cast<NodeId>(radix_) + static_cast<NodeId>(c[d]);
  }
  return id;
}

}  // namespace swft
