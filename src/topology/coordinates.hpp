// Node addressing for k-ary n-cube networks.
//
// A node has an n-digit radix-k address {a_{n-1}, ..., a_0}; we store digits
// little-endian (digit 0 = dimension 0). Dimension count is bounded by
// kMaxDims, which covers every topology in the paper (n <= 3) with headroom
// for the dimensionality-scaling experiments (n <= 6 exercised in tests).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "src/util/inline_vector.hpp"

namespace swft {

inline constexpr int kMaxDims = 8;

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Little-endian radix-k digit vector.
struct Coordinates {
  InlineVector<std::int16_t, kMaxDims> digit;

  [[nodiscard]] int dims() const noexcept { return static_cast<int>(digit.size()); }
  std::int16_t& operator[](int d) noexcept { return digit[static_cast<std::size_t>(d)]; }
  std::int16_t operator[](int d) const noexcept { return digit[static_cast<std::size_t>(d)]; }

  friend bool operator==(const Coordinates& a, const Coordinates& b) noexcept {
    return a.digit == b.digit;
  }

  [[nodiscard]] std::string str() const;
};

/// Converts between linear NodeIds and Coordinates for a fixed (k, n).
class AddressSpace {
 public:
  AddressSpace(int radix, int dims);

  [[nodiscard]] int radix() const noexcept { return radix_; }
  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] NodeId nodeCount() const noexcept { return count_; }

  [[nodiscard]] Coordinates coordsOf(NodeId id) const noexcept;
  [[nodiscard]] NodeId idOf(const Coordinates& c) const noexcept;

  /// Wrap a (possibly out-of-range) digit into [0, k).
  [[nodiscard]] std::int16_t wrap(int digit) const noexcept {
    int k = radix_;
    int m = digit % k;
    return static_cast<std::int16_t>(m < 0 ? m + k : m);
  }

 private:
  int radix_;
  int dims_;
  NodeId count_;
};

}  // namespace swft
