#include "src/harness/table.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

SweepRow fakeRow(const std::string& label, double latency, double throughput,
                 std::uint64_t queued) {
  SweepRow row;
  row.point.label = label;
  row.point.cfg = SimConfig{};
  row.result.meanLatency = latency;
  row.result.throughput = throughput;
  row.result.messagesQueued = queued;
  row.result.completed = true;
  return row;
}

TEST(Table, ResultFieldLookup) {
  const SweepRow row = fakeRow("a", 123.5, 0.004, 7);
  EXPECT_EQ(resultField(row.result, "latency"), 123.5);
  EXPECT_EQ(resultField(row.result, "throughput"), 0.004);
  EXPECT_EQ(resultField(row.result, "queued"), 7.0);
  EXPECT_EQ(resultField(row.result, "saturated"), 0.0);
  EXPECT_THROW(static_cast<void>(resultField(row.result, "nonsense")),
               std::invalid_argument);
}

TEST(Table, FormatContainsLabelsAndValues) {
  const std::vector<SweepRow> rows{fakeRow("lambda=0.002", 100.25, 0.002, 0),
                                   fakeRow("lambda=0.004", 222.5, 0.004, 3)};
  const std::string out = formatTable(rows, {"latency", "throughput", "queued"});
  EXPECT_NE(out.find("lambda=0.002"), std::string::npos);
  EXPECT_NE(out.find("lambda=0.004"), std::string::npos);
  EXPECT_NE(out.find("100.25"), std::string::npos);
  EXPECT_NE(out.find("222.5"), std::string::npos);
  EXPECT_NE(out.find("latency"), std::string::npos);
}

TEST(Table, SaturationAnnotated) {
  SweepRow row = fakeRow("hot", 900, 0.01, 0);
  row.result.saturated = true;
  const std::string out = formatTable({row}, {"latency"});
  EXPECT_NE(out.find("[saturated]"), std::string::npos);
}

TEST(Table, CsvHasOneLinePerRowPlusHeader) {
  const std::vector<SweepRow> rows{fakeRow("a", 1, 2, 3), fakeRow("b", 4, 5, 6)};
  const CsvWriter csv = toCsv(rows);
  EXPECT_EQ(csv.rowCount(), 2u);
  const std::string text = csv.str();
  EXPECT_NE(text.find("mean_latency"), std::string::npos);
  EXPECT_NE(text.find("deterministic"), std::string::npos);
}

TEST(Table, ResultsDirHonoursEnv) {
  setenv("SWFT_RESULTS_DIR", "/tmp/swft_results_test", 1);
  EXPECT_EQ(resultsDir(), "/tmp/swft_results_test");
  unsetenv("SWFT_RESULTS_DIR");
  EXPECT_EQ(resultsDir(), "results");
}

}  // namespace
}  // namespace swft
