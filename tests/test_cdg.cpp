// Mechanized deadlock-freedom evidence (paper §4 "Deadlock freedom").
#include "src/verify/cdg.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

#include "src/fault/regions.hpp"

namespace swft {
namespace {

struct KnParam {
  int k;
  int n;
};

class CdgAcyclicity : public ::testing::TestWithParam<KnParam> {};

TEST_P(CdgAcyclicity, EcubeWithWrapClassesIsAcyclic) {
  const auto [k, n] = GetParam();
  const TorusTopology topo(k, n);
  const FaultSet faults(topo);
  const auto cdg = buildEcubeCdg(topo, faults, /*wrapClasses=*/true);
  EXPECT_GT(cdg.edgeCount(), 0u);
  EXPECT_FALSE(cdg.hasCycle())
      << "Dally-Seitz class split must break all ring cycles";
}

INSTANTIATE_TEST_SUITE_P(Grids, CdgAcyclicity,
                         ::testing::Values(KnParam{3, 2}, KnParam{4, 2}, KnParam{5, 2},
                                           KnParam{6, 2}, KnParam{8, 2}, KnParam{4, 3},
                                           KnParam{5, 3}, KnParam{3, 4}),
                         [](const auto& info) {
                           return knName(info.param.k, info.param.n);
                         });

class CdgNegativeControl : public ::testing::TestWithParam<KnParam> {};

TEST_P(CdgNegativeControl, CollapsingClassesReintroducesRingCycles) {
  // For k >= 4 the union of minimal paths covers every ring segment, so a
  // single-class torus CDG must contain a cycle — the very hazard the wrap
  // classes exist to break.
  const auto [k, n] = GetParam();
  const TorusTopology topo(k, n);
  const FaultSet faults(topo);
  const auto cdg = buildEcubeCdg(topo, faults, /*wrapClasses=*/false);
  EXPECT_TRUE(cdg.hasCycle());
}

INSTANTIATE_TEST_SUITE_P(Grids, CdgNegativeControl,
                         ::testing::Values(KnParam{4, 1}, KnParam{4, 2}, KnParam{8, 2},
                                           KnParam{6, 2}, KnParam{4, 3}),
                         [](const auto& info) {
                           return knName(info.param.k, info.param.n);
                         });

TEST(Cdg, TinyRingWithoutLongPathsIsAcyclicEvenUnclassed) {
  // k=3: minimal paths are single hops per direction, so no two consecutive
  // same-direction ring hops exist and no cycle can close.
  const TorusTopology topo(3, 2);
  const FaultSet faults(topo);
  const auto cdg = buildEcubeCdg(topo, faults, false);
  EXPECT_FALSE(cdg.hasCycle());
}

TEST(Cdg, FaultsOnlyRemoveDependencies) {
  const TorusTopology topo(5, 2);
  FaultSet faults(topo);
  const auto full = buildEcubeCdg(topo, faults, true);
  faults.failNode(12);
  const auto reduced = buildEcubeCdg(topo, faults, true);
  EXPECT_LT(reduced.edgeCount(), full.edgeCount());
  EXPECT_FALSE(reduced.hasCycle());
}

TEST(Cdg, PaperFaultRegionsPreserveAcyclicity) {
  // The e-cube sub-function restricted by any Fig. 5 region stays acyclic:
  // faults only remove paths, never add dependencies.
  const TorusTopology topo(8, 2);
  for (const RegionSpec& spec : {fig5Rect20(topo), fig5T10(topo), fig5Plus16(topo),
                                 fig5L9(topo), fig5U8(topo)}) {
    FaultSet faults(topo);
    applyRegion(faults, spec);
    const auto cdg = buildEcubeCdg(topo, faults, true);
    EXPECT_FALSE(cdg.hasCycle()) << regionShapeName(spec.shape);
  }
}

TEST(Cdg, ManualCycleDetection) {
  const TorusTopology topo(4, 1);
  ChannelDependencyGraph cdg(topo, 2);
  const ChannelClass a{0, 0, 0};
  const ChannelClass b{1, 0, 0};
  const ChannelClass c{2, 0, 0};
  cdg.addDependency(a, b);
  cdg.addDependency(b, c);
  EXPECT_FALSE(cdg.hasCycle());
  cdg.addDependency(c, a);
  EXPECT_TRUE(cdg.hasCycle());
}

TEST(Cdg, DuplicateEdgesNotDoubleCounted) {
  const TorusTopology topo(4, 1);
  ChannelDependencyGraph cdg(topo, 2);
  const ChannelClass a{0, 0, 0};
  const ChannelClass b{1, 0, 0};
  cdg.addDependency(a, b);
  cdg.addDependency(a, b);
  EXPECT_EQ(cdg.edgeCount(), 1u);
}

TEST(Cdg, VertexIndexingIsBijective) {
  const TorusTopology topo(4, 2);
  const ChannelDependencyGraph cdg(topo, 2);
  std::vector<bool> seen(cdg.vertexCount(), false);
  for (NodeId node = 0; node < topo.nodeCount(); ++node) {
    for (int port = 0; port < topo.networkPorts(); ++port) {
      for (std::uint8_t cls = 0; cls < 2; ++cls) {
        const auto idx = cdg.indexOf(
            ChannelClass{node, static_cast<std::uint8_t>(port), cls});
        ASSERT_LT(idx, seen.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

}  // namespace
}  // namespace swft
