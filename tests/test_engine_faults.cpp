// Fault-region traversal: messages forced through every Fig. 1 / Fig. 5
// region shape must still be delivered, via software absorptions, without
// deadlock or livelock.
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

RegionSpec centred(const TorusTopology& topo, RegionShape shape, int e0, int e1) {
  RegionSpec s;
  s.shape = shape;
  s.extent0 = e0;
  s.extent1 = e1;
  s.anchor.digit.resize(static_cast<std::size_t>(topo.dims()));
  for (int d = 0; d < topo.dims(); ++d) s.anchor[d] = 3;
  return s;
}

struct RegionCase {
  RegionShape shape;
  int e0, e1;
  RoutingMode mode;
};

class RegionTraversal : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RegionTraversal, TrafficCrossesTheRegion) {
  const auto& p = GetParam();
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 6;
  cfg.routing = p.mode;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.004;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 1200;
  cfg.maxCycles = 500'000;
  cfg.seed = 77;
  const TorusTopology topo(8, 2);
  cfg.faults.regions.push_back(centred(topo, p.shape, p.e0, p.e1));

  Network net(cfg);
  const SimResult r = net.run();

  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.escalations, 0u)
      << "paper fault shapes must be handled by reversal+detour alone";
  EXPECT_GT(r.messagesQueued, 0u) << "a centred region must absorb some traffic";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RegionTraversal,
    ::testing::Values(RegionCase{RegionShape::I, 1, 4, RoutingMode::Deterministic},
                      RegionCase{RegionShape::I, 1, 4, RoutingMode::Adaptive},
                      RegionCase{RegionShape::II, 1, 3, RoutingMode::Deterministic},
                      RegionCase{RegionShape::Rect, 3, 3, RoutingMode::Deterministic},
                      RegionCase{RegionShape::Rect, 3, 3, RoutingMode::Adaptive},
                      RegionCase{RegionShape::L, 4, 4, RoutingMode::Deterministic},
                      RegionCase{RegionShape::L, 4, 4, RoutingMode::Adaptive},
                      RegionCase{RegionShape::U, 4, 3, RoutingMode::Deterministic},
                      RegionCase{RegionShape::U, 4, 3, RoutingMode::Adaptive},
                      RegionCase{RegionShape::Plus, 4, 4, RoutingMode::Deterministic},
                      RegionCase{RegionShape::Plus, 4, 4, RoutingMode::Adaptive},
                      RegionCase{RegionShape::T, 4, 3, RoutingMode::Deterministic},
                      RegionCase{RegionShape::T, 4, 3, RoutingMode::Adaptive},
                      RegionCase{RegionShape::H, 4, 4, RoutingMode::Deterministic},
                      RegionCase{RegionShape::H, 4, 4, RoutingMode::Adaptive}),
    [](const auto& info) {
      return std::string(regionShapeName(info.param.shape)) +
             (info.param.mode == RoutingMode::Adaptive ? "_adp" : "_det");
    });

class DirectedThroughRegion : public ::testing::TestWithParam<RegionShape> {};

TEST_P(DirectedThroughRegion, SingleMessageAcrossTheRegionCentreline) {
  // Source directly west of the region, destination directly east, chosen so
  // the minimal e-cube path (x offset +4 = k/2, resolved positive) runs
  // straight through the faulty cells around x=3..5, y=4.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  cfg.maxCycles = 100'000;
  const TorusTopology topo(8, 2);
  cfg.faults.regions.push_back(centred(topo, GetParam(), 3, 3));

  Network net(cfg);
  net.injectTestMessage(at(topo, {2, 4}), at(topo, {6, 4}), 6, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  EXPECT_GE(r.messagesQueued, 1u);
  EXPECT_EQ(r.escalations, 0u);
  EXPECT_FALSE(r.deadlockSuspected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DirectedThroughRegion,
                         ::testing::Values(RegionShape::I, RegionShape::Rect, RegionShape::L,
                                           RegionShape::U, RegionShape::Plus, RegionShape::T,
                                           RegionShape::H),
                         [](const auto& info) {
                           return std::string(regionShapeName(info.param));
                         });

TEST(EngineFaults, MessageIntoConcavePocketEscapes) {
  // Destination sits just outside a U pocket; source fires into the opening.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  cfg.maxCycles = 200'000;
  const TorusTopology topo(8, 2);
  RegionSpec u = centred(topo, RegionShape::U, 4, 3);
  cfg.faults.regions.push_back(u);

  Network net(cfg);
  // The U occupies x in [3,6], base at y=3, arms up to y=5. A message from
  // inside the opening (4,7) heading to (4,2) must route around an arm.
  net.injectTestMessage(at(topo, {4, 7}), at(topo, {4, 2}), 4, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(EngineFaults, ThreeDimensionalRegionBlocksPlane) {
  // A planar region in dims (0,1) of an 8-ary 3-cube; traffic in the third
  // dimension is unaffected, traffic in-plane absorbs and recovers.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 3;
  cfg.vcs = 4;
  cfg.injectionRate = 0.002;
  cfg.messageLength = 8;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 800;
  cfg.maxCycles = 500'000;
  cfg.seed = 5;
  const TorusTopology topo(8, 3);
  cfg.faults.regions.push_back(centred(topo, RegionShape::Rect, 2, 2));

  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.escalations, 0u);
}

TEST(EngineFaults, LinkFaultOnlyNoDeadNodes) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.004;
  cfg.messageLength = 8;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 1000;
  cfg.seed = 6;
  cfg.faults.explicitLinks = {{10, 0, 0}, {30, 1, 1}, {45, 0, 1}};
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_GT(r.messagesQueued, 0u);
}

TEST(EngineFaults, DenseRandomFaultsStillLivelockFree) {
  // 12 faults in an 8x8 torus (~19% dead) — harsher than any paper config.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 6;
  cfg.injectionRate = 0.002;
  cfg.messageLength = 8;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 800;
  cfg.maxCycles = 1'000'000;
  cfg.faults.randomNodes = 12;
  cfg.seed = 8;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

}  // namespace
}  // namespace swft
