// The declarative experiment subsystem: registry contents, deterministic
// sharding, artifact naming/serialisation, and an end-to-end runExperiment
// round trip on a tiny synthetic spec.
#include "src/harness/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/harness/experiment_registry.hpp"
#include "src/harness/table.hpp"
#include "tests/naming.hpp"

namespace swft {
namespace {

// ---- registry (this binary links the bench/experiments object library) ----

TEST(ExperimentRegistry, AllPortedAndNewExperimentsRegistered) {
  auto& reg = ExperimentRegistry::instance();
  EXPECT_GE(reg.size(), 11u);
  for (const char* name :
       {"fig3", "fig4", "fig5", "fig6", "fig7", "model_vs_sim", "abl_buffer_depth",
        "abl_reinjection_overhead", "abl_vc_partition", "scan_radix", "faultscape"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistry, AllIsSortedAndComplete) {
  const auto specs = ExperimentRegistry::instance().all();
  ASSERT_EQ(specs.size(), ExperimentRegistry::instance().size());
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LT(specs[i - 1]->name, specs[i]->name);
  }
}

TEST(ExperimentRegistry, EveryGridHasUniqueLabelsAndValidColumns) {
  for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
    const auto points = spec->build();
    EXPECT_FALSE(points.empty()) << spec->name;
    std::set<std::string> labels;
    for (const auto& p : points) {
      EXPECT_TRUE(labels.insert(p.label).second)
          << spec->name << ": duplicate label " << p.label;
    }
    // Sharding and CSV merging key on the label, so uniqueness is load-bearing.
    SimResult dummy{};
    for (const std::string& col : spec->columns) {
      EXPECT_NO_THROW((void)resultField(dummy, col)) << spec->name << ": " << col;
    }
  }
}

TEST(ExperimentRegistry, DuplicateRegistrationThrows) {
  ExperimentSpec dup;
  dup.name = "fig3";
  dup.build = [] { return std::vector<SweepPoint>{}; };
  EXPECT_THROW(ExperimentRegistry::instance().add(std::move(dup)), std::invalid_argument);
  ExperimentSpec unnamed;
  unnamed.build = [] { return std::vector<SweepPoint>{}; };
  EXPECT_THROW(ExperimentRegistry::instance().add(std::move(unnamed)),
               std::invalid_argument);
}

// ---- sharding -------------------------------------------------------------

TEST(Sharding, ParseShard) {
  EXPECT_EQ(parseShard("0/4").index, 0);
  EXPECT_EQ(parseShard("0/4").count, 4);
  EXPECT_EQ(parseShard("3/4").index, 3);
  EXPECT_TRUE(parseShard("0/1").isAll());
  for (const char* bad : {"", "4", "4/4", "-1/4", "0/0", "a/4", "0/b", "1/4/2"}) {
    EXPECT_THROW((void)parseShard(bad), std::invalid_argument) << bad;
  }
}

TEST(Sharding, StableHashIsPinned) {
  // FNV-1a 64 test vectors — the cross-machine sharding contract. If this
  // test breaks, shards computed by different builds no longer agree.
  EXPECT_EQ(stableLabelHash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stableLabelHash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stableLabelHash("adp/nf3"), stableLabelHash("adp/nf3"));
  EXPECT_NE(stableLabelHash("adp/nf3"), stableLabelHash("adp/nf4"));
}

TEST(Sharding, ShardsPartitionEveryRegisteredGrid) {
  for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
    const auto points = spec->build();
    const int N = 4;
    std::multiset<std::string> unionLabels;
    std::size_t total = 0;
    for (int i = 0; i < N; ++i) {
      const auto mine = shardPoints(points, ShardSpec{i, N});
      total += mine.size();
      for (const auto& p : mine) unionLabels.insert(p.label);
    }
    EXPECT_EQ(total, points.size()) << spec->name;
    std::multiset<std::string> allLabels;
    for (const auto& p : points) allLabels.insert(p.label);
    EXPECT_EQ(unionLabels, allLabels) << spec->name;
  }
}

TEST(Sharding, ShardPreservesGridOrder) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 32; ++i) {
    SweepPoint p;
    p.label = catName({"p", std::to_string(i)});
    points.push_back(p);
  }
  const auto mine = shardPoints(points, ShardSpec{1, 3});
  std::size_t pos = 0;
  for (const auto& p : mine) {
    const auto it = std::find_if(points.begin() + static_cast<std::ptrdiff_t>(pos),
                                 points.end(),
                                 [&](const SweepPoint& q) { return q.label == p.label; });
    ASSERT_NE(it, points.end());
    pos = static_cast<std::size_t>(it - points.begin()) + 1;
  }
}

// ---- runExperiment end-to-end --------------------------------------------

ExperimentSpec tinySpec(const std::string& name) {
  ExperimentSpec spec;
  spec.name = name;
  spec.description = "synthetic 4-ary 2-cube grid";
  spec.columns = {"latency", "throughput"};
  spec.build = [] {
    std::vector<SweepPoint> points;
    for (int i = 0; i < 6; ++i) {
      SweepPoint p;
      p.label = catName({"pt", std::to_string(i)});
      p.cfg.radix = 4;
      p.cfg.dims = 2;
      p.cfg.vcs = 2;
      p.cfg.messageLength = 4;
      p.cfg.injectionRate = 0.002 * (i + 1);
      p.cfg.warmupMessages = 50;
      p.cfg.measuredMessages = 300;
      p.cfg.maxCycles = 200'000;
      p.cfg.seed = 77 + static_cast<std::uint64_t>(i);
      points.push_back(std::move(p));
    }
    return points;
  };
  return spec;
}

std::string sortedDataRows(const std::string& csv) {
  std::stringstream ss(csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(ss, line)) {
    // Concatenated shard files repeat the header; drop every occurrence.
    if (!line.empty() && !line.starts_with("label,")) rows.push_back(line);
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& r : rows) out += r + "\n";
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RunExperiment, ShardedRunsUnionEqualsUnshardedRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "swft_experiment_test").string();
  std::filesystem::create_directories(dir);
  const ExperimentSpec spec = tinySpec("tiny_shard");

  RunOptions opt;
  opt.outDir = dir;
  opt.threads = 2;
  opt.progress = false;
  std::ostringstream log;

  const ExperimentRun full = runExperiment(spec, opt, log);
  EXPECT_EQ(full.rows.size(), 6u);
  EXPECT_EQ(full.totalPoints, 6u);
  ASSERT_TRUE(std::filesystem::exists(full.artifactPath));

  std::string mergedCsv;
  std::size_t shardRows = 0;
  for (int i = 0; i < 4; ++i) {
    RunOptions sharded = opt;
    sharded.shard = ShardSpec{i, 4};
    const ExperimentRun run = runExperiment(spec, sharded, log);
    EXPECT_EQ(run.totalPoints, 6u);
    shardRows += run.rows.size();
    EXPECT_NE(run.artifactPath, full.artifactPath) << "shard artifacts must not collide";
    mergedCsv += slurp(run.artifactPath);
  }
  EXPECT_EQ(shardRows, 6u);
  // After a stable sort by row text (labels are unique and lead the row),
  // the concatenated shard outputs equal the unsharded output exactly.
  EXPECT_EQ(sortedDataRows(mergedCsv), sortedDataRows(slurp(full.artifactPath)));
}

TEST(RunExperiment, JsonArtifactMirrorsRows) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "swft_experiment_test").string();
  std::filesystem::create_directories(dir);
  ExperimentSpec spec = tinySpec("tiny_json");
  bool epilogueRan = false;
  spec.epilogue = [&](const std::vector<SweepRow>& rows) {
    epilogueRan = true;
    return "epilogue rows=" + std::to_string(rows.size()) + "\n";
  };

  RunOptions opt;
  opt.outDir = dir;
  opt.format = OutputFormat::Json;
  opt.threads = 1;
  opt.progress = false;
  std::ostringstream log;
  const ExperimentRun run = runExperiment(spec, opt, log);

  EXPECT_TRUE(epilogueRan);
  EXPECT_NE(log.str().find("epilogue rows=6"), std::string::npos);
  EXPECT_TRUE(run.artifactPath.ends_with("tiny_json.json"));
  const std::string json = slurp(run.artifactPath);
  EXPECT_NE(json.find("\"schema\": \"swft-experiment-rows-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"pt0\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic\": \"uniform\""), std::string::npos);
  EXPECT_EQ(rowsToJson(run.rows), json);
}

TEST(RunExperiment, OutDirWithMissingNestedDirectoriesIsCreatedUpFront) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "swft_experiment_test" / "missing" / "a" / "b")
                              .string();
  std::filesystem::remove_all(dir);
  ASSERT_FALSE(std::filesystem::exists(dir));

  RunOptions opt;
  opt.outDir = dir;
  opt.threads = 1;
  opt.progress = false;
  std::ostringstream log;
  const ExperimentRun run = runExperiment(tinySpec("tiny_mkdir"), opt, log);
  EXPECT_TRUE(std::filesystem::exists(run.artifactPath));
}

TEST(RunExperiment, UnwritableOutDirFailsBeforeSimulating) {
  const std::string parent =
      (std::filesystem::temp_directory_path() / "swft_experiment_test").string();
  std::filesystem::create_directories(parent);
  const std::string blocked = parent + "/outdir_is_a_file";
  { std::ofstream out(blocked); }

  RunOptions opt;
  opt.outDir = blocked;
  opt.threads = 1;
  std::ostringstream log;
  EXPECT_THROW((void)runExperiment(tinySpec("tiny_badout"), opt, log),
               std::runtime_error);
  // The failure must precede the sweep: no progress line was ever printed.
  EXPECT_EQ(log.str().find("tiny_badout/"), std::string::npos);
}

// ---- the content-addressed result cache ----------------------------------

TEST(RunExperiment, WarmCacheRerunIsAllHitsWithByteIdenticalArtifact) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "swft_experiment_cache").string();
  std::filesystem::remove_all(base);
  const ExperimentSpec spec = tinySpec("tiny_cache");

  RunOptions opt;
  opt.outDir = base + "/out";
  opt.useCache = true;
  opt.cacheDir = base + "/cache";
  opt.threads = 2;
  opt.progress = false;
  std::ostringstream log;

  const ExperimentRun cold = runExperiment(spec, opt, log);
  ASSERT_TRUE(cold.cacheUsed);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 6u);
  EXPECT_EQ(cold.cache.inserts, 6u);
  const std::string coldBytes = slurp(cold.artifactPath);
  ASSERT_FALSE(coldBytes.empty());

  // Warm re-run: zero simulations (hits == grid size), identical bytes.
  const ExperimentRun warm = runExperiment(spec, opt, log);
  EXPECT_EQ(warm.cache.hits, 6u);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.inserts, 0u);
  EXPECT_EQ(slurp(warm.artifactPath), coldBytes);

  // Cache hits must interchange across bit-identical engines: a sparse-mt
  // re-run of the same grid is still all hits.
  RunOptions mt = opt;
  mt.simThreads = 2;
  const ExperimentRun warmMt = runExperiment(spec, mt, log);
  EXPECT_EQ(warmMt.cache.hits, 6u);
  EXPECT_EQ(warmMt.cache.misses, 0u);
  EXPECT_EQ(slurp(warmMt.artifactPath), coldBytes);

  // Corrupting one entry downgrades exactly that point to a miss; the run
  // re-simulates it, re-stores it, and the artifact is unchanged.
  std::size_t corrupted = 0;
  for (const auto& e : std::filesystem::directory_iterator(opt.cacheDir)) {
    if (e.path().extension() != ".result") continue;
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
    ++corrupted;
    break;
  }
  ASSERT_EQ(corrupted, 1u);
  const ExperimentRun healed = runExperiment(spec, opt, log);
  EXPECT_EQ(healed.cache.hits, 5u);
  EXPECT_EQ(healed.cache.misses, 1u);
  EXPECT_EQ(healed.cache.inserts, 1u);
  EXPECT_EQ(slurp(healed.artifactPath), coldBytes);
  const ExperimentRun afterHeal = runExperiment(spec, opt, log);
  EXPECT_EQ(afterHeal.cache.hits, 6u);
}

TEST(RunExperiment, ShardedRunsFillTheCacheForTheUnshardedRun) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "swft_experiment_cache_shard").string();
  std::filesystem::remove_all(base);
  const ExperimentSpec spec = tinySpec("tiny_cache_shard");

  RunOptions opt;
  opt.outDir = base + "/out";
  opt.useCache = true;
  opt.cacheDir = base + "/cache";
  opt.threads = 1;
  opt.progress = false;
  std::ostringstream log;

  // Fan the grid out across 3 "processes" against one store…
  for (int i = 0; i < 3; ++i) {
    RunOptions sharded = opt;
    sharded.shard = ShardSpec{i, 3};
    (void)runExperiment(spec, sharded, log);
  }
  // …then the merged unsharded re-run pays for nothing.
  const ExperimentRun merged = runExperiment(spec, opt, log);
  EXPECT_EQ(merged.cache.hits, 6u);
  EXPECT_EQ(merged.cache.misses, 0u);
}

TEST(RunExperiment, CacheOffByDefaultAndTouchesNothing) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "swft_experiment_nocache").string();
  std::filesystem::remove_all(base);
  RunOptions opt;
  opt.outDir = base + "/out";
  opt.cacheDir = base + "/cache";  // ignored: useCache defaults to false
  opt.threads = 1;
  opt.progress = false;
  std::ostringstream log;
  const ExperimentRun run = runExperiment(tinySpec("tiny_no_store"), opt, log);
  EXPECT_FALSE(run.cacheUsed);
  EXPECT_FALSE(std::filesystem::exists(opt.cacheDir));
  EXPECT_EQ(log.str().find("cache:"), std::string::npos);
}

TEST(RunExperiment, ArtifactNames) {
  const ExperimentSpec spec = tinySpec("fig_x");
  RunOptions opt;
  EXPECT_EQ(artifactName(spec, opt), "fig_x.csv");
  opt.shard = ShardSpec{2, 4};
  EXPECT_EQ(artifactName(spec, opt), "fig_x.shard2-of-4.csv");
  opt.format = OutputFormat::Json;
  EXPECT_EQ(artifactName(spec, opt), "fig_x.shard2-of-4.json");
}

}  // namespace
}  // namespace swft
