#include "src/harness/heatmap.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

TEST(Heatmap, FaultMapMarksFaultyCells) {
  const TorusTopology topo(4, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {1, 2}));
  const std::string map = renderFaultMap(topo, faults);
  // 4 rows of "x x x x \n" = 4 lines, 8 chars + newline each.
  ASSERT_EQ(map.size(), 4u * 9u);
  int hashes = 0;
  for (char c : map) hashes += (c == '#');
  EXPECT_EQ(hashes, 1);
  // Row y=2 is printed second from the top (top-down order), column x=1.
  const std::size_t line = 1;  // y=3 first, y=2 second
  const std::size_t col = 1 * 2;
  EXPECT_EQ(map[line * 9 + col], '#');
}

TEST(Heatmap, FaultFreePlaneAllDots) {
  const TorusTopology topo(5, 3);
  const FaultSet faults(topo);
  const std::string map = renderFaultMap(topo, faults, 1, 2);
  for (char c : map) EXPECT_TRUE(c == '.' || c == ' ' || c == '\n');
}

TEST(Heatmap, AbsorptionIntensityAppearsNextToRegion) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.004;
  cfg.messageLength = 8;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1500;
  cfg.seed = 91;
  const TorusTopology topo(8, 2);
  cfg.faults.regions.push_back(fig5U8(topo));
  Network net(cfg);
  net.run();
  const std::string map = renderAbsorptionHeatmap(net);
  int faulty = 0;
  int hot = 0;
  for (char c : map) {
    faulty += (c == '#');
    hot += (c >= '1' && c <= '9');
  }
  EXPECT_EQ(faulty, 8) << "the U region has 8 nodes";
  EXPECT_GT(hot, 0) << "the messaging layers around the region must be hot";
}

TEST(Heatmap, AnchorSelectsPlaneIn3D) {
  const TorusTopology topo(4, 3);
  FaultSet faults(topo);
  faults.failNode(at(topo, {1, 1, 2}));
  Coordinates anchor;
  anchor.digit.resize(3);
  anchor[2] = 2;
  const std::string inPlane = renderFaultMap(topo, faults, 0, 1, &anchor);
  anchor[2] = 0;
  const std::string offPlane = renderFaultMap(topo, faults, 0, 1, &anchor);
  EXPECT_NE(inPlane.find('#'), std::string::npos);
  EXPECT_EQ(offPlane.find('#'), std::string::npos);
}

}  // namespace
}  // namespace swft
