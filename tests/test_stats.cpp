#include "src/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/config.hpp"
#include "src/util/rng.hpp"

namespace swft {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMaxVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, LargeStreamNumericallyStable) {
  RunningStat s;
  for (int i = 0; i < 1000000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(LatencyTracker, PercentilesOnUniformSamples) {
  LatencyTracker t;
  for (int i = 1; i <= 10000; ++i) t.add(static_cast<double>(i));
  // Log-bucket resolution is ~±19%; allow a generous band.
  EXPECT_NEAR(t.percentile(0.50), 5000, 5000 * 0.25);
  EXPECT_NEAR(t.percentile(0.95), 9500, 9500 * 0.25);
  EXPECT_NEAR(t.percentile(0.99), 9900, 9900 * 0.25);
  EXPECT_LE(t.percentile(0.50), t.percentile(0.95));
  EXPECT_LE(t.percentile(0.95), t.percentile(0.99));
}

TEST(LatencyTracker, PercentileOfConstantStream) {
  LatencyTracker t;
  for (int i = 0; i < 1000; ++i) t.add(64.0);
  EXPECT_NEAR(t.percentile(0.5), 64.0, 64.0 * 0.2);
  EXPECT_NEAR(t.percentile(0.99), 64.0, 64.0 * 0.2);
}

TEST(LatencyTracker, EmptyIsZero) {
  const LatencyTracker t;
  EXPECT_EQ(t.percentile(0.5), 0.0);
  EXPECT_EQ(t.ciHalfWidth95(), 0.0);
}

TEST(LatencyTracker, ConfidenceIntervalShrinksWithSamples) {
  Rng rng(7);
  LatencyTracker small;
  LatencyTracker large;
  for (int i = 0; i < 2 * 512 + 1; ++i) small.add(100.0 + 20.0 * rng.uniform01());
  for (int i = 0; i < 64 * 512; ++i) large.add(100.0 + 20.0 * rng.uniform01());
  EXPECT_GT(small.ciHalfWidth95(), 0.0);
  EXPECT_LT(large.ciHalfWidth95(), small.ciHalfWidth95());
  EXPECT_LT(large.ciHalfWidth95(), 1.0) << "32k samples of a 20-wide uniform";
}

TEST(LatencyTracker, CiZeroBeforeTwoBatches) {
  LatencyTracker t;
  for (int i = 0; i < 600; ++i) t.add(10.0);  // just past one 512-batch
  EXPECT_EQ(t.ciHalfWidth95(), 0.0);
}

TEST(Scale, EnvVariableSelectsPreset) {
  unsetenv("SWFT_SCALE");
  EXPECT_EQ(scaleFromEnv(), ScalePreset::Reduced);
  setenv("SWFT_SCALE", "paper", 1);
  EXPECT_EQ(scaleFromEnv(), ScalePreset::Paper);
  setenv("SWFT_SCALE", "anything-else", 1);
  EXPECT_EQ(scaleFromEnv(), ScalePreset::Reduced);
  unsetenv("SWFT_SCALE");
}

TEST(Scale, PaperPresetMatchesPaperSection52) {
  SimConfig cfg;
  applyScale(cfg, ScalePreset::Paper);
  EXPECT_EQ(cfg.warmupMessages, 10000u);
  EXPECT_EQ(cfg.warmupMessages + cfg.measuredMessages, 100000u)
      << "100,000 messages total, first 10,000 inhibited (paper §5.2)";
}

TEST(Scale, ReducedPresetIsSmallerButNonTrivial) {
  SimConfig cfg;
  applyScale(cfg, ScalePreset::Reduced);
  EXPECT_GE(cfg.measuredMessages, 2000u);
  EXPECT_GE(cfg.warmupMessages, 500u);
  EXPECT_LT(cfg.measuredMessages, 90000u);
}

}  // namespace
}  // namespace swft
