// The content-addressed result cache: exact SimResult round-trips, the
// canonical-config-key contract (pinned golden hashes; bit-identical engines
// collapse to one key; every semantic field separates keys), store/lookup
// behaviour under corruption, and the semantics-version invalidation rule.
#include "src/harness/result_cache.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "src/sim/config_canon.hpp"

namespace swft {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "swft_result_cache_test" / name;
  fs::remove_all(dir);
  return dir.string();
}

/// A SimResult with every field set to a value that would expose lossy
/// serialization: non-terminating binary fractions, values separated by one
/// ulp, a denormal, counter extremes, mixed flags.
SimResult trickyResult() {
  SimResult r;
  r.meanLatency = 1.0 / 3.0;
  r.latencyStddev = std::nextafter(1.0 / 3.0, 1.0);  // one ulp away
  r.maxLatency = 1e308;
  r.latencyP50 = std::numeric_limits<double>::denorm_min();
  r.latencyP95 = 0.1;
  r.latencyP99 = 123456789.000000001;
  r.latencyCi95 = 4.9406564584124654e-10;
  r.meanHops = 7.0000000000000009;
  r.cycles = ~std::uint64_t{0};
  r.generatedTotal = 1;
  r.deliveredTotal = 0x123456789abcdefULL;
  r.deliveredMeasured = 8000;
  r.throughput = 0.014599999999999999;
  r.offeredLoad = 0.0146;
  r.messagesQueued = 42;
  r.absorbedMessages = 41;
  r.reversals = 3;
  r.detours = 2;
  r.escalations = 1;
  r.saturated = true;
  r.deadlockSuspected = false;
  r.completed = true;
  return r;
}

void expectBitIdentical(const SimResult& a, const SimResult& b) {
  const auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };
  EXPECT_EQ(bits(a.meanLatency), bits(b.meanLatency));
  EXPECT_EQ(bits(a.latencyStddev), bits(b.latencyStddev));
  EXPECT_EQ(bits(a.maxLatency), bits(b.maxLatency));
  EXPECT_EQ(bits(a.latencyP50), bits(b.latencyP50));
  EXPECT_EQ(bits(a.latencyP95), bits(b.latencyP95));
  EXPECT_EQ(bits(a.latencyP99), bits(b.latencyP99));
  EXPECT_EQ(bits(a.latencyCi95), bits(b.latencyCi95));
  EXPECT_EQ(bits(a.meanHops), bits(b.meanHops));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.generatedTotal, b.generatedTotal);
  EXPECT_EQ(a.deliveredTotal, b.deliveredTotal);
  EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
  EXPECT_EQ(bits(a.throughput), bits(b.throughput));
  EXPECT_EQ(bits(a.offeredLoad), bits(b.offeredLoad));
  EXPECT_EQ(a.messagesQueued, b.messagesQueued);
  EXPECT_EQ(a.absorbedMessages, b.absorbedMessages);
  EXPECT_EQ(a.reversals, b.reversals);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected);
  EXPECT_EQ(a.completed, b.completed);
}

// ---- SimResult serialization ----------------------------------------------

TEST(ResultSerialization, RoundTripIsExactForEveryField) {
  const SimResult r = trickyResult();
  const auto back = deserializeResult(serializeResult(r));
  ASSERT_TRUE(back.has_value());
  expectBitIdentical(r, *back);
}

TEST(ResultSerialization, DefaultResultRoundTrips) {
  const auto back = deserializeResult(serializeResult(SimResult{}));
  ASSERT_TRUE(back.has_value());
  expectBitIdentical(SimResult{}, *back);
}

TEST(ResultSerialization, InfinityAndNanSurvive) {
  SimResult r;
  r.maxLatency = std::numeric_limits<double>::infinity();
  r.latencyCi95 = std::numeric_limits<double>::quiet_NaN();
  const auto back = deserializeResult(serializeResult(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isinf(back->maxLatency));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.latencyCi95),
            std::bit_cast<std::uint64_t>(back->latencyCi95));
}

TEST(ResultSerialization, RejectsCorruptedText) {
  const std::string good = serializeResult(trickyResult());
  ASSERT_TRUE(deserializeResult(good).has_value());

  EXPECT_FALSE(deserializeResult("").has_value());
  EXPECT_FALSE(deserializeResult("swft-result-v999\n").has_value());
  // Truncation at any field boundary.
  EXPECT_FALSE(deserializeResult(good.substr(0, good.size() / 2)).has_value());
  // A flipped field name.
  std::string renamed = good;
  renamed.replace(renamed.find("mean_hops"), 9, "mean_hopz");
  EXPECT_FALSE(deserializeResult(renamed).has_value());
  // A garbled hex value (wrong length).
  std::string short_hex = good;
  const auto at = short_hex.find("mean_latency ");
  short_hex.erase(at + 13, 1);
  EXPECT_FALSE(deserializeResult(short_hex).has_value());
  // A non-hex character in a double.
  std::string bad_hex = good;
  bad_hex[bad_hex.find("mean_latency ") + 13] = 'g';
  EXPECT_FALSE(deserializeResult(bad_hex).has_value());
}

// ---- canonical config keys -------------------------------------------------

TEST(CanonicalKey, GoldenHashesArePinned) {
  // Cross-build cache contract: every machine and compiler must derive the
  // same content address for the same config, or shared stores stop
  // interchanging. If an intentional key-format or semantics change breaks
  // this test, re-pin the values AND bump kEngineSemanticsVersion.
  ASSERT_EQ(kEngineSemanticsVersion, 1u);

  const SimConfig def;
  EXPECT_EQ(canonicalConfigHash(def), 0x9fc5300b922a368cULL);

  SimConfig fig3ish;
  fig3ish.radix = 8;
  fig3ish.dims = 2;
  fig3ish.vcs = 6;
  fig3ish.messageLength = 64;
  fig3ish.injectionRate = 0.004;
  fig3ish.routing = RoutingMode::Adaptive;
  fig3ish.faults.randomNodes = 3;
  fig3ish.seed = 4242;
  EXPECT_EQ(canonicalConfigHash(fig3ish), 0x971fa17b8bd2e3acULL);

  SimConfig regioned;
  regioned.pattern = TrafficPattern::Hotspot;
  regioned.hotspotFraction = 0.25;
  regioned.faults.regions.push_back(RegionSpec{});  // default 3x3 rect at origin
  regioned.faults.explicitNodes = {7, 9};
  regioned.faults.explicitLinks = {{3, 1, 0}};
  EXPECT_EQ(canonicalConfigHash(regioned), 0x8751284f434c5a7bULL);
}

TEST(CanonicalKey, BitIdenticalEnginesCollapseToOneKey) {
  SimConfig base;
  base.injectionRate = 0.008;
  base.seed = 99;
  const std::string key = canonicalConfigKey(base);

  for (const EngineKind engine :
       {EngineKind::Sparse, EngineKind::Dense, EngineKind::SparseMt}) {
    for (const int threads : {1, 2, 5, 8}) {
      SimConfig c = base;
      c.engine = engine;
      c.simThreads = threads;
      EXPECT_EQ(canonicalConfigKey(c), key)
          << "engine=" << static_cast<int>(engine) << " sim_threads=" << threads;
    }
  }
}

TEST(CanonicalKey, EverySemanticFieldSeparatesKeys) {
  const SimConfig base;
  std::set<std::uint64_t> hashes{canonicalConfigHash(base)};

  // Each mutator changes exactly one semantic field; every resulting key
  // must differ from the base AND from every other mutation.
  const std::vector<std::function<void(SimConfig&)>> mutators = {
      [](SimConfig& c) { c.radix = 16; },
      [](SimConfig& c) { c.dims = 3; },
      [](SimConfig& c) { c.vcs = 6; },
      [](SimConfig& c) { c.escapeVcs = 1; },
      [](SimConfig& c) { c.bufferDepth = 8; },
      [](SimConfig& c) { c.routerDecisionTime = 1; },
      [](SimConfig& c) { c.messageLength = 64; },
      [](SimConfig& c) { c.injectionRate = 0.0051; },
      [](SimConfig& c) { c.injectionRate = std::nextafter(0.005, 1.0); },
      [](SimConfig& c) { c.pattern = TrafficPattern::Transpose; },
      [](SimConfig& c) { c.hotspotFraction = 0.2; },
      [](SimConfig& c) { c.routing = RoutingMode::Adaptive; },
      [](SimConfig& c) { c.reinjectDelay = 20; },
      [](SimConfig& c) { c.livelockThreshold = 48; },
      [](SimConfig& c) { c.faults.randomNodes = 3; },
      [](SimConfig& c) { c.faults.explicitNodes = {5}; },
      [](SimConfig& c) { c.faults.explicitLinks = {{0, 0, 1}}; },
      [](SimConfig& c) { c.faults.regions.push_back(RegionSpec{}); },
      [](SimConfig& c) { c.warmupMessages = 100; },
      [](SimConfig& c) { c.measuredMessages = 100; },
      [](SimConfig& c) { c.maxCycles = 1; },
      [](SimConfig& c) { c.deadlockWindow = 1; },
      [](SimConfig& c) { c.seed = 2; },
  };
  for (std::size_t i = 0; i < mutators.size(); ++i) {
    SimConfig c = base;
    mutators[i](c);
    EXPECT_TRUE(hashes.insert(canonicalConfigHash(c)).second)
        << "mutator " << i << " did not change the canonical key";
  }
  EXPECT_EQ(hashes.size(), mutators.size() + 1);
}

TEST(CanonicalKey, RegionGeometrySeparatesKeys) {
  SimConfig base;
  RegionSpec region;
  region.anchor.digit.resize(2);
  region.anchor[0] = 1;
  region.anchor[1] = 1;
  base.faults.regions.push_back(region);
  const std::uint64_t h0 = canonicalConfigHash(base);

  std::set<std::uint64_t> hashes{h0};
  for (const auto& mutate : std::vector<std::function<void(RegionSpec&)>>{
           [](RegionSpec& r) { r.shape = RegionShape::U; },
           [](RegionSpec& r) { r.extent0 = 4; },
           [](RegionSpec& r) { r.extent1 = 5; },
           [](RegionSpec& r) { r.dim1 = 2; },
           [](RegionSpec& r) { r.anchor[0] = 2; },
       }) {
    SimConfig c = base;
    mutate(c.faults.regions[0]);
    EXPECT_TRUE(hashes.insert(canonicalConfigHash(c)).second);
  }
}

TEST(CanonicalKey, SemanticsVersionSeparatesKeys) {
  const SimConfig c;
  EXPECT_NE(canonicalConfigHash(c, 1), canonicalConfigHash(c, 2));
  EXPECT_NE(canonicalConfigKey(c, 1), canonicalConfigKey(c, 2));
}

TEST(CanonicalKey, ZeroSignIsCanonicalized) {
  SimConfig pos;
  pos.hotspotFraction = 0.0;
  SimConfig neg;
  neg.hotspotFraction = -0.0;
  EXPECT_EQ(canonicalConfigKey(pos), canonicalConfigKey(neg));
}

// ---- the on-disk store -----------------------------------------------------

TEST(ResultCache, StoreThenLookupIsExactHit) {
  ResultCache cache(freshDir("roundtrip"));
  SimConfig cfg;
  cfg.seed = 7;
  const SimResult r = trickyResult();

  EXPECT_FALSE(cache.lookup(cfg).has_value());
  EXPECT_TRUE(cache.store(cfg, r));
  const auto hit = cache.lookup(cfg);
  ASSERT_TRUE(hit.has_value());
  expectBitIdentical(r, *hit);

  // A different seed is a different content address.
  SimConfig other = cfg;
  other.seed = 8;
  EXPECT_FALSE(cache.lookup(other).has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(ResultCache, EnginesShareEntries) {
  ResultCache cache(freshDir("engines"));
  SimConfig sparse;
  sparse.engine = EngineKind::Sparse;
  EXPECT_TRUE(cache.store(sparse, trickyResult()));

  SimConfig mt = sparse;
  mt.engine = EngineKind::SparseMt;
  mt.simThreads = 8;
  EXPECT_TRUE(cache.lookup(mt).has_value());
  SimConfig dense = sparse;
  dense.engine = EngineKind::Dense;
  EXPECT_TRUE(cache.lookup(dense).has_value());
}

TEST(ResultCache, CorruptEntryIsAMissAndRestorable) {
  const std::string dir = freshDir("corrupt");
  ResultCache cache(dir);
  SimConfig cfg;
  const SimResult r = trickyResult();
  ASSERT_TRUE(cache.store(cfg, r));

  // Garble the single entry on disk.
  const std::string path = dir + "/" + cache.keyFor(cfg) + ".result";
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "swft-cache-entry-v1\nnot a real entry\n";
  }
  EXPECT_FALSE(cache.lookup(cfg).has_value()) << "corrupt entry must read as a miss";

  // Re-storing repairs it.
  EXPECT_TRUE(cache.store(cfg, r));
  const auto hit = cache.lookup(cfg);
  ASSERT_TRUE(hit.has_value());
  expectBitIdentical(r, *hit);
}

TEST(ResultCache, TruncatedEntryIsAMiss) {
  const std::string dir = freshDir("truncated");
  ResultCache cache(dir);
  SimConfig cfg;
  ASSERT_TRUE(cache.store(cfg, trickyResult()));
  const std::string path = dir + "/" + cache.keyFor(cfg) + ".result";
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  const std::string full = buf.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() - 20);
  }
  EXPECT_FALSE(cache.lookup(cfg).has_value());
}

TEST(ResultCache, SemanticsVersionBumpInvalidatesEverything) {
  const std::string dir = freshDir("version");
  ResultCache v1(dir, kEngineSemanticsVersion);
  SimConfig cfg;
  ASSERT_TRUE(v1.store(cfg, trickyResult()));
  ASSERT_TRUE(v1.lookup(cfg).has_value());

  // The same store opened under a bumped version sees only misses…
  ResultCache v2(dir, kEngineSemanticsVersion + 1);
  EXPECT_FALSE(v2.lookup(cfg).has_value());
  // …and re-populates under new addresses without disturbing v1 entries.
  EXPECT_TRUE(v2.store(cfg, trickyResult()));
  EXPECT_TRUE(v2.lookup(cfg).has_value());
  EXPECT_TRUE(v1.lookup(cfg).has_value());
  EXPECT_EQ(ResultCache::scanDir(dir).entries, 2u);
}

TEST(ResultCache, CreatesMissingNestedDirectories) {
  const std::string dir = freshDir("nested") + "/a/b/c";
  ASSERT_FALSE(std::filesystem::exists(dir));
  ResultCache cache(dir);
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_TRUE(cache.store(SimConfig{}, SimResult{}));
  EXPECT_TRUE(cache.lookup(SimConfig{}).has_value());
}

TEST(ResultCache, ThrowsWhenDirIsAFile) {
  const std::string parent = freshDir("blocked");
  std::filesystem::create_directories(parent);
  const std::string file = parent + "/occupied";
  { std::ofstream out(file); }
  EXPECT_THROW(ResultCache{file}, std::runtime_error);
}

TEST(ResultCache, ScanDirCountsOnlyEntries) {
  const std::string dir = freshDir("scan");
  ResultCache cache(dir);
  EXPECT_EQ(ResultCache::scanDir(dir).entries, 0u);
  SimConfig cfg;
  for (std::uint64_t s = 0; s < 3; ++s) {
    cfg.seed = s;
    ASSERT_TRUE(cache.store(cfg, SimResult{}));
  }
  { std::ofstream out(dir + "/not_an_entry.txt"); }
  const auto info = ResultCache::scanDir(dir);
  EXPECT_EQ(info.entries, 3u);
  EXPECT_GT(info.bytes, 0u);
}

TEST(ResultCache, DefaultCacheDirHonoursEnvironment) {
  const char* old = std::getenv("SWFT_CACHE_DIR");
  const std::string oldValue = old != nullptr ? old : "";
  ::setenv("SWFT_CACHE_DIR", "/tmp/swft_cache_env_test", 1);
  EXPECT_EQ(defaultCacheDir(), "/tmp/swft_cache_env_test");
  ::unsetenv("SWFT_CACHE_DIR");
  EXPECT_TRUE(defaultCacheDir().ends_with("/cache"));
  if (old != nullptr) ::setenv("SWFT_CACHE_DIR", oldValue.c_str(), 1);
}

}  // namespace
}  // namespace swft
