#include "src/sim/gen_calendar.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(GenCalendar, DueNodesSortedByIdWithinACycle) {
  GenCalendar cal;
  cal.schedule(5, 2);
  cal.schedule(3, 2);
  cal.schedule(9, 2);
  cal.schedule(7, 4);
  EXPECT_TRUE(cal.takeDue(0).empty());
  EXPECT_TRUE(cal.takeDue(1).empty());
  const std::vector<NodeId> due = cal.takeDue(2);
  EXPECT_EQ(due, (std::vector<NodeId>{3, 5, 9}));
  EXPECT_TRUE(cal.takeDue(3).empty());
  EXPECT_EQ(cal.takeDue(4), (std::vector<NodeId>{7}));
}

TEST(GenCalendar, RescheduleAfterConsumption) {
  GenCalendar cal;
  cal.schedule(1, 1);
  EXPECT_EQ(cal.takeDue(1), (std::vector<NodeId>{1}));
  cal.schedule(1, 3);
  EXPECT_TRUE(cal.takeDue(2).empty());
  EXPECT_EQ(cal.takeDue(3), (std::vector<NodeId>{1}));
}

TEST(GenCalendar, OverflowBeyondWindowIsResifted) {
  GenCalendar cal;
  const std::uint64_t far = GenCalendar::kWindow + 5;
  cal.schedule(2, far);
  cal.schedule(4, 3);
  EXPECT_EQ(cal.pendingOverflow(), 1u);
  EXPECT_EQ(cal.takeDue(3), (std::vector<NodeId>{4}));
  // Window advances as cycles are consumed; the overflow entry lands in its
  // ring bucket and fires at exactly its cycle.
  for (std::uint64_t c = 4; c < far; ++c) {
    EXPECT_TRUE(cal.takeDue(c).empty()) << "cycle " << c;
  }
  EXPECT_EQ(cal.takeDue(far), (std::vector<NodeId>{2}));
  EXPECT_EQ(cal.pendingOverflow(), 0u);
}

TEST(GenCalendar, DeepOverflowSurvivesMultipleWindowAdvances) {
  GenCalendar cal;
  const std::uint64_t far = 3 * GenCalendar::kWindow + 2;
  cal.schedule(8, far);
  // Jump ahead one full window: the entry must still be pending, not lost.
  EXPECT_TRUE(cal.takeDue(GenCalendar::kWindow + 1).empty());
  EXPECT_EQ(cal.pendingOverflow(), 1u);
  EXPECT_EQ(cal.takeDue(far), (std::vector<NodeId>{8}));
}

TEST(GenCalendar, ManyNodesOneBucketDrainOnce) {
  GenCalendar cal;
  for (NodeId id = 0; id < 100; ++id) cal.schedule(99 - id, 7);
  const std::vector<NodeId> due = cal.takeDue(7);
  ASSERT_EQ(due.size(), 100u);
  for (NodeId id = 0; id < 100; ++id) EXPECT_EQ(due[id], id);
  EXPECT_TRUE(cal.takeDue(7 + GenCalendar::kWindow).empty())
      << "bucket must not re-deliver after the window wraps";
}

}  // namespace
}  // namespace swft
