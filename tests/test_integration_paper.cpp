// Scaled-down versions of the paper's five experiments, asserting the
// qualitative orderings the figures report. The swft_bench experiments
// regenerate the full curves; these tests guard the shapes in CI.
//
// SWFT_SCALE=paper multiplies every message budget and cycle bound by
// kPaperFactor, lifting the default 2000-message protocol to the paper's
// 90k measured messages — the nightly workflow runs the integration label
// that way. The default reduced scale is untouched (factor 1).
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

constexpr std::uint32_t kPaperFactor = 45;

std::uint32_t scaledMsgs(std::uint32_t n) {
  return scaleFromEnv() == ScalePreset::Paper ? n * kPaperFactor : n;
}

std::uint64_t scaledCycles(std::uint64_t n) {
  return scaleFromEnv() == ScalePreset::Paper ? n * kPaperFactor : n;
}

SimConfig mini(int k, int n, int vcs, int msgLen, double rate, RoutingMode mode,
               std::uint64_t seed) {
  SimConfig cfg;
  cfg.radix = k;
  cfg.dims = n;
  cfg.vcs = vcs;
  cfg.messageLength = msgLen;
  cfg.injectionRate = rate;
  cfg.routing = mode;
  cfg.warmupMessages = scaledMsgs(300);
  cfg.measuredMessages = scaledMsgs(2000);
  cfg.maxCycles = scaledCycles(700'000);
  cfg.seed = seed;
  return cfg;
}

// --- Fig. 3: 8-ary 2-cube latency vs load, by nf and M --------------------
TEST(PaperFig3, FaultsShiftLatencyUp2D) {
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    SimConfig base = mini(8, 2, 4, 32, 0.005, mode, 303);
    SimConfig nf5 = base;
    nf5.faults.randomNodes = 5;
    const SimResult r0 = runSimulation(base);
    const SimResult r5 = runSimulation(nf5);
    ASSERT_TRUE(r0.completed);
    ASSERT_TRUE(r5.completed);
    EXPECT_GT(r5.meanLatency, r0.meanLatency * 0.98)
        << "Fig. 3: latency rises with faulty-node count";
    EXPECT_GT(r5.messagesQueued, r0.messagesQueued);
  }
}

TEST(PaperFig3, LongerMessagesHigherLatency2D) {
  const SimResult m32 = runSimulation(mini(8, 2, 6, 32, 0.004, RoutingMode::Deterministic, 305));
  const SimResult m64 = runSimulation(mini(8, 2, 6, 64, 0.004, RoutingMode::Deterministic, 305));
  ASSERT_TRUE(m32.completed);
  if (m64.completed) {
    EXPECT_GT(m64.meanLatency, m32.meanLatency + 20)
        << "Fig. 3: M=64 curves sit above M=32 curves";
  }
}

// --- Fig. 4: 8-ary 3-cube --------------------------------------------------
TEST(PaperFig4, FaultsShiftLatencyUp3D) {
  SimConfig base = mini(8, 3, 4, 32, 0.004, RoutingMode::Deterministic, 404);
  base.measuredMessages = scaledMsgs(1500);
  SimConfig nf12 = base;
  nf12.faults.randomNodes = 12;
  const SimResult r0 = runSimulation(base);
  const SimResult r12 = runSimulation(nf12);
  ASSERT_TRUE(r0.completed);
  ASSERT_TRUE(r12.completed);
  EXPECT_EQ(r0.messagesQueued, 0u);
  EXPECT_GT(r12.messagesQueued, 0u);
  EXPECT_GT(r12.meanLatency, r0.meanLatency * 0.98);
  EXPECT_EQ(r12.escalations, 0u);
}

// --- Fig. 5: fault-region shapes -------------------------------------------
TEST(PaperFig5, ConcaveRegionsCostMoreThanConvex) {
  // Compare the rectangular (convex) block against the U (concave) pocket at
  // matched traffic. The paper: "mean message latency is greater in the
  // presence of concave than for convex fault regions" per absorbed message.
  const TorusTopology topo(8, 2);
  SimConfig rect = mini(8, 2, 10, 32, 0.004, RoutingMode::Deterministic, 505);
  rect.faults.regions.push_back(fig5U8(topo));
  SimConfig conv = mini(8, 2, 10, 32, 0.004, RoutingMode::Deterministic, 505);
  RegionSpec block;  // convex 2x4 block, same 8-node cardinality as the U
  block.shape = RegionShape::Rect;
  block.extent0 = 2;
  block.extent1 = 4;
  block.anchor = fig5U8(topo).anchor;
  conv.faults.regions.push_back(block);

  const SimResult u = runSimulation(rect);
  const SimResult b = runSimulation(conv);
  ASSERT_TRUE(u.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(u.messagesQueued, 0u);
  EXPECT_GT(b.messagesQueued, 0u);
  // Concave pocket traps messages for repeated absorptions.
  EXPECT_GE(static_cast<double>(u.messagesQueued) / static_cast<double>(u.absorbedMessages),
            static_cast<double>(b.messagesQueued) / static_cast<double>(b.absorbedMessages))
      << "entering/exiting a concave region is harder (paper Fig. 5)";
}

TEST(PaperFig5, AdaptiveBeatsDeterministicOnRegions) {
  const TorusTopology topo(8, 2);
  SimConfig det = mini(8, 2, 10, 32, 0.005, RoutingMode::Deterministic, 506);
  det.faults.regions.push_back(fig5L9(topo));
  SimConfig adp = det;
  adp.routing = RoutingMode::Adaptive;
  const SimResult d = runSimulation(det);
  const SimResult a = runSimulation(adp);
  ASSERT_TRUE(d.completed);
  ASSERT_TRUE(a.completed);
  EXPECT_LT(a.meanLatency, d.meanLatency * 1.05)
      << "Fig. 5: adaptive latency substantially lower than deterministic";
  EXPECT_LT(a.messagesQueued, d.messagesQueued);
}

// --- Fig. 6: throughput vs number of faults ---------------------------------
TEST(PaperFig6, ThroughputDegradesGracefully) {
  // 16-ary 2-cube, M=32, V=6 (scaled down in message count only).
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    SimConfig cfg0 = mini(16, 2, 6, 32, 0.004, mode, 606);
    cfg0.measuredMessages = scaledMsgs(1500);
    SimConfig cfg8 = cfg0;
    cfg8.faults.randomNodes = 8;
    const SimResult r0 = runSimulation(cfg0);
    const SimResult r8 = runSimulation(cfg8);
    ASSERT_TRUE(r0.completed);
    ASSERT_TRUE(r8.completed);
    // "Network performance is not seriously affected by the presence of
    // failures": below saturation, accepted throughput stays near offered.
    EXPECT_NEAR(r8.throughput, r0.throughput, r0.throughput * 0.15);
  }
}

// --- Fig. 7: messages queued vs faults and generation rate ------------------
TEST(PaperFig7, QueuedCountsGrowWithFaultsAndLoad) {
  // 8-ary 3-cube, M=32, V=10; rates 70/100 messages per 10k cycles. The
  // Fig. 7 protocol is fixed-DURATION: at a higher generation rate more
  // messages enter the network in the same interval, so more encounter the
  // static faults and are queued (see EXPERIMENTS.md, E5 interpretation).
  SimConfig lo = mini(8, 3, 10, 32, 0.0070, RoutingMode::Deterministic, 707);
  lo.faults.randomNodes = 6;
  lo.warmupMessages = 0;
  lo.measuredMessages = ~std::uint32_t{0};  // never reached: run to maxCycles
  lo.maxCycles = scaledCycles(15'000);
  SimConfig hi = lo;
  hi.injectionRate = 0.0100;
  const SimResult rLo = runSimulation(lo);
  const SimResult rHi = runSimulation(hi);
  ASSERT_FALSE(rLo.deadlockSuspected);
  ASSERT_FALSE(rHi.deadlockSuspected);
  EXPECT_GT(rLo.messagesQueued, 0u);
  // Deterministic routing roughly doubles queued messages from rate 70->100
  // in the paper; require a clear increase over the same duration.
  EXPECT_GT(static_cast<double>(rHi.messagesQueued),
            static_cast<double>(rLo.messagesQueued) * 1.15);
}

TEST(PaperFig7, AdaptiveQueuedNearlyFlatAcrossLoad) {
  SimConfig lo = mini(8, 3, 10, 32, 0.0070, RoutingMode::Adaptive, 708);
  lo.measuredMessages = scaledMsgs(1500);
  lo.faults.randomNodes = 6;
  SimConfig hi = lo;
  hi.injectionRate = 0.0100;
  SimConfig det = lo;
  det.routing = RoutingMode::Deterministic;
  const SimResult rLo = runSimulation(lo);
  const SimResult rHi = runSimulation(hi);
  const SimResult rDet = runSimulation(det);
  ASSERT_TRUE(rLo.completed);
  ASSERT_TRUE(rHi.completed);
  ASSERT_TRUE(rDet.completed);
  EXPECT_LT(rHi.messagesQueued, rDet.messagesQueued)
      << "adaptive queues fewer than deterministic at every rate (Fig. 7)";
  // "Remaining relatively constant for adaptive routing".
  if (rLo.messagesQueued > 50) {
    EXPECT_LT(static_cast<double>(rHi.messagesQueued),
              static_cast<double>(rLo.messagesQueued) * 2.0);
  }
}

}  // namespace
}  // namespace swft
