#include "src/harness/sweep.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

namespace swft {
namespace {

std::string pointLabel(int i) { return catName({"p", std::to_string(i)}); }

SweepPoint tinyPoint(const std::string& label, double rate, std::uint64_t seed) {
  SweepPoint p;
  p.label = label;
  p.cfg.radix = 4;
  p.cfg.dims = 2;
  p.cfg.vcs = 2;
  p.cfg.messageLength = 4;
  p.cfg.injectionRate = rate;
  p.cfg.warmupMessages = 50;
  p.cfg.measuredMessages = 300;
  p.cfg.maxCycles = 200'000;
  p.cfg.seed = seed;
  return p;
}

TEST(Sweep, PreservesSubmissionOrder) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 4; ++i) {
    points.push_back(tinyPoint(pointLabel(i), 0.002 * (i + 1), 10 + i));
  }
  const auto rows = runSweep(points, 1);
  ASSERT_EQ(rows.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rows[static_cast<std::size_t>(i)].point.label,
                                        pointLabel(i));
}

TEST(Sweep, ParallelAndSerialResultsIdentical) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back(tinyPoint(pointLabel(i), 0.003, 20 + i));
  }
  const auto serial = runSweep(points, 1);
  const auto parallel = runSweep(points, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.meanLatency, parallel[i].result.meanLatency);
    EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles);
    EXPECT_EQ(serial[i].result.messagesQueued, parallel[i].result.messagesQueued);
  }
}

TEST(Sweep, CallbackInvokedOncePerPoint) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 3; ++i) points.push_back(tinyPoint("x", 0.002, 30 + i));
  int calls = 0;
  runSweep(points, 2, [&](const SweepRow&) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(runSweep({}, 4).empty());
}

TEST(Sweep, PoolThreadsOversubscriptionGuard) {
  // Single-threaded grids keep the historical behaviour: auto -> hardware
  // concurrency, explicit requests honoured verbatim.
  EXPECT_EQ(sweepPoolThreads(0, 8, 1), 8u);
  EXPECT_EQ(sweepPoolThreads(3, 8, 1), 3u);
  EXPECT_EQ(sweepPoolThreads(16, 8, 1), 16u);  // explicit oversubscribe allowed

  // sparse-mt grids budget the pool so pool x sim_threads <= concurrency.
  EXPECT_EQ(sweepPoolThreads(0, 8, 4), 2u);
  EXPECT_EQ(sweepPoolThreads(0, 8, 2), 4u);
  EXPECT_EQ(sweepPoolThreads(0, 8, 3), 2u);   // floor(8/3)
  EXPECT_EQ(sweepPoolThreads(8, 8, 4), 2u);   // explicit request clamped
  EXPECT_EQ(sweepPoolThreads(1, 8, 4), 1u);   // under budget -> honoured
  EXPECT_EQ(sweepPoolThreads(0, 8, 16), 1u);  // wider than the machine
  EXPECT_EQ(sweepPoolThreads(0, 0, 4), 1u);   // unknown concurrency
}

TEST(Sweep, SparseMtPointsMatchDefaultEngineThroughThePool) {
  std::vector<SweepPoint> points, mtPoints;
  for (int i = 0; i < 4; ++i) {
    SweepPoint p = tinyPoint(pointLabel(i), 0.003, 40 + i);
    points.push_back(p);
    p.cfg.engine = EngineKind::SparseMt;
    p.cfg.simThreads = 1 + i;  // mixed widths in one grid
    mtPoints.push_back(p);
  }
  const auto base = runSweep(points, 2);
  const auto mt = runSweep(mtPoints, 2);
  ASSERT_EQ(base.size(), mt.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].result.meanLatency, mt[i].result.meanLatency);
    EXPECT_EQ(base[i].result.cycles, mt[i].result.cycles);
    EXPECT_EQ(base[i].result.throughput, mt[i].result.throughput);
  }
}

TEST(Sweep, RateGridSpansToMaximum) {
  const auto grid = rateGrid(0.014, 7);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.002);
  EXPECT_DOUBLE_EQ(grid.back(), 0.014);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

}  // namespace
}  // namespace swft
