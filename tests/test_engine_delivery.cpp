// Property suite: every configuration must deliver all measured messages
// with no deadlock, no livelock escalation, and exact message conservation.
#include <gtest/gtest.h>

#include "tests/naming.hpp"

#include "src/sim/network.hpp"

namespace swft {
namespace {

struct DeliveryCase {
  int k, n, vcs;
  RoutingMode mode;
  int randomFaults;
  std::uint64_t seed;
};

std::string caseName(const ::testing::TestParamInfo<DeliveryCase>& info) {
  const auto& p = info.param;
  return catName({knName(p.k, p.n), "V", std::to_string(p.vcs),
                  p.mode == RoutingMode::Adaptive ? "adp" : "det", "nf",
                  std::to_string(p.randomFaults), "s", std::to_string(p.seed)});
}

class DeliveryProperty : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(DeliveryProperty, AllMeasuredMessagesDelivered) {
  const auto& p = GetParam();
  SimConfig cfg;
  cfg.radix = p.k;
  cfg.dims = p.n;
  cfg.vcs = p.vcs;
  cfg.routing = p.mode;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.005;
  cfg.faults.randomNodes = p.randomFaults;
  cfg.seed = p.seed;
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 1200;
  cfg.maxCycles = 400'000;

  Network net(cfg);
  const SimResult r = net.run();

  EXPECT_TRUE(r.completed) << "must reach the measured-message target";
  EXPECT_FALSE(r.deadlockSuspected) << "watchdog must never fire";
  EXPECT_EQ(r.escalations, 0u) << "paper configurations never need the livelock guard";
  EXPECT_EQ(r.generatedTotal, r.deliveredTotal + net.inFlight()) << "conservation";
  EXPECT_GT(r.meanLatency, 0.0);
  if (p.randomFaults == 0) {
    EXPECT_EQ(r.messagesQueued, 0u) << "no absorption without faults";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeliveryProperty,
    ::testing::Values(
        // Fault-free, both routings, assorted topologies.
        DeliveryCase{4, 2, 2, RoutingMode::Deterministic, 0, 1},
        DeliveryCase{4, 2, 2, RoutingMode::Adaptive, 0, 1},
        DeliveryCase{8, 2, 4, RoutingMode::Deterministic, 0, 2},
        DeliveryCase{8, 2, 4, RoutingMode::Adaptive, 0, 2},
        DeliveryCase{4, 3, 4, RoutingMode::Deterministic, 0, 3},
        DeliveryCase{4, 3, 4, RoutingMode::Adaptive, 0, 3},
        DeliveryCase{3, 4, 4, RoutingMode::Deterministic, 0, 4},
        DeliveryCase{5, 2, 3, RoutingMode::Deterministic, 0, 5},
        // Faulty, both routings, 2-D / 3-D / 4-D.
        DeliveryCase{8, 2, 4, RoutingMode::Deterministic, 3, 11},
        DeliveryCase{8, 2, 4, RoutingMode::Adaptive, 3, 11},
        DeliveryCase{8, 2, 6, RoutingMode::Deterministic, 5, 12},
        DeliveryCase{8, 2, 6, RoutingMode::Adaptive, 5, 12},
        DeliveryCase{8, 2, 10, RoutingMode::Deterministic, 5, 13},
        DeliveryCase{4, 3, 4, RoutingMode::Deterministic, 6, 14},
        DeliveryCase{4, 3, 4, RoutingMode::Adaptive, 6, 14},
        DeliveryCase{4, 3, 6, RoutingMode::Adaptive, 10, 15},
        DeliveryCase{3, 4, 4, RoutingMode::Deterministic, 4, 16},
        DeliveryCase{3, 4, 4, RoutingMode::Adaptive, 4, 16},
        DeliveryCase{5, 3, 4, RoutingMode::Deterministic, 8, 17},
        DeliveryCase{6, 2, 4, RoutingMode::Adaptive, 4, 18}),
    caseName);

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, FaultyNetworkDeliversAcrossSeeds) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.routing = RoutingMode::Deterministic;
  cfg.messageLength = 16;
  cfg.injectionRate = 0.004;
  cfg.faults.randomNodes = 5;
  cfg.seed = GetParam();
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 1000;
  cfg.maxCycles = 400'000;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.escalations, 0u);
  EXPECT_GT(r.messagesQueued, 0u) << "5 faults in a 64-node torus must absorb sometimes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(100, 110));

TEST(DeliveryEdge, SingleFlitMessages) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 1;  // header-tail flits
  cfg.injectionRate = 0.02;
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 2000;
  cfg.faults.randomNodes = 3;
  cfg.seed = 9;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(DeliveryEdge, MinimumRadixThree) {
  SimConfig cfg;
  cfg.radix = 3;
  cfg.dims = 3;
  cfg.vcs = 4;
  cfg.messageLength = 4;
  cfg.injectionRate = 0.01;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 800;
  cfg.faults.randomNodes = 2;
  cfg.seed = 21;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(DeliveryEdge, LongMessagesShallowBuffers) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.bufferDepth = 1;
  cfg.messageLength = 64;
  cfg.injectionRate = 0.001;
  cfg.warmupMessages = 50;
  cfg.measuredMessages = 400;
  cfg.faults.randomNodes = 2;
  cfg.seed = 31;
  cfg.maxCycles = 1'000'000;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(DeliveryEdge, TransposePatternUnderFaults) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.pattern = TrafficPattern::Transpose;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.004;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 800;
  cfg.faults.randomNodes = 3;
  cfg.seed = 41;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(DeliveryEdge, HotspotPattern) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.pattern = TrafficPattern::Hotspot;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.003;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 800;
  cfg.seed = 43;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.deadlockSuspected);
}

}  // namespace
}  // namespace swft
