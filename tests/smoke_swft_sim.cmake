# CTest smoke script: run swft_sim end-to-end in CSV mode on a small faulty
# torus and check the exit code and output shape.
#
#   cmake -DSWFT_SIM=<path-to-binary> -P smoke_swft_sim.cmake
if(NOT SWFT_SIM)
  message(FATAL_ERROR "pass -DSWFT_SIM=<path to swft_sim>")
endif()

execute_process(
  COMMAND ${SWFT_SIM} --csv k=4 n=2 vcs=4 msg_length=8 rate=0.004
          routing=adaptive nf=2 warmup=50 measured=300 max_cycles=200000 seed=7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "swft_sim exited with ${rc}\nstderr: ${err}")
endif()

string(REGEX REPLACE "\n$" "" out "${out}")
string(REPLACE "\n" ";" lines "${out}")
list(LENGTH lines nlines)
if(NOT nlines EQUAL 2)
  message(FATAL_ERROR "expected CSV header + 1 data row, got ${nlines} line(s):\n${out}")
endif()

list(GET lines 0 header)
list(GET lines 1 row)
if(NOT header MATCHES "^label,routing,radix,dims,vcs")
  message(FATAL_ERROR "unexpected CSV header: ${header}")
endif()
if(NOT header MATCHES ",deadlock$")
  message(FATAL_ERROR "CSV header missing trailing deadlock column: ${header}")
endif()

string(REGEX MATCHALL "," headerCommas "${header}")
string(REGEX MATCHALL "," rowCommas "${row}")
list(LENGTH headerCommas nHeader)
list(LENGTH rowCommas nRow)
if(NOT nHeader EQUAL nRow)
  message(FATAL_ERROR "row has ${nRow} commas but header has ${nHeader}:\n${out}")
endif()

# Exit code 0 already implies no deadlock; cross-check the CSV field agrees.
if(NOT row MATCHES ",0$")
  message(FATAL_ERROR "deadlock column should be 0 on a clean run: ${row}")
endif()

message(STATUS "swft_sim smoke OK: ${row}")
