#include "src/routing/software_layer.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

Message blockedMsg(NodeId dest, int dim, int step) {
  Message m;
  m.finalDest = dest;
  m.curTarget = dest;
  m.blockedValid = true;
  m.blockedDim = static_cast<std::uint8_t>(dim);
  m.blockedDirStep = static_cast<std::int8_t>(step);
  return m;
}

TEST(SoftwareLayerTables, FaultTableReflectsLinkHealth) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const NodeId victim = at(topo, {2, 1});
  faults.failNode(victim);
  const SoftwareLayer layer(topo, faults, 96);

  const NodeId west = at(topo, {1, 1});
  const auto& t = layer.tables(west);
  EXPECT_FALSE(t.healthyLinkMask & (1u << portOf(0, Dir::Pos))) << "link into the fault";
  EXPECT_TRUE(t.healthyLinkMask & (1u << portOf(0, Dir::Neg)));
  EXPECT_TRUE(t.healthyLinkMask & (1u << portOf(1, Dir::Pos)));
  EXPECT_TRUE(t.healthyLinkMask & (1u << portOf(1, Dir::Neg)));
}

TEST(SoftwareLayerTables, DirectionTableMarksSurvivingReversal) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  const SoftwareLayer layer(topo, faults, 96);
  const auto& t = layer.tables(at(topo, {1, 1}));
  // Blocked going +x: the -x link survives, so reversal is usable.
  EXPECT_TRUE(t.reversalUsable & (1u << portOf(0, Dir::Pos)));
}

TEST(SoftwareLayerTables, DetourTablePrefersPlanePartner) {
  const TorusTopology topo(8, 3);
  const FaultSet faults(topo);
  const SoftwareLayer layer(topo, faults, 96);
  const auto& t = layer.tables(0);
  EXPECT_EQ(t.detourDim[0], 1) << "plane of dim 0 is (0,1)";
  EXPECT_EQ(t.detourDim[1], 2) << "plane of dim 1 is (1,2)";
  EXPECT_EQ(t.detourDim[2], 1) << "last dim pairs with n-2";
  EXPECT_NE(t.detourDirStep[0], 0);
}

TEST(SoftwareLayer, PlanePartnerMatchesPaperPairing) {
  const TorusTopology topo2(8, 2);
  const TorusTopology topo4(4, 4);
  const FaultSet f2(topo2);
  const FaultSet f4(topo4);
  const SoftwareLayer l2(topo2, f2, 96);
  const SoftwareLayer l4(topo4, f4, 96);
  EXPECT_EQ(l2.planePartner(0), 1);
  EXPECT_EQ(l2.planePartner(1), 0);
  EXPECT_EQ(l4.planePartner(0), 1);
  EXPECT_EQ(l4.planePartner(1), 2);
  EXPECT_EQ(l4.planePartner(2), 3);
  EXPECT_EQ(l4.planePartner(3), 2);
}

TEST(SoftwareLayer, FirstBlockInstallsDirectionReversal) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {4, 1}), /*dim=*/0, /*step=*/+1);
  layer.planReroute(m, at(topo, {1, 1}), rng);

  EXPECT_EQ(m.dirOverride[0], -1) << "re-route same dimension, opposite direction";
  EXPECT_EQ(m.curTarget, m.finalDest) << "no intermediate needed";
  EXPECT_FALSE(m.absorbAtTarget);
  EXPECT_FALSE(m.blockedValid) << "blocked state consumed";
  EXPECT_EQ(m.absorptions, 1);
  EXPECT_EQ(layer.stats().reversals, 1u);
  EXPECT_EQ(layer.stats().detours, 0u);
}

TEST(SoftwareLayer, SecondBlockInSameDimTakesOrthogonalDetour) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  faults.failNode(at(topo, {6, 1}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {4, 1}), 0, +1);
  m.dirOverride[0] = -1;  // the reversal already happened
  const NodeId here = at(topo, {7, 1});
  m.blockedDirStep = -1;  // now blocked travelling -x into (6,1)
  layer.planReroute(m, here, rng);

  EXPECT_TRUE(m.absorbAtTarget) << "intermediate node address computed";
  EXPECT_NE(m.curTarget, m.finalDest);
  const Coordinates ic = topo.coordsOf(m.curTarget);
  EXPECT_EQ(ic[0], 7) << "detour moves only in the orthogonal dimension";
  EXPECT_NE(ic[1], 1);
  EXPECT_EQ(layer.stats().detours, 1u);
}

TEST(SoftwareLayer, ReEvaluationAtIntermediateResumesCleanly) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);  // no faults: the resume must be clean
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m;
  m.finalDest = at(topo, {4, 4});
  m.curTarget = at(topo, {2, 2});
  m.absorbAtTarget = true;
  layer.planReroute(m, at(topo, {2, 2}), rng);

  EXPECT_EQ(m.curTarget, m.finalDest);
  EXPECT_FALSE(m.absorbAtTarget);
  EXPECT_EQ(layer.stats().reEvaluations, 1u);
  EXPECT_EQ(m.consecutiveDetours, 0);
}

TEST(SoftwareLayer, ReEvaluationDetectsNewBlockAhead) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {3, 2}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m;
  m.finalDest = at(topo, {5, 2});
  m.curTarget = at(topo, {2, 2});
  m.absorbAtTarget = true;
  layer.planReroute(m, at(topo, {2, 2}), rng);

  // Next e-cube hop (+x into (3,2)) is faulty: the layer must react now.
  EXPECT_TRUE(m.dirOverride[0] == -1 || m.absorbAtTarget)
      << "either reversal or another detour must be planned";
}

TEST(SoftwareLayer, AdaptiveMessageDowngradedOnFirstAbsorption) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {4, 1}), 0, +1);
  m.mode = RoutingMode::Adaptive;
  layer.planReroute(m, at(topo, {1, 1}), rng);
  EXPECT_EQ(m.mode, RoutingMode::Deterministic)
      << "faulted messages are always routed deterministically afterwards";
}

TEST(SoftwareLayer, BoundaryFollowingKeepsDetourDirection) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  // Vertical wall blocking +x at columns x=3 for several rows.
  for (int y = 2; y <= 5; ++y) faults.failNode(at(topo, {3, y}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {5, 3}), 0, +1);
  m.dirOverride[0] = +1;  // pretend the reversal already failed
  m.lastDetourDim = 1;
  m.lastDetourDirStep = +1;
  layer.planReroute(m, at(topo, {2, 3}), rng);

  ASSERT_TRUE(m.absorbAtTarget);
  const Coordinates ic = topo.coordsOf(m.curTarget);
  EXPECT_EQ(ic[1], 4) << "keeps sliding +y along the wall";
}

TEST(SoftwareLayer, EscalationAfterThresholdPicksRandomHealthyIntermediate) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  SoftwareLayer layer(topo, faults, /*livelockThreshold=*/3);
  Rng rng(7);

  Message m = blockedMsg(at(topo, {4, 1}), 0, +1);
  m.absorptions = 5;  // already past the threshold
  layer.planReroute(m, at(topo, {1, 1}), rng);

  EXPECT_EQ(layer.stats().escalations, 1u);
  EXPECT_FALSE(faults.nodeFaulty(m.curTarget));
  EXPECT_NE(m.curTarget, at(topo, {1, 1}));
  EXPECT_EQ(m.dirOverride[0], 0) << "escalation clears overrides";
}

TEST(SoftwareLayer, AbsorptionCountersAccumulate) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {2, 1}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);
  Message m = blockedMsg(at(topo, {4, 1}), 0, +1);
  layer.planReroute(m, at(topo, {1, 1}), rng);
  Message m2 = blockedMsg(at(topo, {4, 1}), 0, +1);
  layer.planReroute(m2, at(topo, {1, 1}), rng);
  EXPECT_EQ(layer.stats().absorptions, 2u) << "the Fig. 7 'messages queued' counter";
}

TEST(SoftwareLayer, TwoLegDetourWhenBlockedInHighestDimension) {
  // Blocked travelling +y (dim 1, the highest dim in 2-D) with the reversal
  // already spent: the sidestep dimension (0) is LOWER than the blocked one,
  // so a single intermediate would be undone by dimension-order routing.
  // The planner must chain a second leg that advances past the fault.
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {4, 3}));  // fault north of (4,2)
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {4, 6}), /*dim=*/1, /*step=*/+1);
  m.dirOverride[1] = +1;  // reversal already used in dim 1
  const NodeId here = at(topo, {4, 2});
  layer.planReroute(m, here, rng);

  ASSERT_TRUE(m.absorbAtTarget);
  const Coordinates leg1 = topo.coordsOf(m.curTarget);
  EXPECT_EQ(leg1[1], 2) << "first leg sidesteps in dim 0 only";
  EXPECT_NE(leg1[0], 4);
  ASSERT_NE(m.pendingTarget, kInvalidNode) << "two-leg plan required";
  const Coordinates leg2 = topo.coordsOf(m.pendingTarget);
  EXPECT_EQ(leg2[0], leg1[0]) << "second leg keeps the sidestep column";
  EXPECT_EQ(leg2[1], 4) << "second leg advances 2 hops past the fault row";
}

TEST(SoftwareLayer, PendingLegPromotedOnArrival) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m;
  m.finalDest = at(topo, {4, 6});
  m.curTarget = at(topo, {5, 2});
  m.absorbAtTarget = true;
  m.pendingTarget = at(topo, {5, 5});
  layer.planReroute(m, at(topo, {5, 2}), rng);

  EXPECT_EQ(m.curTarget, at(topo, {5, 5})) << "pending leg becomes the target";
  EXPECT_EQ(m.pendingTarget, kInvalidNode);
  EXPECT_TRUE(m.absorbAtTarget) << "leg 2 is still a software intermediate";
}

TEST(SoftwareLayer, MatchedDimensionOverrideClearedOnAbsorption) {
  // Regression guard for the ring-orbit livelock: once a dimension is
  // corrected, its override must not force full ring orbits later.
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(at(topo, {7, 7}));
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);

  Message m = blockedMsg(at(topo, {7, 6}), /*dim=*/1, /*step=*/-1);
  m.dirOverride[0] = +1;   // stale override from an earlier fault in dim 0
  const NodeId here = at(topo, {7, 0});  // dim 0 already matches the dest
  layer.planReroute(m, here, rng);
  EXPECT_EQ(m.dirOverride[0], 0) << "override in a corrected dim is dropped";
}

TEST(SoftwareLayer, OneDimensionalRingOnlyReverses) {
  const TorusTopology topo(8, 1);
  FaultSet faults(topo);
  faults.failNode(3);
  SoftwareLayer layer(topo, faults, 96);
  Rng rng(1);
  Message m = blockedMsg(5, 0, +1);
  layer.planReroute(m, 2, rng);
  EXPECT_EQ(m.dirOverride[0], -1);
  EXPECT_EQ(m.curTarget, 5u);
}

}  // namespace
}  // namespace swft
