#include "src/fault/regions.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/fault/connectivity.hpp"

namespace swft {
namespace {

RegionSpec makeSpec(RegionShape shape, int e0, int e1, const TorusTopology& topo) {
  RegionSpec s;
  s.shape = shape;
  s.extent0 = e0;
  s.extent1 = e1;
  s.anchor.digit.resize(static_cast<std::size_t>(topo.dims()));
  for (int d = 0; d < topo.dims(); ++d) s.anchor[d] = 1;
  return s;
}

struct ShapeCase {
  RegionShape shape;
  int e0, e1;
  int expectedCells;
};

class RegionCardinality : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(RegionCardinality, CellCountMatchesFormula) {
  const TorusTopology topo(16, 2);
  const auto p = GetParam();
  const auto cells = regionCells(makeSpec(p.shape, p.e0, p.e1, topo));
  EXPECT_EQ(static_cast<int>(cells.size()), p.expectedCells);
  // Cells are unique.
  const std::set<std::pair<int, int>> uniq(cells.begin(), cells.end());
  EXPECT_EQ(uniq.size(), cells.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RegionCardinality,
    ::testing::Values(ShapeCase{RegionShape::I, 1, 4, 4},        // column of 4
                      ShapeCase{RegionShape::I, 1, 1, 1},        // single node
                      ShapeCase{RegionShape::II, 1, 3, 6},       // two columns of 3
                      ShapeCase{RegionShape::Rect, 4, 5, 20},    // Fig. 5 block
                      ShapeCase{RegionShape::Rect, 1, 1, 1},
                      ShapeCase{RegionShape::Rect, 3, 3, 9},
                      ShapeCase{RegionShape::L, 5, 5, 9},        // Fig. 5 L
                      ShapeCase{RegionShape::L, 2, 2, 3},
                      ShapeCase{RegionShape::U, 4, 3, 8},        // Fig. 5 U
                      ShapeCase{RegionShape::U, 3, 2, 5},
                      ShapeCase{RegionShape::Plus, 5, 5, 16},    // Fig. 5 plus
                      ShapeCase{RegionShape::Plus, 4, 4, 12},
                      ShapeCase{RegionShape::T, 5, 5, 10},       // Fig. 5 T
                      ShapeCase{RegionShape::T, 3, 2, 5},
                      ShapeCase{RegionShape::H, 4, 5, 12},       // legs 2*5 + bar 2
                      ShapeCase{RegionShape::H, 3, 3, 7}),
    [](const auto& info) {
      return std::string(regionShapeName(info.param.shape)) + "_" +
             std::to_string(info.param.e0) + "x" + std::to_string(info.param.e1);
    });

TEST(Regions, ConvexityClassification) {
  EXPECT_TRUE(regionIsConvex(RegionShape::I));
  EXPECT_TRUE(regionIsConvex(RegionShape::II));
  EXPECT_TRUE(regionIsConvex(RegionShape::Rect));
  EXPECT_FALSE(regionIsConvex(RegionShape::L));
  EXPECT_FALSE(regionIsConvex(RegionShape::U));
  EXPECT_FALSE(regionIsConvex(RegionShape::Plus));
  EXPECT_FALSE(regionIsConvex(RegionShape::T));
  EXPECT_FALSE(regionIsConvex(RegionShape::H));
}

TEST(Regions, Fig5BuildersHaveExactPaperCardinalities) {
  const TorusTopology topo(8, 2);
  EXPECT_EQ(regionNodes(topo, fig5Rect20(topo)).size(), 20u);
  EXPECT_EQ(regionNodes(topo, fig5T10(topo)).size(), 10u);
  EXPECT_EQ(regionNodes(topo, fig5Plus16(topo)).size(), 16u);
  EXPECT_EQ(regionNodes(topo, fig5L9(topo)).size(), 9u);
  EXPECT_EQ(regionNodes(topo, fig5U8(topo)).size(), 8u);
}

TEST(Regions, Fig5RegionsKeepTheNetworkConnected) {
  const TorusTopology topo(8, 2);
  for (const RegionSpec& spec : {fig5Rect20(topo), fig5T10(topo), fig5Plus16(topo),
                                 fig5L9(topo), fig5U8(topo)}) {
    FaultSet faults(topo);
    applyRegion(faults, spec);
    EXPECT_TRUE(healthyNetworkConnected(faults))
        << "shape " << regionShapeName(spec.shape);
  }
}

TEST(Regions, PlacementWrapsAroundTorusEdges) {
  const TorusTopology topo(8, 2);
  RegionSpec s = makeSpec(RegionShape::Rect, 3, 3, topo);
  s.anchor[0] = 6;  // 3-wide block anchored at column 6 wraps to column 0
  s.anchor[1] = 7;
  const auto nodes = regionNodes(topo, s);
  EXPECT_EQ(nodes.size(), 9u);
  bool sawColumnZero = false;
  for (NodeId id : nodes) sawColumnZero |= (topo.coordsOf(id)[0] == 0);
  EXPECT_TRUE(sawColumnZero);
}

TEST(Regions, PlaneSelectionIn3D) {
  const TorusTopology topo(4, 3);
  RegionSpec s = makeSpec(RegionShape::Rect, 2, 2, topo);
  s.dim0 = 1;
  s.dim1 = 2;
  const auto nodes = regionNodes(topo, s);
  EXPECT_EQ(nodes.size(), 4u);
  for (NodeId id : nodes) {
    EXPECT_EQ(topo.coordsOf(id)[0], 1) << "off-plane digit must stay at the anchor";
  }
}

TEST(Regions, RejectsBadSpecs) {
  const TorusTopology topo(8, 2);
  RegionSpec s = makeSpec(RegionShape::Rect, 2, 2, topo);
  s.dim1 = 0;  // same as dim0
  EXPECT_THROW(regionNodes(topo, s), std::invalid_argument);
  RegionSpec s2 = makeSpec(RegionShape::Rect, 0, 2, topo);
  EXPECT_THROW(regionCells(s2), std::invalid_argument);
  RegionSpec s3 = makeSpec(RegionShape::Plus, 1, 1, topo);
  EXPECT_THROW(regionCells(s3), std::invalid_argument);
}

TEST(Regions, ApplyRegionFailsExactlyTheRegionNodes) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const RegionSpec spec = fig5U8(topo);
  const auto nodes = applyRegion(faults, spec);
  EXPECT_EQ(faults.faultyNodeCount(), 8);
  for (NodeId id : nodes) EXPECT_TRUE(faults.nodeFaulty(id));
}

TEST(RandomFaults, RespectsCountAndConnectivity) {
  const TorusTopology topo(8, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FaultSet faults(topo);
    Rng rng(seed);
    const auto placed = applyRandomNodeFaults(faults, 5, rng);
    EXPECT_EQ(placed.size(), 5u);
    EXPECT_EQ(faults.faultyNodeCount(), 5);
    EXPECT_TRUE(healthyNetworkConnected(faults));
  }
}

TEST(RandomFaults, ZeroCountIsNoop) {
  const TorusTopology topo(4, 2);
  FaultSet faults(topo);
  Rng rng(1);
  EXPECT_TRUE(applyRandomNodeFaults(faults, 0, rng).empty());
  EXPECT_EQ(faults.faultyNodeCount(), 0);
}

TEST(RandomFaults, RejectsImpossibleCounts) {
  const TorusTopology topo(4, 2);
  FaultSet faults(topo);
  Rng rng(1);
  EXPECT_THROW(applyRandomNodeFaults(faults, -1, rng), std::invalid_argument);
  EXPECT_THROW(applyRandomNodeFaults(faults, 16, rng), std::invalid_argument);
}

TEST(RandomFaults, StacksOnExistingFaultsWithoutOverlap) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(0);
  Rng rng(3);
  const auto placed = applyRandomNodeFaults(faults, 4, rng);
  EXPECT_EQ(faults.faultyNodeCount(), 5);
  for (NodeId id : placed) EXPECT_NE(id, 0u);
}

}  // namespace
}  // namespace swft
