#include "src/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace swft {
namespace {

TEST(Csv, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.str(), "a,b\n");
  EXPECT_EQ(csv.rowCount(), 0u);
}

TEST(Csv, RowsAppendInOrder) {
  CsvWriter csv({"x", "y"});
  csv.addRow({"1", "2"});
  csv.addRow({"3", "4"});
  EXPECT_EQ(csv.str(), "x,y\n1,2\n3,4\n");
}

TEST(Csv, AddRowOfMixedTypes) {
  CsvWriter csv({"name", "count", "rate"});
  csv.addRowOf("uniform", 42, 0.5);
  EXPECT_EQ(csv.str(), "name,count,rate\nuniform,42,0.5\n");
}

TEST(Csv, RejectsWrongWidth) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.addRow({"only-one"}), std::invalid_argument);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"v"});
  csv.addRow({"has,comma"});
  csv.addRow({"has\"quote"});
  EXPECT_EQ(csv.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "swft_csv_test.csv";
  CsvWriter csv({"a"});
  csv.addRow({"1"});
  csv.writeFile(path);
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n1\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swft
