#include "src/fault/fault_set.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(FaultSet, StartsHealthy) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  EXPECT_EQ(faults.faultyNodeCount(), 0);
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    EXPECT_FALSE(faults.nodeFaulty(id));
    EXPECT_EQ(faults.healthyDegree(id), topo.networkPorts());
  }
}

TEST(FaultSet, NodeFailureMarksAllIncidentLinksBothSides) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const NodeId victim = 27;
  faults.failNode(victim);

  EXPECT_TRUE(faults.nodeFaulty(victim));
  EXPECT_EQ(faults.faultyNodeCount(), 1);
  for (int port = 0; port < topo.networkPorts(); ++port) {
    EXPECT_TRUE(faults.linkFaulty(victim, port));
    const NodeId nb = topo.neighbor(victim, port);
    const int back = portOf(dimOfPort(port), opposite(dirOfPort(port)));
    EXPECT_TRUE(faults.linkFaulty(nb, back)) << "neighbour view of the dead link";
    EXPECT_FALSE(faults.nodeFaulty(nb));
  }
}

TEST(FaultSet, NodeFailureIsIdempotent) {
  const TorusTopology topo(4, 2);
  FaultSet faults(topo);
  faults.failNode(5);
  faults.failNode(5);
  EXPECT_EQ(faults.faultyNodeCount(), 1);
}

TEST(FaultSet, LinkFailureAffectsBothDirectionsOnly) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const NodeId a = 10;
  faults.failLink(a, 0, Dir::Pos);
  const NodeId b = topo.neighbor(a, 0, Dir::Pos);

  EXPECT_TRUE(faults.linkFaulty(a, 0, Dir::Pos));
  EXPECT_TRUE(faults.linkFaulty(b, 0, Dir::Neg));
  EXPECT_FALSE(faults.nodeFaulty(a));
  EXPECT_FALSE(faults.nodeFaulty(b));
  EXPECT_FALSE(faults.linkFaulty(a, 0, Dir::Neg));
  EXPECT_FALSE(faults.linkFaulty(a, 1, Dir::Pos));
  EXPECT_EQ(faults.healthyDegree(a), topo.networkPorts() - 1);
  EXPECT_EQ(faults.healthyDegree(b), topo.networkPorts() - 1);
}

TEST(FaultSet, HealthyAndFaultyPartitionNodes) {
  const TorusTopology topo(4, 3);
  FaultSet faults(topo);
  faults.failNode(1);
  faults.failNode(10);
  faults.failNode(33);
  const auto faulty = faults.faultyNodes();
  const auto healthy = faults.healthyNodes();
  EXPECT_EQ(faulty.size(), 3u);
  EXPECT_EQ(healthy.size() + faulty.size(), topo.nodeCount());
  for (NodeId id : faulty) EXPECT_TRUE(faults.nodeFaulty(id));
  for (NodeId id : healthy) EXPECT_FALSE(faults.nodeFaulty(id));
}

TEST(FaultSet, PaperLinkModelTwoEndpointFailure) {
  // Paper §5.2: "A link failure can be modelled by the failure of two nodes
  // connected to it."
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const NodeId a = 20;
  const NodeId b = topo.neighbor(a, 0, Dir::Pos);
  faults.failNode(a);
  faults.failNode(b);
  EXPECT_TRUE(faults.linkFaulty(a, 0, Dir::Pos));
  EXPECT_TRUE(faults.linkFaulty(b, 0, Dir::Neg));
  EXPECT_EQ(faults.faultyNodeCount(), 2);
}

}  // namespace
}  // namespace swft
