// Wormhole flow-control behaviour: backpressure, ejection contention, and
// credit discipline under minimal buffering.
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

TEST(Wormhole, SingleFlitBuffersStillDeliver) {
  // bufferDepth=1 is the tightest legal credit loop: each flit advances only
  // when the next buffer drained completely.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.bufferDepth = 1;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  Network net(cfg);
  const TorusTopology& topo = net.topology();
  net.injectTestMessage(at(topo, {0, 0}), at(topo, {4, 0}), 16, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  // With 1-deep buffers the worm cannot pipeline one flit per cycle; the
  // latency must exceed the ideal hops + M bound.
  EXPECT_GT(r.meanLatency, 4 + 16);
  EXPECT_EQ(net.validateInvariants(), "");
}

TEST(Wormhole, DeepBuffersRecoverIdealPipelining) {
  double latency[2];
  for (int i = 0; i < 2; ++i) {
    SimConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.vcs = 2;
    cfg.bufferDepth = i == 0 ? 1 : 8;
    cfg.injectionRate = 0.0;
    cfg.warmupMessages = 0;
    cfg.measuredMessages = 1;
    Network net(cfg);
    const TorusTopology& topo = net.topology();
    net.injectTestMessage(at(topo, {0, 0}), at(topo, {4, 0}), 16,
                          RoutingMode::Deterministic);
    latency[i] = net.run().meanLatency;
  }
  EXPECT_LT(latency[1], latency[0]);
  EXPECT_NEAR(latency[1], 4 + 16, 4) << "8-deep buffers restore 1 flit/cycle";
}

TEST(Wormhole, EjectionChannelSerialisesConcurrentArrivals) {
  // Two messages from opposite sides arrive at one destination; the single
  // ejection channel (1 flit/cycle) must serialise them, and both complete.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 2;
  Network net(cfg);
  const TorusTopology& topo = net.topology();
  const NodeId dest = at(topo, {4, 4});
  net.injectTestMessage(at(topo, {2, 4}), dest, 16, RoutingMode::Deterministic);
  net.injectTestMessage(at(topo, {6, 4}), dest, 16, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 2u);
  // 32 flits through one ejection channel: the run needs >= 32 cycles after
  // the first arrival; the slower message must see the contention.
  EXPECT_GE(r.maxLatency, 2 + 16 + 8);
  EXPECT_EQ(net.validateInvariants(), "");
}

TEST(Wormhole, BlockedWormStallsWithoutFlitLoss) {
  // A hotspot column at high load forces heavy contention; conservation and
  // invariants must hold while worms stall mid-network.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.bufferDepth = 2;
  cfg.pattern = TrafficPattern::Hotspot;
  cfg.messageLength = 24;
  cfg.injectionRate = 0.01;  // well above hotspot capacity
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.maxCycles = 20'000;
  cfg.seed = 12;
  Network net(cfg);
  for (int i = 0; i < 20; ++i) {
    net.step(1000);
    ASSERT_EQ(net.validateInvariants(), "") << "cycle " << net.now();
  }
  EXPECT_EQ(net.generated(), net.delivered() + net.inFlight());
  EXPECT_FALSE(net.deadlockSuspected());
  EXPECT_GT(net.delivered(), 0u);
}

TEST(Wormhole, HeaderCannotOvertakeWithinAVc) {
  // FIFO discipline per VC: with a single VC and deterministic routing, two
  // messages on the same path deliver in injection order.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 2;  // one per wrap class: effectively a single in-order lane
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 2;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  const TorusTopology& topo = net.topology();
  const MsgId first =
      net.injectTestMessage(at(topo, {0, 0}), at(topo, {5, 0}), 8, RoutingMode::Deterministic);
  const MsgId second =
      net.injectTestMessage(at(topo, {0, 0}), at(topo, {5, 0}), 8, RoutingMode::Deterministic);
  (void)first;
  (void)second;
  net.run();
  const auto& e0 = trace.eventsFor(0);
  const auto& e1 = trace.eventsFor(1);
  ASSERT_FALSE(e0.empty());
  ASSERT_FALSE(e1.empty());
  EXPECT_LT(e0.back().cycle, e1.back().cycle) << "same-path messages stay ordered";
}

}  // namespace
}  // namespace swft
