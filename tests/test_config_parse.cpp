#include "src/sim/config_parse.hpp"

#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

SimConfig parse(std::initializer_list<std::string> args) {
  const std::vector<std::string> v(args);
  return parseConfig(v);
}

TEST(ConfigParse, EmptyKeepsDefaults) {
  const SimConfig cfg = parse({});
  const SimConfig def;
  EXPECT_EQ(cfg.radix, def.radix);
  EXPECT_EQ(cfg.vcs, def.vcs);
  EXPECT_EQ(cfg.injectionRate, def.injectionRate);
}

TEST(ConfigParse, ScalarKeys) {
  const SimConfig cfg = parse({"k=16", "n=3", "vcs=10", "buffer_depth=8",
                               "msg_length=64", "rate=0.0125", "delta=32", "td=1",
                               "nf=7", "warmup=123", "measured=456", "max_cycles=789",
                               "seed=42", "livelock_threshold=17", "escape_vcs=4"});
  EXPECT_EQ(cfg.radix, 16);
  EXPECT_EQ(cfg.dims, 3);
  EXPECT_EQ(cfg.vcs, 10);
  EXPECT_EQ(cfg.bufferDepth, 8);
  EXPECT_EQ(cfg.messageLength, 64);
  EXPECT_DOUBLE_EQ(cfg.injectionRate, 0.0125);
  EXPECT_EQ(cfg.reinjectDelay, 32);
  EXPECT_EQ(cfg.routerDecisionTime, 1);
  EXPECT_EQ(cfg.faults.randomNodes, 7);
  EXPECT_EQ(cfg.warmupMessages, 123u);
  EXPECT_EQ(cfg.measuredMessages, 456u);
  EXPECT_EQ(cfg.maxCycles, 789u);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.livelockThreshold, 17);
  EXPECT_EQ(cfg.escapeVcs, 4);
}

TEST(ConfigParse, RoutingAndPatternEnums) {
  EXPECT_EQ(parse({"routing=adaptive"}).routing, RoutingMode::Adaptive);
  EXPECT_EQ(parse({"routing=adp"}).routing, RoutingMode::Adaptive);
  EXPECT_EQ(parse({"routing=det"}).routing, RoutingMode::Deterministic);
  EXPECT_EQ(parse({"pattern=transpose"}).pattern, TrafficPattern::Transpose);
  EXPECT_EQ(parse({"pattern=bitcomp"}).pattern, TrafficPattern::BitComplement);
  EXPECT_EQ(parse({"pattern=hotspot"}).pattern, TrafficPattern::Hotspot);
}

TEST(ConfigParse, TrafficKeyRoundTripsEveryPatternName) {
  // `traffic=` accepts exactly the canonical trafficPatternName tokens, so
  // the parser, the CLI help and `swft_bench --list` can never drift.
  for (const TrafficPattern p : kAllTrafficPatterns) {
    const std::string key = "traffic=" + std::string(trafficPatternName(p));
    EXPECT_EQ(parse({key}).pattern, p) << key;
  }
  EXPECT_EQ(parse({"traffic=bitrev"}).pattern, TrafficPattern::BitReversal);
  EXPECT_EQ(parse({"traffic=shuffle"}).pattern, TrafficPattern::Shuffle);
  EXPECT_EQ(parse({"traffic=tornado"}).pattern, TrafficPattern::Tornado);
  EXPECT_THROW(parse({"traffic=worst"}), std::invalid_argument);
}

TEST(ConfigParse, HotspotFractionRoundTrip) {
  EXPECT_DOUBLE_EQ(SimConfig{}.hotspotFraction, 0.1);
  const SimConfig cfg = parse({"traffic=hotspot", "hotspot_fraction=0.35"});
  EXPECT_EQ(cfg.pattern, TrafficPattern::Hotspot);
  EXPECT_DOUBLE_EQ(cfg.hotspotFraction, 0.35);
  EXPECT_THROW(parse({"hotspot_fraction=1.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"hotspot_fraction=-0.1"}), std::invalid_argument);
  EXPECT_THROW(parse({"hotspot_fraction=lots"}), std::invalid_argument);
}

TEST(ConfigParse, EngineThreadsAndPhaseTimers) {
  EXPECT_EQ(SimConfig{}.engine, parse({}).engine);
  EXPECT_EQ(parse({"engine=dense"}).engine, EngineKind::Dense);
  EXPECT_EQ(parse({"engine=sparse"}).engine, EngineKind::Sparse);
  EXPECT_EQ(parse({"engine=sparse-mt"}).engine, EngineKind::SparseMt);
  EXPECT_EQ(parse({"sim_threads=5"}).simThreads, 5);
  EXPECT_FALSE(parse({}).phaseTimers);
  EXPECT_TRUE(parse({"phase_timers=1"}).phaseTimers);
  EXPECT_FALSE(parse({"phase_timers=0"}).phaseTimers);
  EXPECT_THROW(parse({"engine=turbo"}), std::invalid_argument);
  EXPECT_THROW(parse({"sim_threads=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"phase_timers=yes"}), std::invalid_argument);
}

TEST(ConfigParse, RegionWithAnchor) {
  const SimConfig cfg = parse({"k=8", "n=2", "region=U:4x3@2,5"});
  ASSERT_EQ(cfg.faults.regions.size(), 1u);
  const RegionSpec& r = cfg.faults.regions[0];
  EXPECT_EQ(r.shape, RegionShape::U);
  EXPECT_EQ(r.extent0, 4);
  EXPECT_EQ(r.extent1, 3);
  EXPECT_EQ(r.anchor[0], 2);
  EXPECT_EQ(r.anchor[1], 5);
}

TEST(ConfigParse, RegionWithoutAnchorDefaultsInside) {
  const SimConfig cfg = parse({"region=rect:3x3"});
  ASSERT_EQ(cfg.faults.regions.size(), 1u);
  EXPECT_EQ(cfg.faults.regions[0].anchor[0], 1);
}

TEST(ConfigParse, RegionsAccumulate) {
  const SimConfig cfg = parse({"region=rect:2x2", "region=L:3x3@4,4"});
  EXPECT_EQ(cfg.faults.regions.size(), 2u);
}

TEST(ConfigParse, AllShapeNames) {
  for (const char* s : {"I", "II", "rect", "L", "U", "plus", "T", "H"}) {
    EXPECT_NO_THROW(parse({std::string("region=") + s + ":3x3"})) << s;
  }
}

TEST(ConfigParse, DimsOrderIndependence) {
  // `region` uses cfg.dims for the anchor; n must apply regardless of order
  // because the anchor is re-checked at network construction.
  const SimConfig cfg = parse({"n=3", "region=rect:2x2"});
  EXPECT_EQ(cfg.faults.regions[0].anchor.dims(), 3);
}

TEST(ConfigParse, Errors) {
  EXPECT_THROW(parse({"bogus=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"k"}), std::invalid_argument);
  EXPECT_THROW(parse({"k=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"rate=fast"}), std::invalid_argument);
  EXPECT_THROW(parse({"routing=zigzag"}), std::invalid_argument);
  EXPECT_THROW(parse({"pattern=worst"}), std::invalid_argument);
  EXPECT_THROW(parse({"region=blob:3x3"}), std::invalid_argument);
  EXPECT_THROW(parse({"region=rect"}), std::invalid_argument);
  EXPECT_THROW(parse({"region=rect:3"}), std::invalid_argument);
}

TEST(ConfigParse, DescribeMentionsKeyFacts) {
  const SimConfig cfg = parse({"k=8", "n=3", "routing=adaptive", "nf=12"});
  const std::string desc = describeConfig(cfg);
  EXPECT_NE(desc.find("8-ary 3-cube"), std::string::npos);
  EXPECT_NE(desc.find("adaptive"), std::string::npos);
  EXPECT_NE(desc.find("nf=12"), std::string::npos);
}

TEST(ConfigParse, ParsedConfigRunsEndToEnd) {
  SimConfig cfg = parse({"k=4", "n=2", "vcs=2", "msg_length=4", "rate=0.01",
                         "warmup=50", "measured=300", "seed=3"});
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace swft
