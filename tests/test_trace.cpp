// Path-level verification through the trace recorder: the properties the
// paper's deadlock/livelock arguments rest on, checked on real executions.
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

/// Split a message's events into network segments: each segment is the hop
/// list between an Inject/Reinject and the following Absorb/Deliver.
std::vector<std::vector<TraceEvent>> segments(const std::vector<TraceEvent>& events) {
  std::vector<std::vector<TraceEvent>> out;
  std::vector<TraceEvent> cur;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::Inject:
      case TraceEvent::Kind::Reinject:
        cur.clear();
        break;
      case TraceEvent::Kind::Hop:
        cur.push_back(e);
        break;
      case TraceEvent::Kind::Absorb:
      case TraceEvent::Kind::Deliver:
        out.push_back(cur);
        cur.clear();
        break;
    }
  }
  return out;
}

/// Dimension-order check: dims visited within one segment never decrease.
bool segmentIsDimensionOrdered(const std::vector<TraceEvent>& hops) {
  int lastDim = -1;
  for (const TraceEvent& h : hops) {
    const int dim = dimOfPort(h.port);
    if (dim < lastDim) return false;
    lastDim = dim;
  }
  return true;
}

TEST(Trace, RecordsFullLifecycleOfOneMessage) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  const TorusTopology& topo = net.topology();
  net.injectTestMessage(at(topo, {0, 0}), at(topo, {3, 2}), 4, RoutingMode::Deterministic);
  net.run();

  ASSERT_EQ(trace.messageCount(), 1u);
  const auto& events = trace.eventsFor(0);
  ASSERT_GE(events.size(), 7u);  // inject + 5 hops + deliver
  EXPECT_EQ(events.front().kind, TraceEvent::Kind::Inject);
  EXPECT_EQ(events.back().kind, TraceEvent::Kind::Deliver);
  EXPECT_EQ(events.back().node, at(topo, {3, 2}));
  int hops = 0;
  for (const auto& e : events) hops += (e.kind == TraceEvent::Kind::Hop);
  EXPECT_EQ(hops, 5);
  // Cycles are non-decreasing along the trace.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].cycle, events[i - 1].cycle);
  }
}

TEST(Trace, DeterministicSegmentsAreDimensionOrderedUnderFaults) {
  // The deadlock-freedom argument: every in-network segment of every
  // (possibly multiply absorbed) deterministic message is pure e-cube.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.004;
  cfg.messageLength = 8;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1500;
  cfg.faults.randomNodes = 5;
  cfg.seed = 71;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  net.run();

  int absorbedMessages = 0;
  int checkedSegments = 0;
  for (const std::uint32_t seq : trace.tracedMessages()) {
    const auto segs = segments(trace.eventsFor(seq));
    absorbedMessages += (segs.size() > 1);
    for (const auto& seg : segs) {
      ++checkedSegments;
      EXPECT_TRUE(segmentIsDimensionOrdered(seg)) << "message " << seq;
    }
  }
  EXPECT_GT(absorbedMessages, 0) << "the fault set must absorb some messages";
  EXPECT_GT(checkedSegments, 1500);
}

TEST(Trace, DeterministicSegmentsDimensionOrderedIn3D) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 3;
  cfg.vcs = 4;
  cfg.injectionRate = 0.006;
  cfg.messageLength = 6;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1000;
  cfg.faults.randomNodes = 5;
  cfg.seed = 72;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  net.run();
  for (const std::uint32_t seq : trace.tracedMessages()) {
    for (const auto& seg : segments(trace.eventsFor(seq))) {
      ASSERT_TRUE(segmentIsDimensionOrdered(seg)) << "message " << seq;
    }
  }
}

TEST(Trace, FaultFreeAdaptiveHopsAreAllMinimal) {
  // Duato's protocol without faults: every hop reduces the distance to the
  // destination by exactly 1 (minimal adaptive routing).
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 6;
  cfg.routing = RoutingMode::Adaptive;
  cfg.injectionRate = 0.006;
  cfg.messageLength = 8;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1000;
  cfg.seed = 73;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  net.run();
  const TorusTopology& topo = net.topology();

  for (const std::uint32_t seq : trace.tracedMessages()) {
    const auto& events = trace.eventsFor(seq);
    if (events.empty() || events.back().kind != TraceEvent::Kind::Deliver) continue;
    const NodeId dest = events.back().node;
    int prevDist = -1;
    for (const TraceEvent& e : events) {
      if (e.kind != TraceEvent::Kind::Hop) continue;
      const int dist = topo.distance(e.node, dest);
      if (prevDist >= 0) {
        ASSERT_EQ(dist, prevDist - 1) << "non-minimal adaptive hop, message " << seq;
      }
      prevDist = dist;
    }
  }
}

TEST(Trace, AbsorptionEventsMatchQueuedStatistic) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.injectionRate = 0.004;
  cfg.messageLength = 8;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 800;
  cfg.faults.randomNodes = 4;
  cfg.seed = 74;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  const SimResult r = net.run();

  std::uint64_t absorbs = 0;
  std::uint64_t reinjects = 0;
  for (const std::uint32_t seq : trace.tracedMessages()) {
    for (const TraceEvent& e : trace.eventsFor(seq)) {
      absorbs += (e.kind == TraceEvent::Kind::Absorb);
      reinjects += (e.kind == TraceEvent::Kind::Reinject);
    }
  }
  EXPECT_EQ(absorbs, r.messagesQueued) << "trace and statistics must agree";
  EXPECT_LE(reinjects, absorbs) << "some absorbed messages may still be queued at stop";
  EXPECT_GE(reinjects + 64, absorbs) << "most absorptions re-inject promptly";
}

TEST(Trace, ReinjectionHappensAtTheAbsorptionNode) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.injectionRate = 0.0;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  const TorusTopology topo(8, 2);
  cfg.faults.explicitNodes = {at(topo, {2, 1})};
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  net.injectTestMessage(at(topo, {1, 1}), at(topo, {4, 1}), 4, RoutingMode::Deterministic);
  net.run();

  const auto& events = trace.eventsFor(0);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    if (events[i].kind == TraceEvent::Kind::Absorb) {
      ASSERT_EQ(events[i + 1].kind, TraceEvent::Kind::Reinject);
      EXPECT_EQ(events[i + 1].node, events[i].node)
          << "the messaging layer re-injects locally";
      EXPECT_GE(events[i + 1].cycle, events[i].cycle);
    }
  }
}

TEST(Trace, DetachedRecorderCostsNothing) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.injectionRate = 0.01;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 200;
  Network net(cfg);  // no recorder attached
  const SimResult r = net.run();
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace swft
