// Partition edge cases for the domain-decomposed sparse-mt engine
// (src/sim/engine_mt.hpp). The broad equivalence matrix and the fuzz harness
// cover the statistical surface; this suite pins the partition math itself
// and the geometric corners where domain decomposition is most likely to go
// wrong: node counts not divisible by the thread count, thread counts
// exceeding the node count, the single-domain fallback, and one-node-wide
// domains where *every* link crosses a domain boundary.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/config.hpp"
#include "src/sim/engine_mt.hpp"
#include "src/sim/network.hpp"

namespace swft {
namespace {

// ---------------------------------------------------------------------------
// Partition math.

TEST(MtPartition, DomainStartsCoverEveryNodeExactlyOnce) {
  for (int nodes : {1, 2, 7, 9, 16, 64, 100, 4096}) {
    for (int domains : {1, 2, 3, 4, 5, 8, 16}) {
      if (domains > nodes) continue;
      SCOPED_TRACE("nodes=" + std::to_string(nodes) +
                   " domains=" + std::to_string(domains));
      EXPECT_EQ(mtDomainStart(nodes, domains, 0), 0);
      EXPECT_EQ(mtDomainStart(nodes, domains, domains), nodes);
      int covered = 0;
      for (int d = 0; d < domains; ++d) {
        const int lo = mtDomainStart(nodes, domains, d);
        const int hi = mtDomainStart(nodes, domains, d + 1);
        EXPECT_LT(lo, hi) << "every domain must be non-empty";
        covered += hi - lo;
      }
      EXPECT_EQ(covered, nodes);
    }
  }
}

TEST(MtPartition, DomainSizesBalancedWithinOne) {
  for (int nodes : {9, 16, 100, 4096}) {
    for (int domains : {2, 3, 4, 7, 8}) {
      int minSize = nodes, maxSize = 0;
      for (int d = 0; d < domains; ++d) {
        const int size = mtDomainStart(nodes, domains, d + 1) -
                         mtDomainStart(nodes, domains, d);
        minSize = std::min(minSize, size);
        maxSize = std::max(maxSize, size);
      }
      EXPECT_LE(maxSize - minSize, 1)
          << "nodes=" << nodes << " domains=" << domains;
    }
  }
}

TEST(MtPartition, EffectiveDomainsClampsToNodeCountAndFloorsAtOne) {
  EXPECT_EQ(mtEffectiveDomains(16, 1), 1);
  EXPECT_EQ(mtEffectiveDomains(16, 8), 8);
  EXPECT_EQ(mtEffectiveDomains(16, 16), 16);
  EXPECT_EQ(mtEffectiveDomains(16, 17), 16);   // more threads than nodes
  EXPECT_EQ(mtEffectiveDomains(9, 1024), 9);
  EXPECT_EQ(mtEffectiveDomains(9, 0), 1);      // defensive floor
  EXPECT_EQ(mtEffectiveDomains(9, -3), 1);
}

// ---------------------------------------------------------------------------
// Whole-simulation edge cases: sparse-mt must be bit-identical to the
// single-threaded sparse engine regardless of partition geometry.

SimConfig smallTorus() {
  SimConfig cfg;
  cfg.radix = 3;
  cfg.dims = 2;  // 9 nodes: odd, prime-squared — never divisible by 2/4/8
  cfg.vcs = 3;
  cfg.escapeVcs = 2;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.02;
  cfg.routing = RoutingMode::Adaptive;
  cfg.warmupMessages = 60;
  cfg.measuredMessages = 300;
  cfg.maxCycles = 200'000;
  cfg.seed = 1109;
  return cfg;
}

SimResult runMt(SimConfig cfg, int simThreads) {
  cfg.engine = simThreads == 0 ? EngineKind::Sparse : EngineKind::SparseMt;
  cfg.simThreads = simThreads == 0 ? 1 : simThreads;
  return runSimulation(cfg);
}

void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.generatedTotal, b.generatedTotal);
  EXPECT_EQ(a.deliveredTotal, b.deliveredTotal);
  EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
  EXPECT_EQ(a.messagesQueued, b.messagesQueued);
  EXPECT_EQ(a.absorbedMessages, b.absorbedMessages);
  EXPECT_EQ(a.reversals, b.reversals);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.completed, b.completed);
  // Exact doubles: identical work in identical order.
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.latencyStddev, b.latencyStddev);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.meanHops, b.meanHops);
  EXPECT_EQ(a.throughput, b.throughput);
}

TEST(MtEdgeCases, SingleDomainFallbackMatchesSparse) {
  const SimResult sparse = runMt(smallTorus(), 0);
  const SimResult mt1 = runMt(smallTorus(), 1);
  EXPECT_TRUE(sparse.completed);
  expectIdentical(sparse, mt1);
}

TEST(MtEdgeCases, NodeCountNotDivisibleByThreadCount) {
  // 9 nodes over 4 domains -> sizes {2, 2, 2, 3}; over 2 -> {4, 5}.
  const SimResult sparse = runMt(smallTorus(), 0);
  for (int t : {2, 4, 6}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    expectIdentical(sparse, runMt(smallTorus(), t));
  }
}

TEST(MtEdgeCases, OneNodeDomainsEveryLinkCrossesABoundary) {
  // sim_threads == nodes: all 9 domains are a single router wide, so every
  // hop and every credit is a cross-domain exchange.
  const SimResult sparse = runMt(smallTorus(), 0);
  expectIdentical(sparse, runMt(smallTorus(), 9));
}

TEST(MtEdgeCases, ThreadCountExceedingNodesClampsToOnePerNode) {
  const SimResult nine = runMt(smallTorus(), 9);
  for (int t : {10, 64, 1 << 20}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    expectIdentical(nine, runMt(smallTorus(), t));
  }
}

// ---------------------------------------------------------------------------
// Candidate-card staleness. P1 qualifies link candidates against a
// start-of-cycle credit snapshot; the baton must catch every way that
// snapshot can go stale before the carded router's turn. Each test below
// drives one invalidation trigger hard and checks bit-identity against the
// serial sparse engine.

TEST(MtEdgeCases, DepthOneBuffersCreditFreedByEarlierRouterMidBaton) {
  // bufferDepth=1 makes every occupied buffer snapshot-full: a candidate that
  // P1 marked credit-blocked becomes eligible the moment an earlier-id router
  // pops the single slot downstream, so almost every movement rides the wake
  // stamp. A wake that is dropped (stale card used) or double-applied shows
  // up immediately as a latency/hop divergence.
  SimConfig cfg = smallTorus();
  cfg.bufferDepth = 1;
  cfg.injectionRate = 0.08;  // saturate: keep the wake path hot all run
  const SimResult sparse = runMt(cfg, 0);
  EXPECT_TRUE(sparse.completed);
  for (int t : {2, 3, 9}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    expectIdentical(sparse, runMt(cfg, t));
  }
}

TEST(MtEdgeCases, FoldInLandingOnCardedRouterAtHighRate) {
  // Short messages at high rate: headers dominate the flit mix, so routers
  // constantly fold freshly-arrived headers into neighbours that already
  // carry a P1 card for this cycle. The baton must re-qualify exactly the
  // fold-touched routers and leave every other card intact.
  SimConfig cfg = smallTorus();
  cfg.messageLength = 2;     // header-heavy traffic maximises fold-ins
  cfg.injectionRate = 0.1;
  cfg.measuredMessages = 500;
  const SimResult sparse = runMt(cfg, 0);
  EXPECT_TRUE(sparse.completed);
  for (int t : {2, 4, 9}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    expectIdentical(sparse, runMt(cfg, t));
  }
}

TEST(MtEdgeCases, OneWideDomainsAtSaturation) {
  // The partition corner and the load corner together: every domain is one
  // router wide (every push crosses a boundary and defers to P3) while the
  // network runs saturated, so staged commit spans, cross-domain re-queues
  // and wake stamps all fire on every single baton pass.
  SimConfig cfg = smallTorus();
  cfg.injectionRate = 0.12;
  const SimResult sparse = runMt(cfg, 0);
  EXPECT_TRUE(sparse.completed);
  expectIdentical(sparse, runMt(cfg, 9));
}

TEST(MtEdgeCases, PhaseTimersDoNotPerturbResults) {
  // phase_timers=1 only adds wall-clock bookkeeping; results must stay
  // bit-identical with the flag on, for both the serial and the mt engine.
  SimConfig plain = smallTorus();
  SimConfig timed = smallTorus();
  timed.phaseTimers = true;
  expectIdentical(runMt(plain, 0), runMt(timed, 0));
  expectIdentical(runMt(plain, 3), runMt(timed, 3));
}

TEST(MtEdgeCases, FaultyRingWithDecisionTime) {
  // 1-D ring with faults, software-layer reinjection and td > 0: header
  // arrival stamps and absorption all land on domain boundaries when the
  // ring is split three ways.
  SimConfig cfg;
  cfg.radix = 12;
  cfg.dims = 1;
  cfg.vcs = 4;
  cfg.escapeVcs = 2;
  cfg.routerDecisionTime = 2;
  cfg.messageLength = 6;
  cfg.injectionRate = 0.01;
  cfg.faults.randomNodes = 1;
  cfg.reinjectDelay = 15;
  cfg.warmupMessages = 40;
  cfg.measuredMessages = 200;
  cfg.maxCycles = 200'000;
  cfg.seed = 42;
  const SimResult sparse = runMt(cfg, 0);
  EXPECT_TRUE(sparse.completed);
  for (int t : {3, 5, 12}) {
    SCOPED_TRACE("sim_threads=" + std::to_string(t));
    expectIdentical(sparse, runMt(cfg, t));
  }
}

}  // namespace
}  // namespace swft
