#include "src/sim/router_state.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(RouterState, LayoutAndIndexing) {
  // 2-D torus router: 5 input ports (4 network + injection), V=4.
  RouterState r(5, 4, 4, 2);
  EXPECT_EQ(r.vcs(), 4);
  EXPECT_EQ(r.unitCount(), 20);
  EXPECT_EQ(r.unitIndex(0, 0), 0);
  EXPECT_EQ(r.unitIndex(3, 2), 14);
  EXPECT_EQ(r.unit(3, 2).buf.capacity(), 2);
}

TEST(RouterState, OutputOwnershipLifecycle) {
  RouterState r(5, 4, 4, 4);
  EXPECT_EQ(r.outOwner(2, 1), -1);
  r.setOutOwner(2, 1, 7);
  EXPECT_EQ(r.outOwner(2, 1), 7);
  EXPECT_EQ(r.outOwner(2, 0), -1) << "other VCs unaffected";
  r.setOutOwner(2, 1, -1);
  EXPECT_EQ(r.outOwner(2, 1), -1);
}

TEST(RouterState, OccupancyBitsTrackUnits) {
  RouterState r(7, 6, 10, 4);  // 3-D router, V=10: 70 units, crosses word 0/1
  EXPECT_FALSE(r.anyOccupied());
  r.markOccupied(3);
  r.markOccupied(69);
  EXPECT_TRUE(r.anyOccupied());
  EXPECT_TRUE(r.occupancy()[0] & (1ULL << 3));
  EXPECT_TRUE(r.occupancy()[1] & (1ULL << 5));  // 69 = 64 + 5
  r.markEmpty(3);
  EXPECT_FALSE(r.occupancy()[0] & (1ULL << 3));
  EXPECT_TRUE(r.anyOccupied());
  r.markEmpty(69);
  EXPECT_FALSE(r.anyOccupied());
}

TEST(RouterState, CursorsPerPort) {
  RouterState r(5, 4, 4, 4);
  EXPECT_EQ(r.cursor(0), 0);
  r.setCursor(0, 13);
  r.setCursor(4, 7);
  EXPECT_EQ(r.cursor(0), 13);
  EXPECT_EQ(r.cursor(4), 7);
  EXPECT_EQ(r.cursor(1), 0);
}

TEST(RouterState, RejectsTooManyUnits) {
  // 17 ports x 16 VCs = 272 units > 320-bit mask? 272 < 320: fine.
  EXPECT_NO_THROW(RouterState(17, 16, 16, 4));
  // A hypothetical 21-port router at V=16 would exceed the mask.
  EXPECT_THROW(RouterState(21, 20, 16, 4), std::invalid_argument);
}

TEST(RouterState, BuffersAreIndependent) {
  RouterState r(5, 4, 2, 3);
  r.unit(0, 0).buf.push(Flit{1, FlitKind::Header}, 0);
  r.unit(0, 1).buf.push(Flit{2, FlitKind::Header}, 0);
  EXPECT_EQ(r.unit(0, 0).buf.front().msg, 1u);
  EXPECT_EQ(r.unit(0, 1).buf.front().msg, 2u);
  EXPECT_EQ(r.unit(1, 0).buf.size(), 0);
}

}  // namespace
}  // namespace swft
