// Validation of the analytic latency model against exact values and the
// flit-level simulator (the paper's §6 future-work item, built and tested).
#include "src/model/analytic.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

#include "src/sim/network.hpp"

namespace swft {
namespace {

TEST(ModelDistance, ExactSmallCases) {
  // 4-ary 1-cube: offsets {0,1,2,1}, mean over 3 non-self = (1+2+1)/3.
  EXPECT_NEAR(meanUniformDistance(4, 1), 4.0 / 3.0, 1e-12);
  // 8-ary 2-cube: per-dim mean over all offsets = 2; x2 dims; x64/63.
  EXPECT_NEAR(meanUniformDistance(8, 2), 4.0 * 64.0 / 63.0, 1e-12);
  // 8-ary 3-cube.
  EXPECT_NEAR(meanUniformDistance(8, 3), 6.0 * 512.0 / 511.0, 1e-12);
}

TEST(ModelDistance, MatchesMeasuredHops) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.injectionRate = 0.003;
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 3000;
  cfg.seed = 99;
  const SimResult sim = runSimulation(cfg);
  EXPECT_NEAR(sim.meanHops, meanUniformDistance(8, 2), 0.1);
}

TEST(Model, UnloadedLatencyIsHopsPlusLength) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 32;
  cfg.injectionRate = 1e-6;
  const ModelResult m = analyticLatency(cfg);
  EXPECT_NEAR(m.meanLatency, m.meanHops + 32, 1.5);
  EXPECT_FALSE(m.saturated);
}

TEST(Model, MonotoneInLoadAndDivergesAtSaturation) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 32;
  double last = 0.0;
  for (double rate : {0.002, 0.004, 0.008, 0.012}) {
    cfg.injectionRate = rate;
    const ModelResult m = analyticLatency(cfg);
    EXPECT_GT(m.meanLatency, last);
    last = m.meanLatency;
  }
  cfg.injectionRate = 0.05;  // far beyond capacity
  EXPECT_TRUE(analyticLatency(cfg).saturated);
}

TEST(Model, SaturationEstimateInPlausibleBand) {
  // 8-ary 2-cube, M=32: capacity 2n/(dbar*M) ~ 0.031 theoretical ideal;
  // wormhole simulators reach roughly half of it.
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.messageLength = 32;
  const ModelResult m = analyticLatency(cfg);
  EXPECT_GT(m.saturationRate, 0.015);
  EXPECT_LT(m.saturationRate, 0.05);
}

TEST(Model, FaultsRaiseLatencyAndAbsorptionProbability) {
  SimConfig healthy;
  healthy.radix = 8;
  healthy.dims = 2;
  healthy.messageLength = 32;
  healthy.injectionRate = 0.004;
  SimConfig faulty = healthy;
  faulty.faults.randomNodes = 5;
  const ModelResult h = analyticLatency(healthy);
  const ModelResult f = analyticLatency(faulty);
  EXPECT_EQ(h.absorbProbability, 0.0);
  EXPECT_GT(f.absorbProbability, 0.2);  // 5/63 per router over ~4 hops
  EXPECT_LT(f.absorbProbability, 0.5);
  EXPECT_GT(f.meanLatency, h.meanLatency);
}

TEST(Model, RegionNodesCountTowardFaultFraction) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.messageLength = 32;
  cfg.injectionRate = 0.002;
  const TorusTopology topo(8, 2);
  cfg.faults.regions.push_back(fig5U8(topo));  // 8 nodes
  const ModelResult m = analyticLatency(cfg);
  EXPECT_GT(m.absorbProbability, 0.3);
}

struct AgreementCase {
  int k, n, vcs, msgLen;
  double rate;
  double tolerance;  // relative
};

class ModelVsSim : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(ModelVsSim, AgreesBelowSaturation) {
  const auto& p = GetParam();
  SimConfig cfg;
  cfg.radix = p.k;
  cfg.dims = p.n;
  cfg.vcs = p.vcs;
  cfg.messageLength = p.msgLen;
  cfg.injectionRate = p.rate;
  cfg.warmupMessages = 400;
  cfg.measuredMessages = 4000;
  cfg.seed = 321;
  const SimResult sim = runSimulation(cfg);
  ASSERT_TRUE(sim.completed);
  const ModelResult model = analyticLatency(cfg);
  ASSERT_FALSE(model.saturated);
  EXPECT_NEAR(model.meanLatency, sim.meanLatency, sim.meanLatency * p.tolerance)
      << "model " << model.meanLatency << " vs sim " << sim.meanLatency;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSim,
    ::testing::Values(AgreementCase{8, 2, 4, 32, 0.002, 0.25},
                      AgreementCase{8, 2, 4, 32, 0.005, 0.25},
                      AgreementCase{8, 2, 6, 32, 0.006, 0.25},
                      AgreementCase{8, 2, 4, 64, 0.002, 0.25},
                      AgreementCase{8, 3, 4, 32, 0.004, 0.30},
                      AgreementCase{4, 2, 4, 16, 0.010, 0.30}),
    [](const auto& info) {
      const auto& p = info.param;
      return catName({knName(p.k, p.n), "V", std::to_string(p.vcs), "M",
                      std::to_string(p.msgLen), "r",
                      std::to_string(static_cast<int>(p.rate * 10000))});
    });

}  // namespace
}  // namespace swft
