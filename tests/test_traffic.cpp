#include "src/traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <map>

namespace swft {
namespace {

TEST(Traffic, UniformNeverPicksSelfOrFaulty) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(10);
  faults.failNode(20);
  const TrafficGenerator gen(TrafficPattern::Uniform, faults);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = gen.pickDestination(5, rng);
    ASSERT_NE(d, 5u);
    ASSERT_FALSE(faults.nodeFaulty(d));
  }
}

TEST(Traffic, UniformCoversAllHealthyDestinations) {
  const TorusTopology topo(4, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Uniform, faults);
  Rng rng(2);
  std::map<NodeId, int> hist;
  for (int i = 0; i < 20000; ++i) ++hist[gen.pickDestination(0, rng)];
  EXPECT_EQ(hist.size(), topo.nodeCount() - 1);
  for (const auto& [node, count] : hist) {
    EXPECT_GT(count, 20000 / 15 / 3) << "roughly uniform across " << node;
  }
}

TEST(Traffic, TransposeRotatesDigits) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Transpose, faults);
  Rng rng(3);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 2;
  c[1] = 5;
  const NodeId src = topo.idOf(c);
  const NodeId dst = gen.pickDestination(src, rng);
  const Coordinates dc = topo.coordsOf(dst);
  EXPECT_EQ(dc[0], 5);
  EXPECT_EQ(dc[1], 2);
}

TEST(Traffic, TransposeFixedPointsReturnInvalid) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Transpose, faults);
  Rng rng(4);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 3;
  c[1] = 3;  // on the diagonal: transpose maps to self
  EXPECT_EQ(gen.pickDestination(topo.idOf(c), rng), kInvalidNode);
}

TEST(Traffic, BitComplementMapsToOppositeCorner) {
  const TorusTopology topo(8, 3);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::BitComplement, faults);
  Rng rng(5);
  const NodeId dst = gen.pickDestination(0, rng);
  const Coordinates dc = topo.coordsOf(dst);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(dc[d], 7);
}

TEST(Traffic, BitComplementToFaultyDestinationSkips) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 7;
  c[1] = 7;
  faults.failNode(topo.idOf(c));
  const TrafficGenerator gen(TrafficPattern::BitComplement, faults);
  Rng rng(6);
  EXPECT_EQ(gen.pickDestination(0, rng), kInvalidNode);
}

TEST(Traffic, HotspotConcentratesRequestedFraction) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Hotspot, faults, 0.3);
  Rng rng(7);
  std::map<NodeId, int> hist;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++hist[gen.pickDestination(0, rng)];
  // Find the hotspot: the clear modal destination.
  int maxCount = 0;
  for (const auto& [node, count] : hist) maxCount = std::max(maxCount, count);
  EXPECT_NEAR(static_cast<double>(maxCount) / n, 0.3, 0.03);
}

TEST(Traffic, PatternNames) {
  EXPECT_EQ(trafficPatternName(TrafficPattern::Uniform), "uniform");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Transpose), "transpose");
  EXPECT_EQ(trafficPatternName(TrafficPattern::BitComplement), "bit-complement");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Hotspot), "hotspot");
}

}  // namespace
}  // namespace swft
