#include "src/traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <map>

namespace swft {
namespace {

TEST(Traffic, UniformNeverPicksSelfOrFaulty) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(10);
  faults.failNode(20);
  const TrafficGenerator gen(TrafficPattern::Uniform, faults);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = gen.pickDestination(5, rng);
    ASSERT_NE(d, 5u);
    ASSERT_FALSE(faults.nodeFaulty(d));
  }
}

TEST(Traffic, UniformCoversAllHealthyDestinations) {
  const TorusTopology topo(4, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Uniform, faults);
  Rng rng(2);
  std::map<NodeId, int> hist;
  for (int i = 0; i < 20000; ++i) ++hist[gen.pickDestination(0, rng)];
  EXPECT_EQ(hist.size(), topo.nodeCount() - 1);
  for (const auto& [node, count] : hist) {
    EXPECT_GT(count, 20000 / 15 / 3) << "roughly uniform across " << node;
  }
}

TEST(Traffic, TransposeRotatesDigits) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Transpose, faults);
  Rng rng(3);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 2;
  c[1] = 5;
  const NodeId src = topo.idOf(c);
  const NodeId dst = gen.pickDestination(src, rng);
  const Coordinates dc = topo.coordsOf(dst);
  EXPECT_EQ(dc[0], 5);
  EXPECT_EQ(dc[1], 2);
}

TEST(Traffic, TransposeFixedPointsReturnInvalid) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Transpose, faults);
  Rng rng(4);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 3;
  c[1] = 3;  // on the diagonal: transpose maps to self
  EXPECT_EQ(gen.pickDestination(topo.idOf(c), rng), kInvalidNode);
}

TEST(Traffic, BitComplementMapsToOppositeCorner) {
  const TorusTopology topo(8, 3);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::BitComplement, faults);
  Rng rng(5);
  const NodeId dst = gen.pickDestination(0, rng);
  const Coordinates dc = topo.coordsOf(dst);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(dc[d], 7);
}

TEST(Traffic, BitComplementToFaultyDestinationSkips) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 7;
  c[1] = 7;
  faults.failNode(topo.idOf(c));
  const TrafficGenerator gen(TrafficPattern::BitComplement, faults);
  Rng rng(6);
  EXPECT_EQ(gen.pickDestination(0, rng), kInvalidNode);
}

TEST(Traffic, HotspotConcentratesRequestedFraction) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Hotspot, faults, 0.3);
  Rng rng(7);
  std::map<NodeId, int> hist;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++hist[gen.pickDestination(0, rng)];
  // Find the hotspot: the clear modal destination.
  int maxCount = 0;
  for (const auto& [node, count] : hist) maxCount = std::max(maxCount, count);
  EXPECT_NEAR(static_cast<double>(maxCount) / n, 0.3, 0.03);
}

TEST(Traffic, BitReversalReversesAddressBits) {
  const TorusTopology topo(8, 2);  // 64 nodes, 6 address bits
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::BitReversal, faults);
  Rng rng(8);
  // src 0b000001 -> 0b100000; src 0b001101 -> 0b101100.
  EXPECT_EQ(gen.pickDestination(1, rng), 32u);
  EXPECT_EQ(gen.pickDestination(13, rng), 44u);
}

TEST(Traffic, BitReversalPalindromesAndFaultyDestsReturnInvalid) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(32);  // reversal image of node 1
  const TrafficGenerator gen(TrafficPattern::BitReversal, faults);
  Rng rng(9);
  EXPECT_EQ(gen.pickDestination(0, rng), kInvalidNode);   // 000000 is a palindrome
  EXPECT_EQ(gen.pickDestination(33, rng), kInvalidNode);  // 100001 is a palindrome
  EXPECT_EQ(gen.pickDestination(1, rng), kInvalidNode);   // image faulty
}

TEST(Traffic, BitReversalNonPowerOfTwoFallsBackToDigitReversal) {
  const TorusTopology topo(6, 3);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::BitReversal, faults);
  Rng rng(10);
  Coordinates c;
  c.digit.resize(3);
  c[0] = 1;
  c[1] = 2;
  c[2] = 4;
  const NodeId dst = gen.pickDestination(topo.idOf(c), rng);
  ASSERT_NE(dst, kInvalidNode);
  const Coordinates dc = topo.coordsOf(dst);
  EXPECT_EQ(dc[0], 4);
  EXPECT_EQ(dc[1], 2);
  EXPECT_EQ(dc[2], 1);
}

TEST(Traffic, ShuffleRotatesAddressBitsLeft) {
  const TorusTopology topo(8, 2);  // 6 address bits
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Shuffle, faults);
  Rng rng(11);
  EXPECT_EQ(gen.pickDestination(1, rng), 2u);     // 000001 -> 000010
  EXPECT_EQ(gen.pickDestination(32, rng), 1u);    // 100000 -> 000001
  EXPECT_EQ(gen.pickDestination(33, rng), 3u);    // 100001 -> 000011
  EXPECT_EQ(gen.pickDestination(0, rng), kInvalidNode);   // fixed point
  EXPECT_EQ(gen.pickDestination(63, rng), kInvalidNode);  // fixed point
}

TEST(Traffic, ShuffleNeverPicksSelfOrFaulty) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(2);
  const TrafficGenerator gen(TrafficPattern::Shuffle, faults);
  Rng rng(12);
  EXPECT_EQ(gen.pickDestination(1, rng), kInvalidNode);  // image 2 is faulty
  for (NodeId src = 0; src < topo.nodeCount(); ++src) {
    const NodeId d = gen.pickDestination(src, rng);
    if (d == kInvalidNode) continue;
    EXPECT_NE(d, src);
    EXPECT_FALSE(faults.nodeFaulty(d));
  }
}

TEST(Traffic, ShuffleCoversAllNonFixedSources) {
  // The shuffle permutation is a bijection; over all sources the destination
  // multiset must equal the non-palindromic address set exactly once each.
  const TorusTopology topo(4, 2);  // 16 nodes, 4 bits
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Shuffle, faults);
  Rng rng(13);
  std::map<NodeId, int> hist;
  for (NodeId src = 0; src < topo.nodeCount(); ++src) {
    const NodeId d = gen.pickDestination(src, rng);
    if (d != kInvalidNode) ++hist[d];
  }
  for (const auto& [node, count] : hist) EXPECT_EQ(count, 1) << node;
}

TEST(Traffic, TornadoOffsetsEveryDigitByHalfRing) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Tornado, faults);
  Rng rng(14);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 2;
  c[1] = 6;
  const NodeId dst = gen.pickDestination(topo.idOf(c), rng);
  ASSERT_NE(dst, kInvalidNode);
  const Coordinates dc = topo.coordsOf(dst);
  EXPECT_EQ(dc[0], 5);  // +ceil(8/2)-1 = +3 mod 8
  EXPECT_EQ(dc[1], 1);
}

TEST(Traffic, TornadoExcludesSelfAndFaulty) {
  // k=2: the tornado offset is 0, so every source maps to itself -> invalid.
  const TorusTopology tiny(2, 2);
  const FaultSet tinyFaults(tiny);
  const TrafficGenerator degenerate(TrafficPattern::Tornado, tinyFaults);
  Rng rng(15);
  for (NodeId src = 0; src < tiny.nodeCount(); ++src) {
    EXPECT_EQ(degenerate.pickDestination(src, rng), kInvalidNode);
  }

  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  Coordinates c;
  c.digit.resize(2);
  c[0] = 3;
  c[1] = 3;
  faults.failNode(topo.idOf(c));
  const TrafficGenerator gen(TrafficPattern::Tornado, faults);
  c[0] = 0;
  c[1] = 0;
  EXPECT_EQ(gen.pickDestination(topo.idOf(c), rng), kInvalidNode);  // image (3,3) faulty
}

TEST(Traffic, TornadoDestinationDistributionIsAPermutation) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  const TrafficGenerator gen(TrafficPattern::Tornado, faults);
  Rng rng(16);
  std::map<NodeId, int> hist;
  for (NodeId src = 0; src < topo.nodeCount(); ++src) {
    const NodeId d = gen.pickDestination(src, rng);
    ASSERT_NE(d, kInvalidNode);  // offset 3 never maps to self for k=8
    ++hist[d];
  }
  EXPECT_EQ(hist.size(), topo.nodeCount());
  for (const auto& [node, count] : hist) EXPECT_EQ(count, 1) << node;
}

TEST(Traffic, PatternNames) {
  EXPECT_EQ(trafficPatternName(TrafficPattern::Uniform), "uniform");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Transpose), "transpose");
  EXPECT_EQ(trafficPatternName(TrafficPattern::BitComplement), "bitcomp");
  EXPECT_EQ(trafficPatternName(TrafficPattern::BitReversal), "bitrev");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Shuffle), "shuffle");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Tornado), "tornado");
  EXPECT_EQ(trafficPatternName(TrafficPattern::Hotspot), "hotspot");
}

TEST(Traffic, ParseIsInverseOfName) {
  for (const TrafficPattern p : kAllTrafficPatterns) {
    const auto parsed = parseTrafficPattern(trafficPatternName(p));
    ASSERT_TRUE(parsed.has_value()) << trafficPatternName(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parseTrafficPattern("bit-complement"), TrafficPattern::BitComplement);
  EXPECT_FALSE(parseTrafficPattern("worst").has_value());
  EXPECT_FALSE(parseTrafficPattern("").has_value());
}

}  // namespace
}  // namespace swft
