// Differential fuzz harness: the sparse engine's equivalence contract,
// stress-tested over randomized configurations.
//
// The hand-picked matrix in test_engine_equivalence.cpp pins eight
// representative corners; this suite draws a few hundred random points from
// the full configuration space (topology size and dimensionality, VC counts,
// buffer depths, routing mode, every traffic pattern, fault counts, router
// decision time, message lengths, injection rates) and runs each under all
// three engines to completion — dense, sparse, and sparse-mt twice, with
// sim_threads axes cycling {1, 2, 3, 8} and {2, 5, 8} — requiring
// bit-identical SimResults: exact double equality, no tolerance.
//
// On a mismatch the failing point is printed as a ready-to-paste
// `swft_sim`-style key=value string (the config_parse.hpp grammar) so a
// failure in CI can be reproduced in one command without re-running the
// fuzzer.
//
// Knobs (environment):
//   SWFT_FUZZ_CONFIGS  number of random configs (default 200)
//   SWFT_FUZZ_SEED     base seed for the config generator (default 20060425)
//
// Registered under the `fuzz` ctest label — excluded from tier1; CI runs a
// reduced count under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/sim/config.hpp"
#include "src/sim/network.hpp"
#include "src/sim/stats.hpp"
#include "src/traffic/patterns.hpp"
#include "src/util/rng.hpp"
#include "src/util/simd.hpp"

namespace swft {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 10);
  return (end == v) ? fallback : parsed;
}

/// Render `cfg` in the config_parse.hpp key=value grammar, ready to paste
/// onto a swft_sim command line (or feed back through parseConfig).
std::string reproString(const SimConfig& cfg) {
  std::ostringstream os;
  os << "k=" << cfg.radix << " n=" << cfg.dims << " vcs=" << cfg.vcs
     << " escape_vcs=" << cfg.escapeVcs << " buffer_depth=" << cfg.bufferDepth
     << " td=" << cfg.routerDecisionTime << " msg_length=" << cfg.messageLength
     << " rate=" << cfg.injectionRate
     << " traffic=" << trafficPatternName(cfg.pattern);
  if (cfg.pattern == TrafficPattern::Hotspot) {
    os << " hotspot_fraction=" << cfg.hotspotFraction;
  }
  os << " routing=" << (cfg.routing == RoutingMode::Adaptive ? "adaptive" : "det");
  if (cfg.faults.randomNodes > 0) {
    os << " nf=" << cfg.faults.randomNodes << " delta=" << cfg.reinjectDelay;
  }
  os << " livelock_threshold=" << cfg.livelockThreshold
     << " warmup=" << cfg.warmupMessages << " measured=" << cfg.measuredMessages
     << " max_cycles=" << cfg.maxCycles << " seed=" << cfg.seed;
  return os.str();
}

/// Draw one random-but-bounded configuration. Node counts stay <= ~256 and
/// maxCycles is capped so a full 200-config sweep finishes in minutes, while
/// still crossing every engine code path: wormhole streaming, VC allocation
/// under contention, credit backpressure (depth 1), multi-word occupancy
/// (vcs * ports > 64), faults with software-layer absorption/reinjection,
/// non-zero router decision time (exact-arrival mode), and saturated points
/// that stop on max_cycles instead of the delivery target.
SimConfig drawConfig(Rng& rng) {
  SimConfig cfg;
  cfg.dims = 1 + static_cast<int>(rng.uniform(4));  // n in [1, 4]
  switch (cfg.dims) {
    case 1: cfg.radix = 4 + static_cast<int>(rng.uniform(13)); break;  // k in [4, 16]
    case 2: cfg.radix = 3 + static_cast<int>(rng.uniform(10)); break;  // k in [3, 12]
    case 3: cfg.radix = 3 + static_cast<int>(rng.uniform(4));  break;  // k in [3, 6]
    default: cfg.radix = 3; break;                                     // 3-ary 4-cube
  }
  cfg.vcs = 2 + static_cast<int>(rng.uniform(5));  // V in [2, 6]
  // VcPartition: escapeVcs even, in [2, V].
  cfg.escapeVcs = 2 * (1 + static_cast<int>(rng.uniform(
                               static_cast<std::uint32_t>(cfg.vcs / 2))));
  cfg.bufferDepth = 1 + static_cast<int>(rng.uniform(8));
  cfg.routerDecisionTime = static_cast<int>(rng.uniform(3));  // Td in [0, 2]
  cfg.messageLength = 2 + static_cast<int>(rng.uniform(23));  // M in [2, 24]
  cfg.injectionRate = 0.002 + 0.028 * rng.uniform01();
  constexpr TrafficPattern kPatterns[] = {
      TrafficPattern::Uniform,  TrafficPattern::Transpose,
      TrafficPattern::BitComplement, TrafficPattern::BitReversal,
      TrafficPattern::Shuffle,  TrafficPattern::Tornado,
      TrafficPattern::Hotspot,
  };
  cfg.pattern = kPatterns[rng.uniform(sizeof(kPatterns) / sizeof(kPatterns[0]))];
  if (cfg.pattern == TrafficPattern::Hotspot) {
    cfg.hotspotFraction = 0.05 + 0.45 * rng.uniform01();
  }
  cfg.routing = rng.bernoulli(0.5) ? RoutingMode::Adaptive : RoutingMode::Deterministic;
  if (rng.bernoulli(0.4)) {
    cfg.faults.randomNodes = 1 + static_cast<int>(rng.uniform(4));
    cfg.reinjectDelay = static_cast<int>(rng.uniform(31));
    // Occasionally a tiny threshold so the Valiant escalation path fires.
    if (rng.bernoulli(0.25)) cfg.livelockThreshold = 8;
  }
  cfg.warmupMessages = 20 + static_cast<std::uint32_t>(rng.uniform(61));
  cfg.measuredMessages = 100 + static_cast<std::uint32_t>(rng.uniform(301));
  cfg.maxCycles = 60'000;       // bounds saturated points
  cfg.deadlockWindow = 20'000;  // watchdog still armed inside the cap
  cfg.seed = rng.next();
  return cfg;
}

/// Exact comparison of every SimResult field; mirrors
/// test_engine_equivalence.cpp. Any divergence means the sparse engine did
/// (or skipped) work the dense sweep would not have.
void expectIdentical(const SimResult& sparse, const SimResult& dense,
                     const std::string& repro) {
  EXPECT_EQ(sparse.cycles, dense.cycles) << repro;
  EXPECT_EQ(sparse.generatedTotal, dense.generatedTotal) << repro;
  EXPECT_EQ(sparse.deliveredTotal, dense.deliveredTotal) << repro;
  EXPECT_EQ(sparse.deliveredMeasured, dense.deliveredMeasured) << repro;
  EXPECT_EQ(sparse.messagesQueued, dense.messagesQueued) << repro;
  EXPECT_EQ(sparse.absorbedMessages, dense.absorbedMessages) << repro;
  EXPECT_EQ(sparse.reversals, dense.reversals) << repro;
  EXPECT_EQ(sparse.detours, dense.detours) << repro;
  EXPECT_EQ(sparse.escalations, dense.escalations) << repro;
  EXPECT_EQ(sparse.saturated, dense.saturated) << repro;
  EXPECT_EQ(sparse.deadlockSuspected, dense.deadlockSuspected) << repro;
  EXPECT_EQ(sparse.completed, dense.completed) << repro;
  // Exact double equality, not near: both engines must execute the same
  // floating-point operations in the same order.
  EXPECT_EQ(sparse.meanLatency, dense.meanLatency) << repro;
  EXPECT_EQ(sparse.latencyStddev, dense.latencyStddev) << repro;
  EXPECT_EQ(sparse.maxLatency, dense.maxLatency) << repro;
  EXPECT_EQ(sparse.latencyP50, dense.latencyP50) << repro;
  EXPECT_EQ(sparse.latencyP95, dense.latencyP95) << repro;
  EXPECT_EQ(sparse.latencyP99, dense.latencyP99) << repro;
  EXPECT_EQ(sparse.latencyCi95, dense.latencyCi95) << repro;
  EXPECT_EQ(sparse.meanHops, dense.meanHops) << repro;
  EXPECT_EQ(sparse.throughput, dense.throughput) << repro;
}

TEST(EngineFuzz, SparseMatchesDenseOnRandomConfigs) {
  const std::uint64_t configs = envU64("SWFT_FUZZ_CONFIGS", 200);
  const std::uint64_t baseSeed = envU64("SWFT_FUZZ_SEED", 20060425);

  std::uint64_t ran = 0, skippedDisconnected = 0;
  std::uint64_t totalDelivered = 0, completedRuns = 0;
  // Scalar-vs-vector rotation axis: odd indices force the SIMD layer's
  // scalar fallback for the sparse and mt runs of that config. The dense
  // reference never touches the SIMD paths, so the exact-double comparisons
  // below simultaneously assert scalar == vector == dense. An environment
  // override (SWFT_FORCE_SCALAR=1, as in the sanitizer CI job) pins every
  // index scalar instead.
  const bool envForcedScalar = simd::forceScalar();
  for (std::uint64_t i = 0; i < configs; ++i) {
    const bool forcedScalar = envForcedScalar || (i % 2) != 0;
    simd::setForceScalar(forcedScalar);
    Rng rng(baseSeed);
    rng = rng.split(i);
    SimConfig cfg = drawConfig(rng);
    const std::string repro =
        "repro: " + reproString(cfg) + "  (fuzz index " + std::to_string(i) +
        ", SWFT_FUZZ_SEED=" + std::to_string(baseSeed) +
        (forcedScalar ? ", SWFT_FORCE_SCALAR=1" : "") + ")";

    // sim_threads axis for the sparse-mt run: rotate through single-domain,
    // small odd/even splits, and a count that often exceeds small tori (the
    // engine clamps to one domain per node).
    constexpr int kThreadAxis[] = {1, 2, 3, 8};
    const int simThreads = kThreadAxis[i % (sizeof(kThreadAxis) / sizeof(kThreadAxis[0]))];

    cfg.engine = EngineKind::Dense;
    SimResult dense;
    try {
      dense = runSimulation(cfg);
    } catch (const std::runtime_error&) {
      // Random faults occasionally disconnect a small torus; the sparse
      // builds must reject the identical pattern the same way.
      cfg.engine = EngineKind::Sparse;
      EXPECT_THROW((void)runSimulation(cfg), std::runtime_error) << repro;
      cfg.engine = EngineKind::SparseMt;
      cfg.simThreads = simThreads;
      EXPECT_THROW((void)runSimulation(cfg), std::runtime_error) << repro;
      ++skippedDisconnected;
      continue;
    }
    cfg.engine = EngineKind::Sparse;
    const SimResult sparse = runSimulation(cfg);
    expectIdentical(sparse, dense, repro);
    cfg.engine = EngineKind::SparseMt;
    cfg.simThreads = simThreads;
    const SimResult mt = runSimulation(cfg);
    expectIdentical(mt, dense,
                    repro + " engine=sparse-mt sim_threads=" +
                        std::to_string(simThreads));
    // Fourth engine-config rotation: a second sparse-mt run on an offset
    // axis so every point also runs a genuinely multi-domain split — the
    // {2, 5, 8} axis has no single-domain slot and its prime 5-way partition
    // never divides the common even tori, forcing uneven domains with
    // candidate cards on both sides of every boundary.
    constexpr int kThreadAxis2[] = {2, 5, 8};
    const int simThreads2 =
        kThreadAxis2[i % (sizeof(kThreadAxis2) / sizeof(kThreadAxis2[0]))];
    cfg.simThreads = simThreads2;
    const SimResult mt2 = runSimulation(cfg);
    expectIdentical(mt2, dense,
                    repro + " engine=sparse-mt sim_threads=" +
                        std::to_string(simThreads2));
    ++ran;
    totalDelivered += dense.deliveredMeasured;
    if (dense.completed) ++completedRuns;

    if (::testing::Test::HasFailure()) {
      simd::setForceScalar(envForcedScalar);
      FAIL() << "stopping at first divergent config\n" << repro;
    }
  }
  simd::setForceScalar(envForcedScalar);
  RecordProperty("configs_compared", static_cast<int>(ran));
  RecordProperty("configs_disconnected", static_cast<int>(skippedDisconnected));
  RecordProperty("configs_completed", static_cast<int>(completedRuns));
  // The sweep must mostly exercise real runs, not degenerate rejects, and
  // the comparisons must not be vacuous: messages actually flowed.
  EXPECT_GE(ran * 2, configs);
  EXPECT_GT(totalDelivered, 0u);
  EXPECT_GE(completedRuns * 4, ran);
}

}  // namespace
}  // namespace swft
