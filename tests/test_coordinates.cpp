#include "src/topology/coordinates.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

namespace swft {
namespace {

struct KnParam {
  int k;
  int n;
};

class AddressSpaceRoundTrip : public ::testing::TestWithParam<KnParam> {};

TEST_P(AddressSpaceRoundTrip, IdToCoordsAndBack) {
  const auto [k, n] = GetParam();
  const AddressSpace space(k, n);
  NodeId expected = 1;
  for (int d = 0; d < n; ++d) expected *= static_cast<NodeId>(k);
  ASSERT_EQ(space.nodeCount(), expected);
  for (NodeId id = 0; id < space.nodeCount(); ++id) {
    const Coordinates c = space.coordsOf(id);
    ASSERT_EQ(c.dims(), n);
    for (int d = 0; d < n; ++d) {
      ASSERT_GE(c[d], 0);
      ASSERT_LT(c[d], k);
    }
    ASSERT_EQ(space.idOf(c), id);
  }
}

TEST_P(AddressSpaceRoundTrip, DigitZeroIsLowestDimension) {
  const auto [k, n] = GetParam();
  const AddressSpace space(k, n);
  const Coordinates c1 = space.coordsOf(1);
  EXPECT_EQ(c1[0], 1);
  for (int d = 1; d < n; ++d) EXPECT_EQ(c1[d], 0);
}

INSTANTIATE_TEST_SUITE_P(Grids, AddressSpaceRoundTrip,
                         ::testing::Values(KnParam{2, 1}, KnParam{2, 4}, KnParam{3, 2},
                                           KnParam{4, 3}, KnParam{5, 2}, KnParam{8, 2},
                                           KnParam{8, 3}, KnParam{16, 2}, KnParam{3, 5},
                                           KnParam{2, 8}),
                         [](const auto& info) {
                           return knName(info.param.k, info.param.n);
                         });

TEST(AddressSpace, WrapNormalisesIntoRange) {
  const AddressSpace space(8, 2);
  EXPECT_EQ(space.wrap(8), 0);
  EXPECT_EQ(space.wrap(-1), 7);
  EXPECT_EQ(space.wrap(15), 7);
  EXPECT_EQ(space.wrap(-9), 7);
  EXPECT_EQ(space.wrap(3), 3);
}

TEST(AddressSpace, RejectsBadParameters) {
  EXPECT_THROW(AddressSpace(1, 2), std::invalid_argument);
  EXPECT_THROW(AddressSpace(8, 0), std::invalid_argument);
  EXPECT_THROW(AddressSpace(8, kMaxDims + 1), std::invalid_argument);
  EXPECT_THROW(AddressSpace(4096, 8), std::invalid_argument);  // > 2^24 nodes
}

TEST(Coordinates, EqualityAndString) {
  const AddressSpace space(4, 3);
  const Coordinates a = space.coordsOf(11);
  const Coordinates b = space.coordsOf(11);
  const Coordinates c = space.coordsOf(12);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.str(), "(3,2,0)");  // 11 = 3 + 2*4
}

}  // namespace
}  // namespace swft
