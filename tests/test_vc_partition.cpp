#include "src/routing/vc_partition.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace swft {
namespace {

class DeterministicPartition : public ::testing::TestWithParam<int> {};

TEST_P(DeterministicPartition, ClassesPartitionAllVcs) {
  const int v = GetParam();
  const VcPartition part(RoutingMode::Deterministic, v);
  EXPECT_EQ(part.escapeCount(), v);
  EXPECT_EQ(part.adaptiveMask(), 0u) << "deterministic routing has no adaptive VCs";
  const VcMask all = static_cast<VcMask>((1u << v) - 1);
  EXPECT_EQ(part.escapeMask(0) | part.escapeMask(1), all);
  EXPECT_EQ(part.escapeMask(0) & part.escapeMask(1), 0u);
  // Both wrap classes keep at least one buffer (Dally-Seitz requirement).
  EXPECT_GE(std::popcount(part.escapeMask(0)), 1);
  EXPECT_GE(std::popcount(part.escapeMask(1)), 1);
  // Even V splits evenly.
  if (v % 2 == 0) {
    EXPECT_EQ(std::popcount(part.escapeMask(0)), v / 2);
    EXPECT_EQ(std::popcount(part.escapeMask(1)), v / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(V, DeterministicPartition, ::testing::Values(2, 3, 4, 6, 10, 16));

class AdaptivePartition : public ::testing::TestWithParam<int> {};

TEST_P(AdaptivePartition, EscapePairPlusAdaptiveRest) {
  const int v = GetParam();
  const VcPartition part(RoutingMode::Adaptive, v);
  EXPECT_EQ(part.escapeCount(), 2);
  EXPECT_EQ(part.escapeMask(0), 0b01u) << "VC0 = escape class 0";
  EXPECT_EQ(part.escapeMask(1), 0b10u) << "VC1 = escape class 1";
  EXPECT_EQ(std::popcount(part.adaptiveMask()), v - 2);
  // Escape and adaptive sets are disjoint and cover all V VCs.
  const VcMask all = static_cast<VcMask>((1u << v) - 1);
  EXPECT_EQ(part.escapeMask(0) | part.escapeMask(1) | part.adaptiveMask(), all);
  EXPECT_EQ((part.escapeMask(0) | part.escapeMask(1)) & part.adaptiveMask(), 0u);
}

INSTANTIATE_TEST_SUITE_P(V, AdaptivePartition, ::testing::Values(2, 3, 4, 6, 10, 16));

TEST(VcPartition, PaperConfigurations) {
  // V=4/6/10 as in Figs. 3-7.
  for (int v : {4, 6, 10}) {
    const VcPartition det(RoutingMode::Deterministic, v);
    const VcPartition ada(RoutingMode::Adaptive, v);
    EXPECT_EQ(det.escapeCount(), v);
    EXPECT_EQ(std::popcount(ada.adaptiveMask()), v - 2);
  }
}

TEST(VcPartition, RejectsOutOfRangeV) {
  EXPECT_THROW(VcPartition(RoutingMode::Deterministic, 1), std::invalid_argument);
  EXPECT_THROW(VcPartition(RoutingMode::Adaptive, 17), std::invalid_argument);
}

TEST(VcPartition, ConfigurableEscapePool) {
  const VcPartition part(RoutingMode::Adaptive, 6, 4);
  EXPECT_EQ(part.escapeCount(), 4);
  EXPECT_EQ(std::popcount(part.escapeMask(0)), 2);
  EXPECT_EQ(std::popcount(part.escapeMask(1)), 2);
  EXPECT_EQ(std::popcount(part.adaptiveMask()), 2);
  const VcMask all = static_cast<VcMask>((1u << 6) - 1);
  EXPECT_EQ(part.escapeMask(0) | part.escapeMask(1) | part.adaptiveMask(), all);
}

TEST(VcPartition, RejectsBadEscapePool) {
  EXPECT_THROW(VcPartition(RoutingMode::Adaptive, 6, 3), std::invalid_argument);  // odd
  EXPECT_THROW(VcPartition(RoutingMode::Adaptive, 4, 6), std::invalid_argument);  // > V
  EXPECT_THROW(VcPartition(RoutingMode::Adaptive, 6, 0), std::invalid_argument);
}

}  // namespace
}  // namespace swft
