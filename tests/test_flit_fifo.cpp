#include <gtest/gtest.h>

#include "src/router/flit.hpp"

namespace swft {
namespace {

TEST(Flit, KindPredicates) {
  Flit h{1, FlitKind::Header};
  Flit b{1, FlitKind::Body};
  Flit t{1, FlitKind::Tail};
  Flit ht{1, FlitKind::HeaderTail};
  EXPECT_TRUE(h.isHeader());
  EXPECT_FALSE(h.isTail());
  EXPECT_FALSE(b.isHeader());
  EXPECT_FALSE(b.isTail());
  EXPECT_FALSE(t.isHeader());
  EXPECT_TRUE(t.isTail());
  EXPECT_TRUE(ht.isHeader());
  EXPECT_TRUE(ht.isTail());
}

TEST(FlitFifo, StartsEmptyWithRequestedCapacity) {
  FlitFifo f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.capacity(), 4);
  EXPECT_EQ(f.freeSlots(), 4);
}

TEST(FlitFifo, FifoOrderPreserved) {
  FlitFifo f(4);
  for (MsgId i = 0; i < 4; ++i) f.push(Flit{i, FlitKind::Body}, 10 + i);
  EXPECT_TRUE(f.full());
  for (MsgId i = 0; i < 4; ++i) {
    EXPECT_EQ(f.front().msg, i);
    EXPECT_EQ(f.frontArrival(), 10 + i);
    EXPECT_EQ(f.pop().msg, i);
  }
  EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, WrapsAroundInternally) {
  FlitFifo f(3);
  // Push/pop repeatedly past the ring size to exercise index wrapping.
  MsgId next = 0, expect = 0;
  for (int round = 0; round < 20; ++round) {
    while (!f.full()) f.push(Flit{next++, FlitKind::Body}, 0);
    while (!f.empty()) EXPECT_EQ(f.pop().msg, expect++);
  }
  EXPECT_EQ(next, expect);
}

TEST(FlitFifo, PartialDrainInterleaved) {
  FlitFifo f(4);
  f.push(Flit{0, FlitKind::Header}, 1);
  f.push(Flit{0, FlitKind::Body}, 2);
  EXPECT_EQ(f.pop().msg, 0u);
  f.push(Flit{0, FlitKind::Tail}, 3);
  EXPECT_EQ(f.size(), 2);
  EXPECT_EQ(f.front().kind, FlitKind::Body);
  f.pop();
  EXPECT_TRUE(f.pop().isTail());
}

TEST(FlitFifo, ClearEmpties) {
  FlitFifo f(2);
  f.push(Flit{1, FlitKind::Header}, 0);
  f.clear();
  EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, CapacityOneBehavesAsSlot) {
  FlitFifo f(1);
  f.push(Flit{9, FlitKind::HeaderTail}, 5);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.pop().msg, 9u);
  EXPECT_TRUE(f.empty());
}

}  // namespace
}  // namespace swft
