#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace swft {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const Rng root(7);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1again = root.split(1);
  int equal12 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = s1.next();
    EXPECT_EQ(a, s1again.next());
    equal12 += (a == s2.next());
  }
  EXPECT_LT(equal12, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(99);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 20}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng r(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliRateMatches) {
  Rng r(17);
  const double p = 0.05;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Rng, GeometricMeanIsInverseRate) {
  Rng r(23);
  const double p = 0.01;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(p));
  EXPECT_NEAR(sum / n, 1.0 / p, 5.0);
}

TEST(Rng, GeometricAlwaysAtLeastOne) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.geometric(0.9), 1u);
}

TEST(Rng, GeometricEdgeCases) {
  Rng r(31);
  EXPECT_EQ(r.geometric(1.0), 1u);
  EXPECT_EQ(r.geometric(0.0), ~0ULL);
  EXPECT_EQ(r.geometric(-1.0), ~0ULL);
}

TEST(Rng, RandomSetBitPicksOnlySetBits) {
  Rng r(37);
  const std::uint64_t mask = 0b101001010ULL;
  for (int i = 0; i < 500; ++i) {
    const int bit = r.randomSetBit(mask);
    ASSERT_GE(bit, 0);
    EXPECT_TRUE(mask & (1ULL << bit));
  }
}

TEST(Rng, RandomSetBitCoversAllSetBits) {
  Rng r(41);
  const std::uint64_t mask = (1ULL << 3) | (1ULL << 17) | (1ULL << 63);
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.randomSetBit(mask));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, RandomSetBitEmptyMask) {
  Rng r(43);
  EXPECT_EQ(r.randomSetBit(0), -1);
}

TEST(Rng, SplitMix64KnownExpansion) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(splitmix64(s1), splitmix64(s2) == 0 ? 1 : splitmix64(s2));
}

}  // namespace
}  // namespace swft
