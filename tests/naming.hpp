// Shared test-name builders for INSTANTIATE_TEST_SUITE_P generators.
//
// Names are built with operator+= rather than `"k" + std::to_string(...)`
// chains: the operator+ form trips GCC 12's -Wrestrict false positive
// (GCC bug 105651) at -O2, which breaks -Werror builds.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>

namespace swft {

inline std::string catName(std::initializer_list<std::string_view> parts) {
  std::string name;
  for (const std::string_view part : parts) name += part;
  return name;
}

/// The common "k<k>n<n>" grid-suite name.
inline std::string knName(int k, int n) {
  return catName({"k", std::to_string(k), "n", std::to_string(n)});
}

}  // namespace swft
