# CTest smoke script: `swft_bench --list` must enumerate the experiment
# registry and the canonical traffic-pattern names.
#
#   cmake -DSWFT_BENCH=<path-to-binary> -P smoke_swft_bench.cmake
if(NOT SWFT_BENCH)
  message(FATAL_ERROR "pass -DSWFT_BENCH=<path to swft_bench>")
endif()

execute_process(
  COMMAND ${SWFT_BENCH} --list
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "swft_bench --list exited with ${rc}\nstderr: ${err}")
endif()

if(NOT out MATCHES "([0-9]+) registered experiments:")
  message(FATAL_ERROR "missing experiment count line:\n${out}")
endif()
set(count ${CMAKE_MATCH_1})
if(count LESS 11)
  message(FATAL_ERROR "expected >= 11 registered experiments, got ${count}:\n${out}")
endif()

foreach(name fig3 fig4 fig5 fig6 fig7 model_vs_sim abl_buffer_depth
        abl_reinjection_overhead abl_vc_partition scan_radix faultscape)
  if(NOT out MATCHES "  ${name} ")
    message(FATAL_ERROR "experiment '${name}' missing from --list:\n${out}")
  endif()
endforeach()

if(NOT out MATCHES "traffic patterns: uniform transpose bitcomp bitrev shuffle tornado hotspot")
  message(FATAL_ERROR "traffic pattern footer missing or drifted:\n${out}")
endif()

# Unknown experiment names must fail loudly, not silently no-op.
execute_process(
  COMMAND ${SWFT_BENCH} --run no_such_experiment
  RESULT_VARIABLE rc2
  OUTPUT_QUIET ERROR_QUIET)
if(rc2 EQUAL 0)
  message(FATAL_ERROR "--run with an unknown name should exit non-zero")
endif()

# Comma-separated --run lists are split into individual names: a bogus name
# buried in the list must be rejected by name, before anything runs.
execute_process(
  COMMAND ${SWFT_BENCH} --run fig3,bogus_name,fig4
  RESULT_VARIABLE rc3
  OUTPUT_QUIET
  ERROR_VARIABLE err3)
if(rc3 EQUAL 0)
  message(FATAL_ERROR "--run with a bogus name in a comma list should exit non-zero")
endif()
if(NOT err3 MATCHES "unknown experiment 'bogus_name'")
  message(FATAL_ERROR "comma list not split into names:\n${err3}")
endif()

# --cache-stats without --run inspects the store (empty here) and exits 0.
execute_process(
  COMMAND ${SWFT_BENCH} --cache-stats --cache-dir ${CMAKE_CURRENT_BINARY_DIR}/smoke_cache_stats
  RESULT_VARIABLE rc4
  OUTPUT_VARIABLE out4
  ERROR_QUIET)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "--cache-stats alone should exit 0, got ${rc4}")
endif()
if(NOT out4 MATCHES "cache stats: hits=0 misses=0 inserts=0 entries=0")
  message(FATAL_ERROR "unexpected --cache-stats output:\n${out4}")
endif()

message(STATUS "swft_bench smoke OK (${count} experiments)")
