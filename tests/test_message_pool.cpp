#include "src/router/message_pool.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(MessagePool, AllocateInitialisesSlot) {
  MessagePool pool;
  const MsgId id = pool.allocate();
  const Message& m = pool.get(id);
  EXPECT_EQ(m.src, kInvalidNode);
  EXPECT_EQ(m.absorptions, 0);
  EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(MessagePool, ReleaseRecyclesSlots) {
  MessagePool pool;
  const MsgId a = pool.allocate();
  pool.get(a).hops = 99;
  pool.release(a);
  EXPECT_EQ(pool.liveCount(), 0u);
  const MsgId b = pool.allocate();
  EXPECT_EQ(b, a) << "slot must be recycled";
  EXPECT_EQ(pool.get(b).hops, 0u) << "recycled slot must be re-initialised";
}

TEST(MessagePool, CapacityTracksPeakNotLive) {
  MessagePool pool;
  const MsgId a = pool.allocate();
  const MsgId b = pool.allocate();
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.allocate();
  pool.allocate();
  EXPECT_EQ(pool.capacity(), 2u);
  pool.allocate();
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.liveCount(), 3u);
}

TEST(Message, FlitKindLayout) {
  Message m;
  m.length = 4;
  EXPECT_EQ(m.flitKindAt(0), FlitKind::Header);
  EXPECT_EQ(m.flitKindAt(1), FlitKind::Body);
  EXPECT_EQ(m.flitKindAt(2), FlitKind::Body);
  EXPECT_EQ(m.flitKindAt(3), FlitKind::Tail);
  m.length = 1;
  EXPECT_EQ(m.flitKindAt(0), FlitKind::HeaderTail);
  m.length = 2;
  EXPECT_EQ(m.flitKindAt(0), FlitKind::Header);
  EXPECT_EQ(m.flitKindAt(1), FlitKind::Tail);
}

TEST(Message, WrapFlagsPerDimension) {
  Message m;
  EXPECT_FALSE(m.wrapped(0));
  m.setWrapped(2);
  EXPECT_TRUE(m.wrapped(2));
  EXPECT_FALSE(m.wrapped(0));
  m.setWrapped(0);
  m.resetTransit();
  EXPECT_FALSE(m.wrapped(0));
  EXPECT_FALSE(m.wrapped(2));
}

}  // namespace
}  // namespace swft
