#include "src/fault/connectivity.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(Connectivity, FaultFreeNetworkIsConnected) {
  const TorusTopology topo(8, 2);
  const FaultSet faults(topo);
  EXPECT_TRUE(healthyNetworkConnected(faults));
  EXPECT_EQ(healthyComponentCount(faults), 1);
  EXPECT_EQ(componentSize(faults, 0), topo.nodeCount());
}

TEST(Connectivity, SingleFaultKeepsTorusConnected) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  faults.failNode(0);
  EXPECT_TRUE(healthyNetworkConnected(faults));
  EXPECT_EQ(componentSize(faults, 1), topo.nodeCount() - 1);
}

TEST(Connectivity, IsolatedHealthyNodeSplitsNetwork) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  // Fail all four neighbours of node (4,4): the node survives but is cut off.
  Coordinates c;
  c.digit.resize(2);
  c[0] = 4;
  c[1] = 4;
  const NodeId centre = topo.idOf(c);
  for (int port = 0; port < topo.networkPorts(); ++port) {
    faults.failNode(topo.neighbor(centre, port));
  }
  EXPECT_FALSE(faults.nodeFaulty(centre));
  EXPECT_FALSE(healthyNetworkConnected(faults));
  EXPECT_EQ(healthyComponentCount(faults), 2);
  EXPECT_EQ(componentSize(faults, centre), 1u);
}

TEST(Connectivity, LinkCutOnRingDisconnectsOnlyWithTwoCuts) {
  // 1-D ring: one failed link leaves a path; two failed links split it.
  const TorusTopology topo(8, 1);
  FaultSet faults(topo);
  faults.failLink(0, 0, Dir::Pos);
  EXPECT_TRUE(healthyNetworkConnected(faults));
  faults.failLink(4, 0, Dir::Pos);
  EXPECT_FALSE(healthyNetworkConnected(faults));
  EXPECT_EQ(healthyComponentCount(faults), 2);
}

TEST(Connectivity, ComponentSizeOfFaultyNodeIsZero) {
  const TorusTopology topo(4, 2);
  FaultSet faults(topo);
  faults.failNode(3);
  EXPECT_EQ(componentSize(faults, 3), 0u);
}

TEST(Connectivity, FullColumnFaultIn2DTorusStaysConnected) {
  // A full column of faults in a 2-D torus leaves a connected cylinder.
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  for (int y = 0; y < 8; ++y) {
    Coordinates c;
    c.digit.resize(2);
    c[0] = 3;
    c[1] = static_cast<std::int16_t>(y);
    faults.failNode(topo.idOf(c));
  }
  EXPECT_TRUE(healthyNetworkConnected(faults));
  EXPECT_EQ(componentSize(faults, 0), topo.nodeCount() - 8);
}

}  // namespace
}  // namespace swft
