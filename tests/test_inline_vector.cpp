#include "src/util/inline_vector.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

TEST(InlineVector, StartsEmpty) {
  InlineVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVector, PushPopBack) {
  InlineVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.back(), 1);
}

TEST(InlineVector, InitializerList) {
  InlineVector<int, 4> v{3, 1, 4};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 1);
  EXPECT_EQ(v[2], 4);
}

TEST(InlineVector, IterationOrder) {
  InlineVector<int, 8> v{1, 2, 3, 4};
  int expect = 1;
  for (int x : v) EXPECT_EQ(x, expect++);
}

TEST(InlineVector, ResizeGrowsWithFill) {
  InlineVector<int, 8> v{1};
  v.resize(4, 9);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[3], 9);
}

TEST(InlineVector, ResizeShrinks) {
  InlineVector<int, 8> v{1, 2, 3};
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(InlineVector, Equality) {
  InlineVector<int, 4> a{1, 2};
  InlineVector<int, 4> b{1, 2};
  InlineVector<int, 4> c{1, 3};
  InlineVector<int, 4> d{1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(InlineVector, ClearResets) {
  InlineVector<int, 4> v{1, 2, 3};
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(InlineVector, FillToCapacity) {
  InlineVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), v.capacity());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace swft
