// Engine equivalence: the event-sparse production engine must be
// bit-identical to the dense reference sweep on every field of SimResult,
// across traffic patterns, fault states and routing modes. The invariant
// under test (DESIGN.md): activity tracking may skip provably-dead work but
// may never reorder or change live work.
#include <gtest/gtest.h>

#include "src/harness/sweep.hpp"
#include "src/sim/config_parse.hpp"
#include "src/sim/network.hpp"
#include "tests/naming.hpp"

namespace swft {
namespace {

struct EngineCase {
  const char* name;
  TrafficPattern pattern;
  RoutingMode routing;
  int randomFaults;
  double rate;
};

const EngineCase kCases[] = {
    {"uniform_det_faultfree", TrafficPattern::Uniform, RoutingMode::Deterministic, 0,
     0.006},
    {"uniform_det_faulty", TrafficPattern::Uniform, RoutingMode::Deterministic, 5,
     0.005},
    {"uniform_adp_faultfree", TrafficPattern::Uniform, RoutingMode::Adaptive, 0, 0.006},
    {"uniform_adp_faulty", TrafficPattern::Uniform, RoutingMode::Adaptive, 5, 0.005},
    {"transpose_det_faultfree", TrafficPattern::Transpose, RoutingMode::Deterministic,
     0, 0.006},
    {"transpose_det_faulty", TrafficPattern::Transpose, RoutingMode::Deterministic, 5,
     0.005},
    {"transpose_adp_faultfree", TrafficPattern::Transpose, RoutingMode::Adaptive, 0,
     0.006},
    {"transpose_adp_faulty", TrafficPattern::Transpose, RoutingMode::Adaptive, 5,
     0.005},
};

SimConfig caseConfig(const EngineCase& c) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 16;
  cfg.pattern = c.pattern;
  cfg.routing = c.routing;
  cfg.faults.randomNodes = c.randomFaults;
  cfg.injectionRate = c.rate;
  cfg.reinjectDelay = c.randomFaults > 0 ? 20 : 0;  // exercise readyCycle
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 700;
  cfg.maxCycles = 400'000;
  cfg.seed = 7;
  return cfg;
}

SimResult runWith(SimConfig cfg, EngineKind kind) {
  cfg.engine = kind;
  return runSimulation(cfg);
}

// Exact comparison, doubles included: the engines must draw the same RNG
// sequences and deliver the same messages in the same cycles, so even the
// floating-point accumulations are performed in the same order.
void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.latencyStddev, b.latencyStddev);
  EXPECT_EQ(a.maxLatency, b.maxLatency);
  EXPECT_EQ(a.latencyP50, b.latencyP50);
  EXPECT_EQ(a.latencyP95, b.latencyP95);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.latencyCi95, b.latencyCi95);
  EXPECT_EQ(a.meanHops, b.meanHops);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.generatedTotal, b.generatedTotal);
  EXPECT_EQ(a.deliveredTotal, b.deliveredTotal);
  EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.offeredLoad, b.offeredLoad);
  EXPECT_EQ(a.messagesQueued, b.messagesQueued);
  EXPECT_EQ(a.absorbedMessages, b.absorbedMessages);
  EXPECT_EQ(a.reversals, b.reversals);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected);
  EXPECT_EQ(a.completed, b.completed);
}

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineEquivalence, SparseMatchesDenseBitForBit) {
  const SimConfig cfg = caseConfig(GetParam());
  const SimResult dense = runWith(cfg, EngineKind::Dense);
  const SimResult sparse = runWith(cfg, EngineKind::Sparse);
  EXPECT_TRUE(dense.completed) << "case must finish within maxCycles";
  expectIdentical(dense, sparse);
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineEquivalence, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<EngineCase>& info) {
                           return std::string(info.param.name);
                         });

// Recorded reference values for two pinned cases, captured from the dense
// reference engine (seed semantics plus the two ISSUE-2 injection fixes:
// peek-don't-pop requeue and the single unsigned VC-rotation draw) at the
// PR that introduced the event-sparse engine. Any change to these numbers
// means the engine's observable behaviour drifted — deliberate changes must
// re-record and justify in the commit message.
struct GoldenRecord {
  const char* name;
  std::uint64_t cycles;
  std::uint64_t generatedTotal;
  std::uint64_t deliveredTotal;
  std::uint64_t deliveredMeasured;
  std::uint64_t messagesQueued;
  double meanLatency;
  double meanHops;
};

// clang-format off
const GoldenRecord kGolden[] = {
    {"uniform_det_faultfree", 2301, 910, 900, 700,   0, 25.334285714285713, 4.0757142857142892},
    {"transpose_adp_faulty",  3849, 904, 900, 700, 157, 34.092857142857142, 5.1085714285714285},
};
// clang-format on

TEST(EngineEquivalence, MatchesRecordedReferenceValues) {
  for (const GoldenRecord& golden : kGolden) {
    const EngineCase* found = nullptr;
    for (const EngineCase& c : kCases) {
      if (std::string(c.name) == golden.name) found = &c;
    }
    ASSERT_NE(found, nullptr) << golden.name;
    const SimResult r = runWith(caseConfig(*found), EngineKind::Sparse);
    EXPECT_EQ(r.cycles, golden.cycles) << golden.name;
    EXPECT_EQ(r.generatedTotal, golden.generatedTotal) << golden.name;
    EXPECT_EQ(r.deliveredTotal, golden.deliveredTotal) << golden.name;
    EXPECT_EQ(r.deliveredMeasured, golden.deliveredMeasured) << golden.name;
    EXPECT_EQ(r.messagesQueued, golden.messagesQueued) << golden.name;
    EXPECT_EQ(r.meanLatency, golden.meanLatency) << golden.name;
    EXPECT_EQ(r.meanHops, golden.meanHops) << golden.name;
  }
}

// Lockstep: both engines stepped cycle by cycle must agree on every counter
// at every cycle, and both must keep the microarchitectural invariants.
TEST(EngineEquivalence, LockstepCountersAndInvariants) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.02;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.seed = 11;

  SimConfig denseCfg = cfg;
  denseCfg.engine = EngineKind::Dense;
  SimConfig sparseCfg = cfg;
  sparseCfg.engine = EngineKind::Sparse;
  Network dense(denseCfg);
  Network sparse(sparseCfg);
  for (int c = 0; c < 500; ++c) {
    dense.step(1);
    sparse.step(1);
    ASSERT_EQ(dense.generated(), sparse.generated()) << "cycle " << c;
    ASSERT_EQ(dense.delivered(), sparse.delivered()) << "cycle " << c;
    ASSERT_EQ(dense.inFlight(), sparse.inFlight()) << "cycle " << c;
    if (c % 25 == 0) {
      ASSERT_EQ(dense.validateInvariants(), "") << "cycle " << c;
      ASSERT_EQ(sparse.validateInvariants(), "") << "cycle " << c;
    }
  }
}

// runSweep must be a pure function of the points: thread count and
// completion order must not leak into any row.
TEST(EngineEquivalence, SweepDeterministicAcrossThreadCounts) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 10; ++i) {
    SweepPoint p;
    p.label = catName({"p", std::to_string(i)});
    p.cfg.radix = 4;
    p.cfg.dims = 2;
    p.cfg.vcs = 2;
    p.cfg.messageLength = 4;
    p.cfg.injectionRate = 0.002 + 0.002 * (i % 5);
    p.cfg.warmupMessages = 50;
    p.cfg.measuredMessages = 300;
    p.cfg.maxCycles = 200'000;
    p.cfg.seed = 40 + static_cast<std::uint64_t>(i);
    p.cfg.engine = (i % 2 == 0) ? EngineKind::Sparse : EngineKind::Dense;
    points.push_back(p);
  }
  const auto serial = runSweep(points, 1);
  const auto parallel = runSweep(points, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].point.label, parallel[i].point.label);
    expectIdentical(serial[i].result, parallel[i].result);
  }
}

// The engine selector must be reachable from config strings (CLI sweeps).
TEST(EngineEquivalence, EngineKeyParses) {
  SimConfig cfg;
  applyConfigAssignment(cfg, "engine=dense");
  EXPECT_EQ(cfg.engine, EngineKind::Dense);
  applyConfigAssignment(cfg, "engine=sparse");
  EXPECT_EQ(cfg.engine, EngineKind::Sparse);
  EXPECT_THROW(applyConfigAssignment(cfg, "engine=warp"), std::invalid_argument);
}

}  // namespace
}  // namespace swft
