// Engine equivalence: the event-sparse production engine must be
// bit-identical to the dense reference sweep on every field of SimResult,
// across traffic patterns, fault states and routing modes. The invariant
// under test (DESIGN.md): activity tracking may skip provably-dead work but
// may never reorder or change live work.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/harness/sweep.hpp"
#include "src/sim/config_parse.hpp"
#include "src/sim/network.hpp"
#include "src/sim/router_state.hpp"
#include "tests/naming.hpp"

namespace swft {

// White-box access for the conservation walk (dense storage is private).
struct NetworkTestAccess {
  static const std::vector<RouterState>& legacy(const Network& net) {
    return net.legacy_;
  }
};

namespace {

struct EngineCase {
  const char* name;
  TrafficPattern pattern;
  RoutingMode routing;
  int randomFaults;
  double rate;
};

const EngineCase kCases[] = {
    {"uniform_det_faultfree", TrafficPattern::Uniform, RoutingMode::Deterministic, 0,
     0.006},
    {"uniform_det_faulty", TrafficPattern::Uniform, RoutingMode::Deterministic, 5,
     0.005},
    {"uniform_adp_faultfree", TrafficPattern::Uniform, RoutingMode::Adaptive, 0, 0.006},
    {"uniform_adp_faulty", TrafficPattern::Uniform, RoutingMode::Adaptive, 5, 0.005},
    {"transpose_det_faultfree", TrafficPattern::Transpose, RoutingMode::Deterministic,
     0, 0.006},
    {"transpose_det_faulty", TrafficPattern::Transpose, RoutingMode::Deterministic, 5,
     0.005},
    {"transpose_adp_faultfree", TrafficPattern::Transpose, RoutingMode::Adaptive, 0,
     0.006},
    {"transpose_adp_faulty", TrafficPattern::Transpose, RoutingMode::Adaptive, 5,
     0.005},
};

SimConfig caseConfig(const EngineCase& c) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 16;
  cfg.pattern = c.pattern;
  cfg.routing = c.routing;
  cfg.faults.randomNodes = c.randomFaults;
  cfg.injectionRate = c.rate;
  cfg.reinjectDelay = c.randomFaults > 0 ? 20 : 0;  // exercise readyCycle
  cfg.warmupMessages = 200;
  cfg.measuredMessages = 700;
  cfg.maxCycles = 400'000;
  cfg.seed = 7;
  return cfg;
}

SimResult runWith(SimConfig cfg, EngineKind kind, int simThreads = 1) {
  cfg.engine = kind;
  cfg.simThreads = simThreads;
  return runSimulation(cfg);
}

// The sim_threads axis of the equivalence matrix: 1 (single-domain
// fallback), 2 and 3 (uneven 64-node partitions with mid-word boundaries),
// 8 (the tentpole's target width).
constexpr int kThreadAxis[] = {1, 2, 3, 8};

// Exact comparison, doubles included: the engines must draw the same RNG
// sequences and deliver the same messages in the same cycles, so even the
// floating-point accumulations are performed in the same order.
void expectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.latencyStddev, b.latencyStddev);
  EXPECT_EQ(a.maxLatency, b.maxLatency);
  EXPECT_EQ(a.latencyP50, b.latencyP50);
  EXPECT_EQ(a.latencyP95, b.latencyP95);
  EXPECT_EQ(a.latencyP99, b.latencyP99);
  EXPECT_EQ(a.latencyCi95, b.latencyCi95);
  EXPECT_EQ(a.meanHops, b.meanHops);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.generatedTotal, b.generatedTotal);
  EXPECT_EQ(a.deliveredTotal, b.deliveredTotal);
  EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.offeredLoad, b.offeredLoad);
  EXPECT_EQ(a.messagesQueued, b.messagesQueued);
  EXPECT_EQ(a.absorbedMessages, b.absorbedMessages);
  EXPECT_EQ(a.reversals, b.reversals);
  EXPECT_EQ(a.detours, b.detours);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected);
  EXPECT_EQ(a.completed, b.completed);
}

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineEquivalence, SparseMatchesDenseBitForBit) {
  const SimConfig cfg = caseConfig(GetParam());
  const SimResult dense = runWith(cfg, EngineKind::Dense);
  const SimResult sparse = runWith(cfg, EngineKind::Sparse);
  EXPECT_TRUE(dense.completed) << "case must finish within maxCycles";
  expectIdentical(dense, sparse);
}

TEST_P(EngineEquivalence, SparseMtMatchesDenseAtEveryThreadCount) {
  const SimConfig cfg = caseConfig(GetParam());
  const SimResult dense = runWith(cfg, EngineKind::Dense);
  EXPECT_TRUE(dense.completed) << "case must finish within maxCycles";
  for (const int threads : kThreadAxis) {
    const SimResult mt = runWith(cfg, EngineKind::SparseMt, threads);
    SCOPED_TRACE("sim_threads=" + std::to_string(threads));
    expectIdentical(dense, mt);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineEquivalence, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<EngineCase>& info) {
                           return std::string(info.param.name);
                         });

// Recorded reference values for every equivalence-matrix case, captured from
// the dense reference engine (seed semantics plus the two ISSUE-2 injection
// fixes: peek-don't-pop requeue and the single unsigned VC-rotation draw).
// The first and last rows date from the PR that introduced the event-sparse
// engine; the other six were recorded — from the dense oracle, unchanged by
// that PR — when the batched link pass landed, so every matrix corner is now
// pinned, not just compared engine-to-engine. Any change to these numbers
// means the engine's observable behaviour drifted — deliberate changes must
// re-record and justify in the commit message.
struct GoldenRecord {
  const char* name;
  std::uint64_t cycles;
  std::uint64_t generatedTotal;
  std::uint64_t deliveredTotal;
  std::uint64_t deliveredMeasured;
  std::uint64_t messagesQueued;
  double meanLatency;
  double meanHops;
};

// clang-format off
const GoldenRecord kGolden[] = {
    {"uniform_det_faultfree",   2301, 910, 900, 700,   0, 25.334285714285713, 4.0757142857142892},
    {"uniform_det_faulty",      3027, 920, 901, 701, 377, 43.37660485021398,  4.8088445078459383},
    {"uniform_adp_faultfree",   2310, 915, 901, 701,   0, 26.271041369472172, 4.0670470756062773},
    {"uniform_adp_faulty",      3013, 912, 900, 700, 122, 30.648571428571419, 4.2942857142857145},
    {"transpose_det_faultfree", 2720, 915, 900, 700,   0, 29.107142857142865, 4.7371428571428567},
    {"transpose_det_faulty",    3864, 906, 900, 700, 442, 52.297142857142823, 5.654285714285713},
    {"transpose_adp_faultfree", 2712, 910, 900, 700,   0, 25.731428571428562, 4.742857142857142},
    {"transpose_adp_faulty",    3849, 904, 900, 700, 157, 34.092857142857142, 5.1085714285714285},
};
// clang-format on

TEST(EngineEquivalence, MatchesRecordedReferenceValues) {
  for (const GoldenRecord& golden : kGolden) {
    const EngineCase* found = nullptr;
    for (const EngineCase& c : kCases) {
      if (std::string(c.name) == golden.name) found = &c;
    }
    ASSERT_NE(found, nullptr) << golden.name;
    const SimResult r = runWith(caseConfig(*found), EngineKind::Sparse);
    EXPECT_EQ(r.cycles, golden.cycles) << golden.name;
    EXPECT_EQ(r.generatedTotal, golden.generatedTotal) << golden.name;
    EXPECT_EQ(r.deliveredTotal, golden.deliveredTotal) << golden.name;
    EXPECT_EQ(r.deliveredMeasured, golden.deliveredMeasured) << golden.name;
    EXPECT_EQ(r.messagesQueued, golden.messagesQueued) << golden.name;
    EXPECT_EQ(r.meanLatency, golden.meanLatency) << golden.name;
    EXPECT_EQ(r.meanHops, golden.meanHops) << golden.name;
  }
}

// The batched link pass commits winners port-by-port instead of walking
// (port, vc) pairs one at a time, so its *schedule* — which header crosses
// which link in which cycle — is the thing most at risk of silent drift.
// Pin it with literal event vectors on a hand-built contention scenario:
// messages 0/1 contend for the link (1,0)->(2,0), messages 2/3 for the
// ejection channel at (2,2). Captured from both engines (identical) when
// the batched pass landed. A diff here means the arbitration order changed.
void runPinnedContention(EngineKind engine, int simThreads) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.injectionRate = 0.0;  // only the four hand-injected messages
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 4;
  cfg.engine = engine;
  cfg.simThreads = simThreads;
  TraceRecorder trace;
  Network net(cfg);
  net.attachTrace(&trace);
  const auto at = [&](int x, int y) {
    Coordinates c;
    c.digit = {static_cast<std::int16_t>(x), static_cast<std::int16_t>(y)};
    return net.topology().idOf(c);
  };
  net.injectTestMessage(at(0, 0), at(2, 0), 4, RoutingMode::Deterministic);
  net.injectTestMessage(at(1, 0), at(3, 0), 4, RoutingMode::Deterministic);
  net.injectTestMessage(at(2, 0), at(2, 2), 4, RoutingMode::Deterministic);
  net.injectTestMessage(at(2, 3), at(2, 2), 4, RoutingMode::Deterministic);
  net.run();

  struct PinnedEvent {
    TraceEvent::Kind kind;
    std::uint64_t cycle;
    NodeId node;
    std::uint8_t port;
  };
  using K = TraceEvent::Kind;
  // clang-format off
  const std::vector<std::vector<PinnedEvent>> expected = {
      // seq 0: header stalls at node 1 cycles 2-4 behind seq 1's data flits.
      {{K::Inject, 0, 0, 0}, {K::Hop, 1, 0, 0}, {K::Hop, 5, 1, 0}, {K::Deliver, 9, 2, 0}},
      {{K::Inject, 0, 1, 0}, {K::Hop, 1, 1, 0}, {K::Hop, 2, 2, 0}, {K::Deliver, 6, 3, 0}},
      // seqs 2/3: ejection at node 10 serialises the tails (cycles 8 and 9).
      {{K::Inject, 0, 2, 0}, {K::Hop, 1, 2, 2}, {K::Hop, 2, 6, 2}, {K::Deliver, 9, 10, 0}},
      {{K::Inject, 0, 14, 0}, {K::Hop, 1, 14, 3}, {K::Deliver, 8, 10, 0}},
  };
  // clang-format on
  ASSERT_EQ(trace.messageCount(), expected.size());
  for (std::uint32_t seq = 0; seq < expected.size(); ++seq) {
    const auto& events = trace.eventsFor(seq);
    ASSERT_EQ(events.size(), expected[seq].size()) << "seq " << seq;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].kind, expected[seq][i].kind) << "seq " << seq << " event " << i;
      EXPECT_EQ(events[i].cycle, expected[seq][i].cycle) << "seq " << seq << " event " << i;
      EXPECT_EQ(events[i].node, expected[seq][i].node) << "seq " << seq << " event " << i;
      EXPECT_EQ(events[i].port, expected[seq][i].port) << "seq " << seq << " event " << i;
    }
  }
}

TEST(EngineEquivalence, PinnedHopVectorsUnderContention) {
  runPinnedContention(EngineKind::Sparse, 1);
}

// The same pinned commit schedule from the mt engine with the 16-node mesh
// split into 5 domains: the contended link (1,0)->(2,0) and the ejection
// contention at (2,2) both cross domain boundaries, so the deferred
// cross-domain push/pop exchange must reproduce the exact dense schedule.
TEST(EngineEquivalence, PinnedHopVectorsUnderContentionSparseMt) {
  runPinnedContention(EngineKind::SparseMt, 5);
}

// Event-for-event trace agreement on a loaded case: the full per-message
// (kind, cycle, node, port) streams — not just the end-of-run aggregates —
// must coincide between the engines. This is the commit-order contract at
// its finest observable granularity.
TEST(EngineEquivalence, HopTracesMatchDenseEventForEvent) {
  SimConfig cfg = caseConfig(kCases[7]);  // transpose_adp_faulty: the busiest
  cfg.measuredMessages = 300;             // keep the traced volume bounded
  TraceRecorder dense, sparse, mt;
  {
    SimConfig d = cfg;
    d.engine = EngineKind::Dense;
    Network net(d);
    net.attachTrace(&dense);
    net.run();
  }
  {
    SimConfig s = cfg;
    s.engine = EngineKind::Sparse;
    Network net(s);
    net.attachTrace(&sparse);
    net.run();
  }
  {
    SimConfig m = cfg;
    m.engine = EngineKind::SparseMt;
    m.simThreads = 8;
    Network net(m);
    net.attachTrace(&mt);
    net.run();
  }
  for (const TraceRecorder* other : {&sparse, &mt}) {
    ASSERT_EQ(dense.messageCount(), other->messageCount());
    ASSERT_EQ(dense.eventCount(), other->eventCount());
    ASSERT_GT(dense.eventCount(), 0u);
    for (const std::uint32_t seq : dense.tracedMessages()) {
      const auto& d = dense.eventsFor(seq);
      const auto& s = other->eventsFor(seq);
      ASSERT_EQ(d.size(), s.size()) << "seq " << seq;
      for (std::size_t i = 0; i < d.size(); ++i) {
        ASSERT_TRUE(d[i].kind == s[i].kind && d[i].cycle == s[i].cycle &&
                    d[i].node == s[i].node && d[i].port == s[i].port)
            << "seq " << seq << " event " << i << " diverges (cycle " << d[i].cycle
            << " vs " << s[i].cycle << ")";
      }
    }
  }
}

// Lockstep: both engines stepped cycle by cycle must agree on every counter
// at every cycle, and both must keep the microarchitectural invariants.
// Tally flits per message across every input-VC buffer of `net`, reading
// whichever storage its engine actually uses (arena for sparse, legacy
// RouterState for dense). Asserts credit safety along the way: no buffer
// ever holds more flits than its depth. Credits are implicit (one credit =
// one free downstream slot), so this is exactly "per-link credits never
// exceed the buffer depth" — the batched link pass hoists the credit read
// out of the arbitration loop, and this pins that the hoist can never admit
// an overfill. For the sparse engine it also checks the arena's credit-sink
// row (the fake "downstream" the ejection port points at) stays all-zero:
// ejection must never be throttled by it and nothing may push through it.
std::unordered_map<MsgId, int> bufferTally(const Network& net, int cycle) {
  std::unordered_map<MsgId, int> buffered;
  const NodeId nodes = net.topology().nodeCount();
  if (net.config().engine != EngineKind::Dense) {
    const RouterArena& a = net.arena();
    for (NodeId id = 0; id < nodes; ++id) {
      for (int u = 0; u < a.unitsPerRouter(); ++u) {
        const int g = a.base(id) + u;
        const int sz = a.size(g);
        EXPECT_LE(sz, a.depth()) << "overfilled unit " << g << " cycle " << cycle;
        for (int i = 0; i < sz; ++i) ++buffered[a.flitAt(g, i).msg];
      }
    }
    for (int vc = 0; vc < a.vcs(); ++vc) {
      EXPECT_EQ(a.size(a.creditSinkBase() + vc), 0)
          << "credit sink dirtied, vc " << vc << " cycle " << cycle;
    }
  } else {
    for (const RouterState& r : NetworkTestAccess::legacy(net)) {
      for (int u = 0; u < r.unitCount(); ++u) {
        const FlitFifo& buf = r.unit(u).buf;
        EXPECT_LE(buf.size(), buf.capacity())
            << "overfilled unit " << u << " cycle " << cycle;
        for (int i = 0; i < buf.size(); ++i) ++buffered[buf.flitAt(i).msg];
      }
    }
  }
  return buffered;
}

// Per-cycle flit conservation, checked in lockstep:
//
//  1. The two engines' per-message buffer tallies are identical — every
//     message has exactly the same number of flits resident in each network.
//  2. Against the dense reference's transport counters (dense increments
//     Message::flitsEjected unconditionally; the sparse engine only does so
//     in debug builds), every buffered message balances: flits buffered ==
//     flits injected in its current network segment (NodeState::nextFlit
//     while streaming, the full length once the tail left the source) minus
//     flits ejected in that segment. No flit is lost, duplicated, or left
//     behind by the batched commit — caught at the cycle it happens, not
//     hundreds of cycles later in a diverged SimResult.
void checkConservation(const Network& dense, const Network& sparse, int cycle) {
  const std::unordered_map<MsgId, int> bufD = bufferTally(dense, cycle);
  const std::unordered_map<MsgId, int> bufS = bufferTally(sparse, cycle);
  ASSERT_EQ(bufD.size(), bufS.size()) << "buffered message sets differ, cycle " << cycle;
  for (const auto& [msg, count] : bufD) {
    const auto it = bufS.find(msg);
    ASSERT_TRUE(it != bufS.end()) << "message " << msg << " buffered only in dense, cycle " << cycle;
    ASSERT_EQ(count, it->second) << "buffered flit count diverges for message " << msg << ", cycle " << cycle;
  }
  // Injection progress of the segment each streaming message is on.
  std::unordered_map<MsgId, int> streamingFlits;
  for (NodeId id = 0; id < dense.topology().nodeCount(); ++id) {
    const NodeState& n = dense.node(id);
    if (n.streaming != kInvalidMsg) streamingFlits[n.streaming] = n.nextFlit;
  }
  for (const auto& [msg, count] : bufD) {
    const Message& m = dense.pool().get(msg);
    const auto it = streamingFlits.find(msg);
    const int injected = it != streamingFlits.end() ? it->second : m.length;
    ASSERT_EQ(count, injected - static_cast<int>(m.flitsEjected))
        << "flit imbalance for message " << msg << " at cycle " << cycle
        << " (injected this segment " << injected << ", ejected "
        << m.flitsEjected << ")";
  }
}

TEST(EngineEquivalence, LockstepCountersAndInvariants) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.messageLength = 8;
  cfg.injectionRate = 0.02;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  cfg.seed = 11;

  SimConfig denseCfg = cfg;
  denseCfg.engine = EngineKind::Dense;
  SimConfig sparseCfg = cfg;
  sparseCfg.engine = EngineKind::Sparse;
  // The mt engine joins the lockstep at three domains: 16 nodes split 6/5/5,
  // so cross-domain links and mid-word domain boundaries are exercised on
  // every cycle, and the invariant validator sees the post-commit arena.
  SimConfig mtCfg = cfg;
  mtCfg.engine = EngineKind::SparseMt;
  mtCfg.simThreads = 3;
  Network dense(denseCfg);
  Network sparse(sparseCfg);
  Network mt(mtCfg);
  for (int c = 0; c < 500; ++c) {
    dense.step(1);
    sparse.step(1);
    mt.step(1);
    ASSERT_EQ(dense.generated(), sparse.generated()) << "cycle " << c;
    ASSERT_EQ(dense.delivered(), sparse.delivered()) << "cycle " << c;
    ASSERT_EQ(dense.inFlight(), sparse.inFlight()) << "cycle " << c;
    ASSERT_EQ(dense.generated(), mt.generated()) << "cycle " << c;
    ASSERT_EQ(dense.delivered(), mt.delivered()) << "cycle " << c;
    ASSERT_EQ(dense.inFlight(), mt.inFlight()) << "cycle " << c;
    ASSERT_NO_FATAL_FAILURE(checkConservation(dense, sparse, c));
    ASSERT_NO_FATAL_FAILURE(checkConservation(dense, mt, c));
    // Arena-invariant oracle: every cycle, recompute the incremental
    // qualification bitmaps (fresh/creditOk/downOk/portMembers + feeder
    // edges) from scratch from scalar state and require exact equality
    // with the incrementally-maintained masks.
    ASSERT_EQ(sparse.arena().auditMasks(sparse.now() - 1), "") << "cycle " << c;
    ASSERT_EQ(mt.arena().auditMasks(mt.now() - 1), "") << "cycle " << c;
    if (c % 25 == 0) {
      ASSERT_EQ(dense.validateInvariants(), "") << "cycle " << c;
      ASSERT_EQ(sparse.validateInvariants(), "") << "cycle " << c;
      ASSERT_EQ(mt.validateInvariants(), "") << "cycle " << c;
    }
  }
}

// runSweep must be a pure function of the points: thread count and
// completion order must not leak into any row.
TEST(EngineEquivalence, SweepDeterministicAcrossThreadCounts) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < 10; ++i) {
    SweepPoint p;
    p.label = catName({"p", std::to_string(i)});
    p.cfg.radix = 4;
    p.cfg.dims = 2;
    p.cfg.vcs = 2;
    p.cfg.messageLength = 4;
    p.cfg.injectionRate = 0.002 + 0.002 * (i % 5);
    p.cfg.warmupMessages = 50;
    p.cfg.measuredMessages = 300;
    p.cfg.maxCycles = 200'000;
    p.cfg.seed = 40 + static_cast<std::uint64_t>(i);
    p.cfg.engine = (i % 2 == 0) ? EngineKind::Sparse : EngineKind::Dense;
    points.push_back(p);
  }
  const auto serial = runSweep(points, 1);
  const auto parallel = runSweep(points, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].point.label, parallel[i].point.label);
    expectIdentical(serial[i].result, parallel[i].result);
  }
}

// The engine selector must be reachable from config strings (CLI sweeps).
TEST(EngineEquivalence, EngineKeyParses) {
  SimConfig cfg;
  applyConfigAssignment(cfg, "engine=dense");
  EXPECT_EQ(cfg.engine, EngineKind::Dense);
  applyConfigAssignment(cfg, "engine=sparse");
  EXPECT_EQ(cfg.engine, EngineKind::Sparse);
  applyConfigAssignment(cfg, "engine=sparse-mt");
  EXPECT_EQ(cfg.engine, EngineKind::SparseMt);
  applyConfigAssignment(cfg, "sim_threads=8");
  EXPECT_EQ(cfg.simThreads, 8);
  EXPECT_THROW(applyConfigAssignment(cfg, "engine=warp"), std::invalid_argument);
  EXPECT_THROW(applyConfigAssignment(cfg, "sim_threads=0"), std::invalid_argument);
  EXPECT_THROW(applyConfigAssignment(cfg, "sim_threads=-2"), std::invalid_argument);
}

}  // namespace
}  // namespace swft
