// Microarchitectural invariants checked live while the engine runs: the
// validator inspects occupancy masks, VC ownership, wormhole framing and
// message accounting after every stepping window.
#include <gtest/gtest.h>

#include "tests/naming.hpp"

#include "src/sim/network.hpp"

namespace swft {
namespace {

struct InvariantCase {
  int k, n, vcs;
  RoutingMode mode;
  int nf;
  double rate;
};

class LiveInvariants : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(LiveInvariants, HoldAtEveryCheckpoint) {
  const auto& p = GetParam();
  SimConfig cfg;
  cfg.radix = p.k;
  cfg.dims = p.n;
  cfg.vcs = p.vcs;
  cfg.routing = p.mode;
  cfg.messageLength = 8;
  cfg.injectionRate = p.rate;
  cfg.faults.randomNodes = p.nf;
  cfg.seed = 55;
  Network net(cfg);
  for (int window = 0; window < 40; ++window) {
    net.step(250);
    const std::string violation = net.validateInvariants();
    ASSERT_TRUE(violation.empty()) << violation << " at cycle " << net.now();
  }
  EXPECT_GT(net.delivered(), 0u);
  EXPECT_FALSE(net.deadlockSuspected());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LiveInvariants,
    ::testing::Values(InvariantCase{8, 2, 4, RoutingMode::Deterministic, 0, 0.01},
                      InvariantCase{8, 2, 4, RoutingMode::Adaptive, 0, 0.01},
                      InvariantCase{8, 2, 6, RoutingMode::Deterministic, 5, 0.006},
                      InvariantCase{8, 2, 6, RoutingMode::Adaptive, 5, 0.006},
                      InvariantCase{4, 3, 4, RoutingMode::Deterministic, 4, 0.008},
                      InvariantCase{4, 3, 4, RoutingMode::Adaptive, 4, 0.008},
                      InvariantCase{8, 2, 10, RoutingMode::Adaptive, 0, 0.03},  // saturated
                      InvariantCase{5, 2, 3, RoutingMode::Deterministic, 2, 0.01}),
    [](const auto& info) {
      const auto& p = info.param;
      return catName({knName(p.k, p.n), "V", std::to_string(p.vcs),
                      p.mode == RoutingMode::Adaptive ? "adp" : "det", "nf",
                      std::to_string(p.nf)});
    });

TEST(Invariants, FreshNetworkIsConsistent) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  const Network net(cfg);
  EXPECT_EQ(net.validateInvariants(), "");
}

TEST(Invariants, HoldThroughFaultRegionTraffic) {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 6;
  cfg.injectionRate = 0.006;
  cfg.messageLength = 8;
  cfg.seed = 77;
  const TorusTopology topo(8, 2);
  cfg.faults.regions.push_back(fig5U8(topo));
  Network net(cfg);
  for (int window = 0; window < 30; ++window) {
    net.step(300);
    ASSERT_EQ(net.validateInvariants(), "") << "cycle " << net.now();
  }
}

}  // namespace
}  // namespace swft
