#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

SimConfig quietConfig(int k, int n, int vcs = 4) {
  SimConfig cfg;
  cfg.radix = k;
  cfg.dims = n;
  cfg.vcs = vcs;
  cfg.injectionRate = 0.0;  // no background traffic
  cfg.warmupMessages = 0;
  cfg.measuredMessages = 1;
  cfg.maxCycles = 50'000;
  return cfg;
}

TEST(NetworkBasics, ConstructionAppliesFaultSpec) {
  SimConfig cfg = quietConfig(8, 2);
  cfg.faults.explicitNodes = {7, 13};
  const Network net(cfg);
  EXPECT_TRUE(net.faults().nodeFaulty(7));
  EXPECT_TRUE(net.faults().nodeFaulty(13));
  EXPECT_EQ(net.faults().faultyNodeCount(), 2);
}

TEST(NetworkBasics, RejectsDisconnectingFaultPattern) {
  SimConfig cfg = quietConfig(8, 2);
  const TorusTopology topo(8, 2);
  const NodeId centre = at(topo, {4, 4});
  for (int port = 0; port < topo.networkPorts(); ++port) {
    cfg.faults.explicitNodes.push_back(topo.neighbor(centre, port));
  }
  EXPECT_THROW(Network net(cfg), std::runtime_error);
}

TEST(NetworkBasics, SingleMessageDeliveredWithPipelinedLatency) {
  SimConfig cfg = quietConfig(8, 2);
  cfg.messageLength = 4;
  Network net(cfg);
  const TorusTopology& topo = net.topology();
  net.injectTestMessage(at(topo, {0, 0}), at(topo, {3, 0}), 4, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  EXPECT_EQ(r.meanHops, 3.0);
  // Wormhole pipelining: ~hops + M cycles, small constant slack allowed.
  EXPECT_GE(r.meanLatency, 3 + 4 - 1);
  EXPECT_LE(r.meanLatency, 3 + 4 + 4);
}

TEST(NetworkBasics, LatencyScalesWithMessageLength) {
  for (const int len : {8, 16, 32}) {
    SimConfig cfg = quietConfig(8, 2);
    Network net(cfg);
    const TorusTopology& topo = net.topology();
    net.injectTestMessage(at(topo, {0, 0}), at(topo, {2, 2}), len,
                          RoutingMode::Deterministic);
    const SimResult r = net.run();
    ASSERT_EQ(r.deliveredTotal, 1u);
    EXPECT_GE(r.meanLatency, 4 + len - 1);
    EXPECT_LE(r.meanLatency, 4 + len + 4);
  }
}

TEST(NetworkBasics, MessageCrossingWrapUsesWrapClass) {
  SimConfig cfg = quietConfig(8, 2);
  cfg.messageLength = 2;
  Network net(cfg);
  const TorusTopology& topo = net.topology();
  // 6 -> 1 in dim 0: minimal route crosses the wrap (6,7,0,1).
  const MsgId id = net.injectTestMessage(at(topo, {6, 0}), at(topo, {1, 0}), 2,
                                         RoutingMode::Deterministic);
  (void)id;
  const SimResult r = net.run();
  EXPECT_EQ(r.deliveredTotal, 1u);
  EXPECT_EQ(r.meanHops, 3.0);
}

TEST(NetworkBasics, AdaptiveSingleMessageTakesMinimalPath) {
  SimConfig cfg = quietConfig(8, 2, 6);
  Network net(cfg);
  const TorusTopology& topo = net.topology();
  net.injectTestMessage(at(topo, {1, 1}), at(topo, {4, 5}), 8, RoutingMode::Adaptive);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  EXPECT_EQ(r.meanHops, 7.0) << "3 hops in x + 4 hops in y, any interleaving";
  EXPECT_EQ(r.messagesQueued, 0u);
}

TEST(NetworkBasics, BlockedMessageIsAbsorbedAndStillDelivered) {
  SimConfig cfg = quietConfig(8, 2);
  const TorusTopology topo(8, 2);
  // Wall in front of the e-cube path.
  cfg.faults.explicitNodes = {at(topo, {2, 1})};
  cfg.messageLength = 4;
  Network net(cfg);
  net.injectTestMessage(at(topo, {1, 1}), at(topo, {4, 1}), 4, RoutingMode::Deterministic);
  const SimResult r = net.run();
  ASSERT_EQ(r.deliveredTotal, 1u);
  EXPECT_GE(r.messagesQueued, 1u) << "the fault forces at least one absorption";
  EXPECT_GE(r.reversals, 1u) << "first recovery step is the same-dim reversal";
  EXPECT_GT(r.meanHops, 3.0) << "the detour is non-minimal";
  EXPECT_EQ(r.escalations, 0u);
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(NetworkBasics, ReinjectionDelayAddsToLatency) {
  const TorusTopology topo(8, 2);
  double latency[2];
  for (int i = 0; i < 2; ++i) {
    SimConfig cfg = quietConfig(8, 2);
    cfg.faults.explicitNodes = {at(topo, {2, 1})};
    cfg.reinjectDelay = i == 0 ? 0 : 50;
    Network net(cfg);
    net.injectTestMessage(at(topo, {1, 1}), at(topo, {4, 1}), 4,
                          RoutingMode::Deterministic);
    const SimResult r = net.run();
    EXPECT_EQ(r.deliveredTotal, 1u);
    latency[i] = r.meanLatency;
  }
  // Delta = 0 already implies a 1-cycle software turnaround, so the
  // incremental cost of Delta = 50 is 49 extra cycles per absorption.
  EXPECT_GE(latency[1], latency[0] + 49) << "Delta cycles per absorption (assumption i)";
}

TEST(NetworkBasics, InjectTestMessageRejectsFaultyEndpoints) {
  SimConfig cfg = quietConfig(8, 2);
  cfg.faults.explicitNodes = {5};
  Network net(cfg);
  EXPECT_THROW(net.injectTestMessage(5, 9, 4, RoutingMode::Deterministic),
               std::invalid_argument);
  EXPECT_THROW(net.injectTestMessage(9, 5, 4, RoutingMode::Deterministic),
               std::invalid_argument);
}

TEST(NetworkBasics, StepAdvancesClock) {
  SimConfig cfg = quietConfig(4, 2);
  Network net(cfg);
  EXPECT_EQ(net.now(), 0u);
  net.step(10);
  EXPECT_EQ(net.now(), 10u);
}

TEST(NetworkBasics, SnapshotConservationInvariant) {
  SimConfig cfg = quietConfig(8, 2);
  cfg.injectionRate = 0.01;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 500;
  Network net(cfg);
  const SimResult r = net.run();
  EXPECT_TRUE(r.completed);
  // Every generated message is delivered or still alive (in flight/queued).
  EXPECT_EQ(r.generatedTotal, r.deliveredTotal + net.inFlight());
  EXPECT_FALSE(r.deadlockSuspected);
}

TEST(NetworkBasics, TdDelaysEveryHop) {
  // Router decision time Td adds ~Td cycles per hop to a lone message.
  double latency[2];
  for (int i = 0; i < 2; ++i) {
    SimConfig cfg = quietConfig(8, 2);
    cfg.routerDecisionTime = i == 0 ? 0 : 2;
    Network net(cfg);
    const TorusTopology& topo = net.topology();
    net.injectTestMessage(at(topo, {0, 0}), at(topo, {3, 0}), 4,
                          RoutingMode::Deterministic);
    latency[i] = net.run().meanLatency;
  }
  EXPECT_GT(latency[1], latency[0]);
}

}  // namespace
}  // namespace swft
