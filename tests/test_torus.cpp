#include "src/topology/torus.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

namespace swft {
namespace {

TEST(Ports, EncodingRoundTrip) {
  for (int dim = 0; dim < kMaxDims; ++dim) {
    for (Dir dir : {Dir::Pos, Dir::Neg}) {
      const int port = portOf(dim, dir);
      EXPECT_EQ(dimOfPort(port), dim);
      EXPECT_EQ(dirOfPort(port), dir);
    }
  }
}

TEST(Ports, OppositeInverts) {
  EXPECT_EQ(opposite(Dir::Pos), Dir::Neg);
  EXPECT_EQ(opposite(Dir::Neg), Dir::Pos);
  EXPECT_EQ(dirStep(Dir::Pos), 1);
  EXPECT_EQ(dirStep(Dir::Neg), -1);
}

struct KnParam {
  int k;
  int n;
};

class TorusParam : public ::testing::TestWithParam<KnParam> {
 protected:
  TorusTopology topo() const { return TorusTopology(GetParam().k, GetParam().n); }
};

TEST_P(TorusParam, NeighborsAreSymmetric) {
  const TorusTopology t = topo();
  for (NodeId id = 0; id < t.nodeCount(); ++id) {
    for (int port = 0; port < t.networkPorts(); ++port) {
      const NodeId nb = t.neighbor(id, port);
      const int back = portOf(dimOfPort(port), opposite(dirOfPort(port)));
      EXPECT_EQ(t.neighbor(nb, back), id);
    }
  }
}

TEST_P(TorusParam, NeighborsDifferInExactlyOneDigit) {
  const TorusTopology t = topo();
  for (NodeId id = 0; id < t.nodeCount(); ++id) {
    const Coordinates c = t.coordsOf(id);
    for (int port = 0; port < t.networkPorts(); ++port) {
      const Coordinates nc = t.coordsOf(t.neighbor(id, port));
      int diffs = 0;
      for (int d = 0; d < t.dims(); ++d) diffs += (c[d] != nc[d]);
      if (t.radix() == 2) {
        EXPECT_LE(diffs, 1);  // k=2: +1 and -1 coincide
      } else {
        EXPECT_EQ(diffs, 1);
      }
    }
  }
}

TEST_P(TorusParam, EveryRingClosesAfterKHops) {
  const TorusTopology t = topo();
  for (int dim = 0; dim < t.dims(); ++dim) {
    NodeId at = 0;
    int wrapsSeen = 0;
    for (int hop = 0; hop < t.radix(); ++hop) {
      wrapsSeen += t.isWrapLink(at, dim, Dir::Pos);
      at = t.neighbor(at, dim, Dir::Pos);
    }
    EXPECT_EQ(at, 0u);
    EXPECT_EQ(wrapsSeen, 1);  // exactly one wrap link per directed ring orbit
  }
}

TEST_P(TorusParam, MinimalOffsetIsMinimalAndConsistent) {
  const TorusTopology t = topo();
  const int k = t.radix();
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      const int off = t.minimalOffset(static_cast<std::int16_t>(a),
                                      static_cast<std::int16_t>(b));
      EXPECT_LE(std::abs(off), k / 2);
      EXPECT_EQ((a + off % k + k) % k, b);
      // Ring distance in the minimal direction equals |offset|.
      const Dir dir = off >= 0 ? Dir::Pos : Dir::Neg;
      EXPECT_EQ(t.ringDistance(static_cast<std::int16_t>(a), static_cast<std::int16_t>(b), dir),
                std::abs(off));
    }
  }
}

TEST_P(TorusParam, RingDistanceSumsToK) {
  const TorusTopology t = topo();
  const int k = t.radix();
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      if (a == b) continue;
      const auto sa = static_cast<std::int16_t>(a);
      const auto sb = static_cast<std::int16_t>(b);
      EXPECT_EQ(t.ringDistance(sa, sb, Dir::Pos) + t.ringDistance(sa, sb, Dir::Neg), k);
    }
  }
}

TEST_P(TorusParam, DistanceIsAMetric) {
  const TorusTopology t = topo();
  const NodeId n = t.nodeCount();
  const NodeId stride = n > 64 ? n / 37 + 1 : 1;  // sample large networks
  for (NodeId a = 0; a < n; a += stride) {
    EXPECT_EQ(t.distance(a, a), 0);
    for (NodeId b = 0; b < n; b += stride) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      // One-hop neighbours are at distance exactly 1 (k > 2).
    }
    for (int port = 0; port < t.networkPorts() && t.radix() > 2; ++port) {
      EXPECT_EQ(t.distance(a, t.neighbor(a, port)), 1);
    }
  }
}

TEST_P(TorusParam, DiameterIsNTimesHalfK) {
  const TorusTopology t = topo();
  int maxDist = 0;
  const NodeId n = t.nodeCount();
  const NodeId stride = n > 512 ? 7 : 1;
  for (NodeId a = 0; a < n; a += stride)
    for (NodeId b = 0; b < n; b += stride) maxDist = std::max(maxDist, t.distance(a, b));
  EXPECT_LE(maxDist, t.dims() * (t.radix() / 2));
  if (stride == 1) {
    EXPECT_EQ(maxDist, t.dims() * (t.radix() / 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, TorusParam,
                         ::testing::Values(KnParam{3, 2}, KnParam{4, 2}, KnParam{5, 2},
                                           KnParam{8, 2}, KnParam{4, 3}, KnParam{8, 3},
                                           KnParam{16, 2}, KnParam{3, 4}, KnParam{2, 3},
                                           KnParam{4, 4}),
                         [](const auto& info) {
                           return knName(info.param.k, info.param.n);
                         });

TEST(Torus, WrapLinkPositions8ary) {
  const TorusTopology t(8, 2);
  const NodeId node70 = t.idOf([&] {
    Coordinates c;
    c.digit.resize(2);
    c[0] = 7;
    c[1] = 0;
    return c;
  }());
  EXPECT_TRUE(t.isWrapLink(node70, 0, Dir::Pos));
  EXPECT_FALSE(t.isWrapLink(node70, 0, Dir::Neg));
  EXPECT_TRUE(t.isWrapLink(0, 0, Dir::Neg));
  EXPECT_FALSE(t.isWrapLink(0, 0, Dir::Pos));
  EXPECT_TRUE(t.isWrapLink(0, 1, Dir::Neg));
}

TEST(Torus, LocalPortLayout) {
  const TorusTopology t(8, 3);
  EXPECT_EQ(t.networkPorts(), 6);
  EXPECT_EQ(t.localPort(), 6);
  EXPECT_EQ(t.totalPorts(), 7);
}

}  // namespace
}  // namespace swft
