// Regression tests for the injection-side message selection (paper §4,
// starvation prevention): an absorbed message that finds every injection VC
// busy must stay at the *front of the messaging-layer queue* with its
// readyCycle intact — the seed engine pushed it into the source queue, where
// it lost its absorbed-over-new priority against later absorptions.
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {

struct NetworkTestAccess {
  static NodeState& node(Network& net, NodeId id) { return net.nodes_[id]; }
  static RouterArena& arena(Network& net) { return net.arena_; }
  static void runInjection(Network& net, NodeId id) { net.stepInjection(id); }
  static void setCycle(Network& net, std::uint64_t c) { net.cycle_ = c; }
};

namespace {

SimConfig quietConfig() {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.vcs = 2;
  cfg.messageLength = 4;
  cfg.injectionRate = 0.0;  // no background traffic: full manual control
  cfg.warmupMessages = 0;
  return cfg;
}

TEST(InjectionRequeue, BusyVcsLeaveAbsorbedMessageQueuedWithReadyCycle) {
  Network net(quietConfig());
  const int injPort = net.topology().localPort();
  RouterArena& arena = NetworkTestAccess::arena(net);
  NodeState& node = NetworkTestAccess::node(net, 0);

  // An "absorbed" message waiting in the messaging-layer queue (readyCycle 5)
  // and a competing new message in the source queue.
  const MsgId absorbed = net.injectTestMessage(0, 5, 4, RoutingMode::Deterministic);
  node.sourceQueue.clear();
  node.swQueue.push_back(PendingReinjection{absorbed, 5});
  const MsgId fresh = net.injectTestMessage(0, 6, 4, RoutingMode::Deterministic);

  // Both injection VCs hold flits of other messages: no VC is allocatable.
  const MsgId fillerA = net.injectTestMessage(1, 2, 1, RoutingMode::Deterministic);
  const MsgId fillerB = net.injectTestMessage(2, 3, 1, RoutingMode::Deterministic);
  arena.push(0, arena.unitIndex(0, injPort, 0), Flit{fillerA, FlitKind::Header}, 0);
  arena.push(0, arena.unitIndex(0, injPort, 1), Flit{fillerB, FlitKind::Header}, 0);

  NetworkTestAccess::setCycle(net, 10);  // the absorbed message is ready
  NetworkTestAccess::runInjection(net, 0);

  EXPECT_EQ(node.streaming, kInvalidMsg) << "nothing must start streaming";
  ASSERT_EQ(node.swQueue.size(), 1u)
      << "the absorbed message must stay in the messaging-layer queue";
  EXPECT_EQ(node.swQueue.front().msg, absorbed);
  EXPECT_EQ(node.swQueue.front().readyCycle, 5u) << "readyCycle must survive";
  ASSERT_EQ(node.sourceQueue.size(), 1u);
  EXPECT_EQ(node.sourceQueue.front(), fresh)
      << "the source queue must not receive the absorbed message";

  // Free one VC: the absorbed message must win over the queued new one.
  arena.pop(0, arena.unitIndex(0, injPort, 0));
  NetworkTestAccess::runInjection(net, 0);
  EXPECT_EQ(node.streaming, absorbed);
  EXPECT_TRUE(node.swQueue.empty());
  ASSERT_EQ(node.sourceQueue.size(), 1u);
  EXPECT_EQ(node.sourceQueue.front(), fresh);
}

TEST(InjectionRequeue, NotReadyAbsorbedMessageDoesNotBlockNewOnes) {
  Network net(quietConfig());
  NodeState& node = NetworkTestAccess::node(net, 0);

  const MsgId absorbed = net.injectTestMessage(0, 5, 4, RoutingMode::Deterministic);
  node.sourceQueue.clear();
  node.swQueue.push_back(PendingReinjection{absorbed, 100});  // far future
  const MsgId fresh = net.injectTestMessage(0, 6, 4, RoutingMode::Deterministic);

  NetworkTestAccess::setCycle(net, 10);
  NetworkTestAccess::runInjection(net, 0);
  EXPECT_EQ(node.streaming, fresh) << "a not-yet-ready reinjection must not stall";
  ASSERT_EQ(node.swQueue.size(), 1u);
  EXPECT_EQ(node.swQueue.front().readyCycle, 100u);
}

// The seed chose the injection VC with `static_cast<int>(rng + i) % V`, which
// is negative for half of all draws — silently probing (and claiming) units
// of *network* ports as injection channels. The rotation draw is now a single
// unsigned draw; the streamed VC must always be a real injection VC.
TEST(InjectionRequeue, StreamVcAlwaysWithinInjectionRange) {
  SimConfig cfg;
  cfg.radix = 4;
  cfg.dims = 2;
  cfg.vcs = 3;
  cfg.messageLength = 6;
  cfg.injectionRate = 0.03;
  cfg.warmupMessages = 0;
  cfg.measuredMessages = ~std::uint32_t{0};
  Network net(cfg);
  for (int c = 0; c < 400; ++c) {
    net.step(1);
    for (NodeId id = 0; id < net.topology().nodeCount(); ++id) {
      const int vc = net.node(id).streamVc;
      ASSERT_TRUE(vc == -1 || (vc >= 0 && vc < cfg.vcs))
          << "node " << id << " streams into VC " << vc << " at cycle " << c;
    }
  }
  EXPECT_EQ(net.validateInvariants(), "");
}

}  // namespace
}  // namespace swft
