#include "src/routing/ecube.hpp"

#include <gtest/gtest.h>

#include "tests/naming.hpp"

namespace swft {
namespace {

Message msgTo(const TorusTopology& topo, NodeId dest) {
  (void)topo;
  Message m;
  m.finalDest = dest;
  m.curTarget = dest;
  return m;
}

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

TEST(Ecube, ReachesTargetInDimensionOrder) {
  const TorusTopology topo(8, 3);
  const EcubeRouting ecube(topo);
  const Message m = msgTo(topo, at(topo, {5, 2, 7}));
  const auto path = ecube.tracePath(m, at(topo, {1, 1, 1}));

  // Dimensions must be visited in monotonically increasing order.
  int lastDim = -1;
  for (const Hop& h : path) {
    EXPECT_GE(static_cast<int>(h.dim), lastDim);
    lastDim = h.dim;
  }
  // Path length equals the minimal (Lee) distance.
  EXPECT_EQ(path.size(),
            static_cast<std::size_t>(topo.distance(at(topo, {1, 1, 1}), m.curTarget)));
}

TEST(Ecube, NextHopNulloptAtTarget) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  const Message m = msgTo(topo, 42);
  EXPECT_FALSE(ecube.nextHop(m, 42).has_value());
}

TEST(Ecube, TakesMinimalRingDirection) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  // 1 -> 7 in dim 0: minimal is -2 (wrap through 0), not +6.
  const Message m = msgTo(topo, at(topo, {7, 0}));
  const auto hop = ecube.nextHop(m, at(topo, {1, 0}));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->dim, 0);
  EXPECT_EQ(hop->dir, Dir::Neg);
}

TEST(Ecube, DirectionOverrideForcesNonMinimalRing) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  Message m = msgTo(topo, at(topo, {3, 0}));
  m.dirOverride[0] = -1;  // force the long way round
  const auto path = ecube.tracePath(m, at(topo, {1, 0}));
  // 1 -> 3 backwards: 1,0,7,...,4,3 = 6 hops, all negative in dim 0.
  EXPECT_EQ(path.size(), 6u);
  for (const Hop& h : path) {
    EXPECT_EQ(h.dim, 0);
    EXPECT_EQ(h.dir, Dir::Neg);
  }
}

TEST(Ecube, OverrideOnlyAffectsItsDimension) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  Message m = msgTo(topo, at(topo, {2, 2}));
  m.dirOverride[0] = +1;
  const auto path = ecube.tracePath(m, at(topo, {1, 1}));
  ASSERT_EQ(path.size(), 2u);  // +1 in dim 0 (minimal anyway), +1 in dim 1
  EXPECT_EQ(path[0].dim, 0);
  EXPECT_EQ(path[0].dir, Dir::Pos);
  EXPECT_EQ(path[1].dim, 1);
  EXPECT_EQ(path[1].dir, Dir::Pos);
}

TEST(Ecube, RouteDeliversAtTarget) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Deterministic, 4);
  const Message m = msgTo(topo, 10);
  const RouteDecision d = ecube.route(m, 10, faults, part);
  EXPECT_EQ(d.kind, RouteDecision::Kind::Deliver);
}

TEST(Ecube, RouteForwardsSingleCandidateWithClassMask) {
  const TorusTopology topo(8, 2);
  const EcubeRouting ecube(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Deterministic, 4);
  Message m = msgTo(topo, at(topo, {3, 0}));
  const RouteDecision d = ecube.route(m, at(topo, {1, 0}), faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward);
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].outPort, portOf(0, Dir::Pos));
  EXPECT_EQ(d.candidates[0].vcs, part.escapeMask(0));

  // After crossing the wrap, the class-1 mask must be used.
  m.setWrapped(0);
  const RouteDecision d1 = ecube.route(m, at(topo, {1, 0}), faults, part);
  EXPECT_EQ(d1.candidates[0].vcs, part.escapeMask(1));
}

TEST(Ecube, RouteAbsorbsWhenRequiredLinkFaulty) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const EcubeRouting ecube(topo);
  const VcPartition part(RoutingMode::Deterministic, 4);
  const NodeId cur = at(topo, {1, 0});
  const Message m = msgTo(topo, at(topo, {3, 0}));
  faults.failNode(at(topo, {2, 0}));  // the required +x neighbour
  const RouteDecision d = ecube.route(m, cur, faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Absorb);
  EXPECT_EQ(d.blockedDim, 0);
  EXPECT_EQ(d.blockedDirStep, +1);
}

TEST(Ecube, TracePathTerminatesUnderPathologicalOverride) {
  // Override in a dimension that is already matched is ignored; override in
  // an unmatched dimension still terminates (ring distance <= k-1).
  const TorusTopology topo(5, 2);
  const EcubeRouting ecube(topo);
  Message m = msgTo(topo, at(topo, {0, 3}));
  m.dirOverride[1] = +1;
  const auto path = ecube.tracePath(m, at(topo, {0, 4}));
  EXPECT_EQ(path.size(), 4u);  // 4 -> 0 -> 1 -> 2 -> 3 forced positive
}

class EcubeAllPairs : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EcubeAllPairs, EveryPairRoutesMinimally) {
  const auto [k, n] = GetParam();
  const TorusTopology topo(k, n);
  const EcubeRouting ecube(topo);
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      const Message m = msgTo(topo, d);
      const auto path = ecube.tracePath(m, s);
      ASSERT_EQ(path.size(), static_cast<std::size_t>(topo.distance(s, d)))
          << "src=" << s << " dst=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, EcubeAllPairs,
                         ::testing::Values(std::pair{4, 2}, std::pair{5, 2}, std::pair{8, 2},
                                           std::pair{4, 3}, std::pair{3, 4}),
                         [](const auto& info) {
                           return knName(info.param.first, info.param.second);
                         });

}  // namespace
}  // namespace swft
