#include "src/sim/router_arena.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

// 4 nodes of a 2-D torus router: 5 input ports (4 network + injection), V=4.
RouterArena smallArena(int depth = 2) { return RouterArena(4, 5, 4, 4, depth); }

TEST(RouterArena, LayoutAndIndexing) {
  RouterArena a = smallArena();
  EXPECT_EQ(a.vcs(), 4);
  EXPECT_EQ(a.depth(), 2);
  EXPECT_EQ(a.unitsPerRouter(), 20);
  EXPECT_EQ(a.base(0), 0);
  EXPECT_EQ(a.base(3), 60);
  EXPECT_EQ(a.unitIndex(0, 0, 0), 0);
  EXPECT_EQ(a.unitIndex(1, 3, 2), 34);  // base 20 + port 3 * 4 + vc 2
}

TEST(RouterArena, FifoOrderAndArrivalStamps) {
  RouterArena a = smallArena(3);
  const int u = a.unitIndex(2, 1, 0);
  EXPECT_TRUE(a.empty(u));
  a.push(2, u, Flit{10, FlitKind::Header}, 100);
  a.push(2, u, Flit{10, FlitKind::Body}, 101);
  a.push(2, u, Flit{10, FlitKind::Tail}, 102);
  EXPECT_TRUE(a.full(u)) << "depth 3 reached";
  EXPECT_EQ(a.size(u), 3);
  EXPECT_EQ(a.frontArrival(u), 100u);
  EXPECT_EQ(a.flitAt(u, 2).kind, FlitKind::Tail);
  EXPECT_EQ(a.pop(2, u).kind, FlitKind::Header);
  EXPECT_EQ(a.frontArrival(u), 101u);
  // Ring wrap: the freed slot is reusable immediately.
  a.push(2, u, Flit{11, FlitKind::Header}, 103);
  EXPECT_TRUE(a.full(u));
  EXPECT_EQ(a.pop(2, u).kind, FlitKind::Body);
  EXPECT_EQ(a.pop(2, u).kind, FlitKind::Tail);
  EXPECT_EQ(a.pop(2, u).msg, 11u);
  EXPECT_TRUE(a.empty(u));
}

TEST(RouterArena, BuffersAreIndependent) {
  RouterArena a = smallArena(3);
  a.push(0, a.unitIndex(0, 0, 0), Flit{1, FlitKind::Header}, 0);
  a.push(0, a.unitIndex(0, 0, 1), Flit{2, FlitKind::Header}, 0);
  EXPECT_EQ(a.front(a.unitIndex(0, 0, 0)).msg, 1u);
  EXPECT_EQ(a.front(a.unitIndex(0, 0, 1)).msg, 2u);
  EXPECT_EQ(a.size(a.unitIndex(0, 1, 0)), 0);
  EXPECT_EQ(a.size(a.unitIndex(1, 0, 0)), 0) << "next router's units unaffected";
}

TEST(RouterArena, OccupancyWordsCountsAndActiveSet) {
  // 3-D router geometry, V=10: 70 units/router crosses occupancy word 0/1.
  RouterArena a(70, 7, 6, 10, 4);
  EXPECT_EQ(a.occWordsPerRouter(), 2);
  EXPECT_FALSE(a.anyOccupied(65));
  EXPECT_EQ(a.activeWords()[1], 0u);

  a.push(65, a.base(65) + 3, Flit{1, FlitKind::Header}, 0);
  a.push(65, a.base(65) + 69, Flit{2, FlitKind::Header}, 0);
  a.push(65, a.base(65) + 69, Flit{2, FlitKind::Body}, 1);
  EXPECT_TRUE(a.anyOccupied(65));
  EXPECT_EQ(a.occupiedUnits(65), 2);
  EXPECT_TRUE(a.occWords(65)[0] & (1ULL << 3));
  EXPECT_TRUE(a.occWords(65)[1] & (1ULL << 5));  // 69 = 64 + 5
  EXPECT_TRUE(a.activeWords()[1] & (1ULL << 1));  // node 65 = word 1, bit 1

  a.pop(65, a.base(65) + 3);
  EXPECT_FALSE(a.occWords(65)[0] & (1ULL << 3));
  EXPECT_EQ(a.occupiedUnits(65), 1);
  EXPECT_TRUE(a.anyOccupied(65)) << "unit 69 still holds two flits";
  a.pop(65, a.base(65) + 69);
  EXPECT_TRUE(a.anyOccupied(65)) << "pop of one flit of two keeps the bit";
  a.pop(65, a.base(65) + 69);
  EXPECT_FALSE(a.anyOccupied(65));
  EXPECT_EQ(a.activeWords()[1], 0u) << "active bit cleared with the last flit";
}

TEST(RouterArena, RouteAllocationLifecycle) {
  RouterArena a = smallArena();
  const int local = 2 * 4 + 3;  // port 2, vc 3
  const int g = a.unitIndex(1, 2, 3);
  const int du = a.unitIndex(2, 3, 1);  // downstream unit the route feeds
  EXPECT_FALSE(a.routed(g));
  a.allocateRoute(1, local, 3, 1, du);
  EXPECT_TRUE(a.routed(g));
  EXPECT_EQ(a.outPort(g), 3);
  EXPECT_EQ(a.outVc(g), 1);
  EXPECT_FALSE(a.routed(g + 1)) << "neighbouring unit unaffected";
  // The allocation registers the unit as a switch requester of port 3 only.
  EXPECT_TRUE(a.routedWords(1)[0] & (1ULL << local));
  EXPECT_TRUE(a.portMembers(1, 3)[0] & (1ULL << local));
  EXPECT_FALSE(a.portMembers(1, 2)[0] & (1ULL << local));
  EXPECT_FALSE(a.portMembers(2, 3)[0] & (1ULL << local)) << "other router";
  // The empty downstream has credit, so the unit qualifies on that axis.
  EXPECT_TRUE(a.downOkWords(1)[0] & (1ULL << local));
  a.releaseRoute(1, local);
  EXPECT_FALSE(a.routed(g));
  EXPECT_EQ(a.routedWords(1)[0], 0u);
  EXPECT_EQ(a.portMembers(1, 3)[0], 0u);
  EXPECT_EQ(a.downOkWords(1)[0], 0u);
  EXPECT_EQ(a.auditMasks(0), "");
}

TEST(RouterArena, CreditMaskTracksDepthCrossings) {
  RouterArena a = smallArena(2);  // depth 2
  const int du = a.unitIndex(2, 3, 1);
  EXPECT_TRUE(a.creditOkBit(du)) << "empty buffers are creditable";
  a.push(2, du, Flit{1, FlitKind::Header}, 0);
  EXPECT_TRUE(a.creditOkBit(du)) << "one slot of two still free";
  a.push(2, du, Flit{1, FlitKind::Body}, 0);
  EXPECT_FALSE(a.creditOkBit(du)) << "crossed into full";
  a.pop(2, du, 1);
  EXPECT_TRUE(a.creditOkBit(du)) << "crossed back out of full";
  // The credit sink row past the real units is permanently creditable.
  for (int vc = 0; vc < a.vcs(); ++vc) {
    EXPECT_TRUE(a.creditOkBit(a.creditSinkBase() + vc));
  }
}

TEST(RouterArena, DepthCrossingFlipsFeederDownOkBit) {
  RouterArena a = smallArena(1);  // depth 1: every push/pop crosses
  const int local = 0 * 4 + 2;    // upstream unit: port 0, vc 2
  const int du = a.unitIndex(3, 1, 0);
  a.allocateRoute(0, local, 1, 0, du);
  EXPECT_TRUE(a.downOkWords(0)[0] & (1ULL << local));
  a.push(3, du, Flit{7, FlitKind::Header}, 0);
  EXPECT_FALSE(a.downOkWords(0)[0] & (1ULL << local))
      << "downstream full: flip reaches the feeder's row";
  a.pop(3, du, 1);
  EXPECT_TRUE(a.downOkWords(0)[0] & (1ULL << local));
  a.releaseRoute(0, local);
  EXPECT_EQ(a.auditMasks(0), "");
}

TEST(RouterArena, FreshnessMaturesAtCycleBoundary) {
  RouterArena a = smallArena();
  const int u = a.unitIndex(1, 2, 0);
  const int local = u - a.base(1);
  // A front pushed at cycle 5 is not fresh during cycle 5...
  a.push(1, u, Flit{1, FlitKind::Header}, 5);
  EXPECT_FALSE(a.freshWords(1)[0] & (1ULL << local));
  EXPECT_EQ(a.auditMasks(5), "");
  // ...and matures at the boundary sweep.
  a.matureFreshness();
  EXPECT_TRUE(a.freshWords(1)[0] & (1ULL << local));
  EXPECT_EQ(a.auditMasks(6), "");
  // Mid-cycle pops leave the fresh row untouched — it is the cycle-start
  // snapshot, and nothing reads a router's row between its own pops and the
  // next sweep. The surviving front stays fresh (it arrived at 6 < 7), and
  // even the pop to empty leaves a stale set bit behind...
  a.push(1, u, Flit{1, FlitKind::Tail}, 6);
  a.pop(1, u, 7);
  EXPECT_TRUE(a.freshWords(1)[0] & (1ULL << local))
      << "survivor arrived at 6 < 7";
  a.pop(1, u, 7);
  EXPECT_TRUE(a.freshWords(1)[0] & (1ULL << local))
      << "pop must not touch the boundary snapshot";
  // ...which the sweep reconciles against the (now empty) occupancy word.
  a.matureFreshness();
  EXPECT_EQ(a.auditMasks(8), "");
  EXPECT_EQ(a.freshWords(1)[0], 0u) << "empty router has no fresh fronts";
}

TEST(RouterArena, OutputOwnershipLifecycle) {
  RouterArena a = smallArena();
  EXPECT_EQ(a.outOwner(1, 2, 1), -1);
  a.setOutOwner(1, 2, 1, 7);
  EXPECT_EQ(a.outOwner(1, 2, 1), 7);
  EXPECT_EQ(a.outOwner(1, 2, 0), -1) << "other VCs unaffected";
  EXPECT_EQ(a.outOwner(2, 2, 1), -1) << "other routers unaffected";
  a.setOutOwner(1, 2, 1, -1);
  EXPECT_EQ(a.outOwner(1, 2, 1), -1);
}

TEST(RouterArena, CursorsPerNodeAndPort) {
  RouterArena a = smallArena();
  EXPECT_EQ(a.cursor(0, 0), 0);
  a.setCursor(0, 0, 13);
  a.setCursor(0, 4, 7);
  a.setCursor(3, 0, 2);
  EXPECT_EQ(a.cursor(0, 0), 13);
  EXPECT_EQ(a.cursor(0, 4), 7);
  EXPECT_EQ(a.cursor(0, 1), 0);
  EXPECT_EQ(a.cursor(3, 0), 2);
}

TEST(RouterArena, RejectsBadGeometry) {
  EXPECT_THROW(RouterArena(4, 5, 4, 4, 0), std::invalid_argument);
  EXPECT_THROW(RouterArena(4, 5, 4, 4, FlitFifo::kMaxDepth + 1), std::invalid_argument);
  EXPECT_THROW(RouterArena(4, 5, 4, 0, 4), std::invalid_argument);
  EXPECT_THROW(RouterArena(4, 5, 4, 17, 4), std::invalid_argument);
  EXPECT_NO_THROW(RouterArena(4, 17, 16, 16, 4));  // 8-D router at V=16
}

TEST(RouterArena, NonPowerOfTwoDepthRoundsStrideUp) {
  RouterArena a(2, 5, 4, 4, 5);  // stride 8, capacity stays 5
  const int u = a.unitIndex(1, 0, 0);
  for (int i = 0; i < 5; ++i) a.push(1, u, Flit{1, FlitKind::Body}, 0);
  EXPECT_TRUE(a.full(u));
  EXPECT_EQ(a.size(u), 5);
  for (int i = 0; i < 5; ++i) a.pop(1, u);
  EXPECT_TRUE(a.empty(u));
}

}  // namespace
}  // namespace swft
