// Macroscopic behavioural properties the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

SimConfig base2D() {
  SimConfig cfg;
  cfg.radix = 8;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 16;
  cfg.injectionRate = 0.004;
  cfg.warmupMessages = 300;
  cfg.measuredMessages = 2500;
  cfg.maxCycles = 600'000;
  cfg.seed = 1234;
  return cfg;
}

TEST(EngineProperties, BitReproducibleForFixedSeed) {
  SimConfig cfg = base2D();
  cfg.faults.randomNodes = 3;
  const SimResult a = runSimulation(cfg);
  const SimResult b = runSimulation(cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.meanLatency, b.meanLatency);
  EXPECT_EQ(a.messagesQueued, b.messagesQueued);
  EXPECT_EQ(a.generatedTotal, b.generatedTotal);
}

TEST(EngineProperties, DifferentSeedsGiveDifferentButSaneRuns) {
  SimConfig cfg = base2D();
  cfg.faults.randomNodes = 3;
  SimConfig cfg2 = cfg;
  cfg2.seed = 999;
  const SimResult a = runSimulation(cfg);
  const SimResult b = runSimulation(cfg2);
  EXPECT_NE(a.meanLatency, b.meanLatency);
  EXPECT_NEAR(a.meanLatency, b.meanLatency, a.meanLatency * 0.5)
      << "same physics, different noise";
}

TEST(EngineProperties, LatencyMonotoneInOfferedLoad) {
  double last = 0;
  for (const double rate : {0.002, 0.006, 0.010}) {
    SimConfig cfg = base2D();
    cfg.injectionRate = rate;
    const SimResult r = runSimulation(cfg);
    ASSERT_TRUE(r.completed) << "rate " << rate;
    EXPECT_GT(r.meanLatency, last * 0.98) << "latency must not drop as load rises";
    last = r.meanLatency;
  }
}

TEST(EngineProperties, ThroughputTracksOfferedLoadBelowSaturation) {
  SimConfig cfg = base2D();
  cfg.injectionRate = 0.004;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.throughput, cfg.injectionRate, cfg.injectionRate * 0.2);
}

TEST(EngineProperties, FaultFreeRunsNeverAbsorb) {
  for (const RoutingMode mode : {RoutingMode::Deterministic, RoutingMode::Adaptive}) {
    SimConfig cfg = base2D();
    cfg.routing = mode;
    const SimResult r = runSimulation(cfg);
    EXPECT_EQ(r.messagesQueued, 0u);
    EXPECT_EQ(r.absorbedMessages, 0u);
  }
}

TEST(EngineProperties, FaultsRaiseLatencyAndQueueing) {
  SimConfig healthy = base2D();
  SimConfig faulty = base2D();
  faulty.faults.randomNodes = 5;
  const SimResult h = runSimulation(healthy);
  const SimResult f = runSimulation(faulty);
  ASSERT_TRUE(h.completed);
  ASSERT_TRUE(f.completed);
  EXPECT_GT(f.messagesQueued, 0u);
  EXPECT_GT(f.meanLatency, h.meanLatency * 0.95)
      << "faults must not make the network faster";
}

TEST(EngineProperties, MoreFaultsQueueMoreMessages) {
  std::uint64_t last = 0;
  for (const int nf : {1, 5, 10}) {
    SimConfig cfg = base2D();
    cfg.vcs = 6;
    cfg.faults.randomNodes = nf;
    const SimResult r = runSimulation(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.messagesQueued, last) << "nf=" << nf;
    last = r.messagesQueued;
  }
}

TEST(EngineProperties, LongerMessagesHaveHigherLatency) {
  SimConfig m32 = base2D();
  m32.messageLength = 32;
  SimConfig m64 = base2D();
  m64.messageLength = 64;
  m64.injectionRate = m32.injectionRate / 2;  // same flit load
  const SimResult a = runSimulation(m32);
  const SimResult b = runSimulation(m64);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.meanLatency, a.meanLatency + 16)
      << "latency is proportional to message length (paper §5.2)";
}

TEST(EngineProperties, AdaptiveQueuesFewerMessagesThanDeterministic) {
  // The core Fig. 7 observation.
  SimConfig det = base2D();
  det.vcs = 6;
  det.faults.randomNodes = 5;
  SimConfig adp = det;
  adp.routing = RoutingMode::Adaptive;
  const SimResult d = runSimulation(det);
  const SimResult a = runSimulation(adp);
  ASSERT_TRUE(d.completed);
  ASSERT_TRUE(a.completed);
  EXPECT_LT(a.messagesQueued, d.messagesQueued)
      << "adaptive routing avoids delivering messages to intermediate nodes";
}

TEST(EngineProperties, AdaptiveLatencyNoWorseUnderFaults) {
  SimConfig det = base2D();
  det.vcs = 6;
  det.faults.randomNodes = 5;
  det.injectionRate = 0.006;
  SimConfig adp = det;
  adp.routing = RoutingMode::Adaptive;
  const SimResult d = runSimulation(det);
  const SimResult a = runSimulation(adp);
  ASSERT_TRUE(d.completed);
  ASSERT_TRUE(a.completed);
  EXPECT_LT(a.meanLatency, d.meanLatency * 1.10)
      << "Fig. 5: adaptive latency is substantially lower than deterministic";
}

TEST(EngineProperties, MoreVirtualChannelsDoNotHurt) {
  SimConfig v2 = base2D();
  v2.vcs = 2;
  v2.injectionRate = 0.008;
  SimConfig v10 = v2;
  v10.vcs = 10;
  const SimResult a = runSimulation(v2);
  const SimResult b = runSimulation(v10);
  ASSERT_TRUE(b.completed);
  if (a.completed) {
    EXPECT_LT(b.meanLatency, a.meanLatency * 1.25)
        << "added VCs must not degrade latency materially";
  }
}

TEST(EngineProperties, SaturationFlagRaisedAtExtremeLoad) {
  SimConfig cfg = base2D();
  cfg.messageLength = 32;
  cfg.injectionRate = 0.05;  // far beyond 8-ary 2-cube capacity (~0.016)
  cfg.maxCycles = 120'000;
  const SimResult r = runSimulation(cfg);
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.throughput, 0.035) << "accepted rate must cap below offered";
  EXPECT_FALSE(r.deadlockSuspected) << "saturation is congestion, not deadlock";
}

TEST(EngineProperties, WarmupMessagesExcludedFromLatencyStats) {
  SimConfig cfg = base2D();
  cfg.warmupMessages = 1000;
  cfg.measuredMessages = 1000;
  Network net(cfg);
  const SimResult r = net.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.deliveredMeasured, cfg.measuredMessages);
  EXPECT_GE(r.deliveredTotal, r.deliveredMeasured + cfg.warmupMessages * 9 / 10)
      << "warm-up messages are delivered but not measured";
}

TEST(EngineProperties, PercentilesOrderedAndBracketMean) {
  SimConfig cfg = base2D();
  cfg.faults.randomNodes = 3;
  const SimResult r = runSimulation(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.latencyP50, 0.0);
  EXPECT_LE(r.latencyP50, r.latencyP95);
  EXPECT_LE(r.latencyP95, r.latencyP99);
  EXPECT_LE(r.latencyP99, r.maxLatency * 1.25);  // bucket resolution slack
  EXPECT_GT(r.latencyCi95, 0.0);
  EXPECT_LT(r.latencyCi95, r.meanLatency) << "mean is statistically resolved";
}

TEST(EngineProperties, ZeroLoadNetworkStaysQuiescent) {
  SimConfig cfg = base2D();
  cfg.injectionRate = 0.0;
  cfg.maxCycles = 5000;
  Network net(cfg);
  net.step(5000);
  EXPECT_EQ(net.generated(), 0u);
  EXPECT_EQ(net.delivered(), 0u);
  EXPECT_FALSE(net.deadlockSuspected()) << "empty network must not trip the watchdog";
}

}  // namespace
}  // namespace swft
