// Regression coverage for the deadlock watchdog: a saturated faulty torus —
// injection rate far past the saturation point, with both random node faults
// and a coalesced region in the way — must keep making flit-level progress.
// The watchdog (`SimConfig::deadlockWindow` cycles without any movement) must
// never fire: the software layer's absorb/reinject recovery is what keeps the
// escape channels live (paper §4; DESIGN.md §2).
#include <gtest/gtest.h>

#include "src/sim/network.hpp"

namespace swft {
namespace {

SimConfig saturatedFaulty(RoutingMode mode, std::uint64_t seed) {
  SimConfig cfg;
  cfg.radix = 6;
  cfg.dims = 2;
  cfg.vcs = 4;
  cfg.messageLength = 16;
  cfg.injectionRate = 0.08;  // far beyond saturation for a 6-ary 2-cube
  cfg.routing = mode;
  cfg.faults.randomNodes = 4;
  cfg.warmupMessages = 100;
  cfg.measuredMessages = 1500;
  cfg.maxCycles = 120'000;
  cfg.seed = seed;
  return cfg;
}

class Watchdog : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(Watchdog, SaturatedFaultyTorusNeverTripsTheWatchdog) {
  const SimResult r = runSimulation(saturatedFaulty(GetParam(), 41));
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_TRUE(r.saturated) << "this load is meant to saturate the network";
  EXPECT_GT(r.deliveredTotal, 0u);
}

TEST_P(Watchdog, SteppedRunStaysFalseAndConsistent) {
  SimConfig cfg = saturatedFaulty(GetParam(), 42);
  Network net(cfg);
  for (int chunk = 0; chunk < 8; ++chunk) {
    net.step(2'000);
    ASSERT_FALSE(net.deadlockSuspected())
        << "watchdog fired by cycle " << net.now();
    ASSERT_EQ(net.validateInvariants(), "");
  }
  EXPECT_GT(net.delivered(), 0u);
}

TEST(Watchdog, RegionPlusSaturationStillDrains) {
  SimConfig cfg = saturatedFaulty(RoutingMode::Adaptive, 43);
  cfg.faults.randomNodes = 0;
  RegionSpec region;
  region.shape = RegionShape::Rect;
  region.extent0 = 2;
  region.extent1 = 2;
  region.anchor.digit.resize(2, 2);
  cfg.faults.regions.push_back(region);

  const SimResult r = runSimulation(cfg);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_GT(r.messagesQueued, 0u) << "the region must absorb some traffic";
}

INSTANTIATE_TEST_SUITE_P(BothModes, Watchdog,
                         ::testing::Values(RoutingMode::Deterministic,
                                           RoutingMode::Adaptive));

}  // namespace
}  // namespace swft
