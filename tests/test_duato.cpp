#include "src/routing/duato.hpp"

#include <gtest/gtest.h>

namespace swft {
namespace {

NodeId at(const TorusTopology& topo, std::initializer_list<int> digits) {
  Coordinates c;
  c.digit.resize(digits.size());
  int i = 0;
  for (int d : digits) c[i++] = static_cast<std::int16_t>(d);
  return topo.idOf(c);
}

Message adaptiveMsgTo(NodeId dest) {
  Message m;
  m.finalDest = dest;
  m.curTarget = dest;
  m.mode = RoutingMode::Adaptive;
  return m;
}

TEST(Duato, ProfitableHopsAreExactlyUnmatchedDims) {
  const TorusTopology topo(8, 3);
  const DuatoRouting duato(topo);
  const Message m = adaptiveMsgTo(at(topo, {3, 1, 5}));
  const auto hops = duato.profitableHops(m, at(topo, {1, 1, 7}));
  ASSERT_EQ(hops.size(), 2u);  // dims 0 and 2 unmatched
  EXPECT_EQ(hops[0].dim, 0);
  EXPECT_EQ(hops[0].dir, Dir::Pos);   // 1 -> 3 minimal +
  EXPECT_EQ(hops[1].dim, 2);
  EXPECT_EQ(hops[1].dir, Dir::Neg);   // 7 -> 5 minimal -
}

TEST(Duato, DeliversAtTarget) {
  const TorusTopology topo(8, 2);
  const DuatoRouting duato(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Adaptive, 4);
  const Message m = adaptiveMsgTo(9);
  EXPECT_EQ(duato.route(m, 9, faults, part).kind, RouteDecision::Kind::Deliver);
}

TEST(Duato, OffersAdaptiveCandidatesPlusEscape) {
  const TorusTopology topo(8, 2);
  const DuatoRouting duato(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Adaptive, 4);
  const Message m = adaptiveMsgTo(at(topo, {3, 3}));
  const RouteDecision d = duato.route(m, at(topo, {1, 1}), faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward);
  // 2 adaptive candidates (dims 0 and 1) + 1 escape (lowest dim, class 0).
  ASSERT_EQ(d.candidates.size(), 3u);
  EXPECT_EQ(d.candidates[0].vcs, part.adaptiveMask());
  EXPECT_EQ(d.candidates[1].vcs, part.adaptiveMask());
  EXPECT_EQ(d.candidates[2].outPort, portOf(0, Dir::Pos)) << "escape follows e-cube";
  EXPECT_EQ(d.candidates[2].vcs, part.escapeMask(0));
}

TEST(Duato, EscapeClassFollowsWrapFlag) {
  const TorusTopology topo(8, 2);
  const DuatoRouting duato(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Adaptive, 6);
  Message m = adaptiveMsgTo(at(topo, {3, 0}));
  m.setWrapped(0);
  const RouteDecision d = duato.route(m, at(topo, {1, 0}), faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward);
  EXPECT_EQ(d.candidates.back().vcs, part.escapeMask(1));
}

TEST(Duato, RoutesAroundSingleFaultWithoutAbsorbing) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const DuatoRouting duato(topo);
  const VcPartition part(RoutingMode::Adaptive, 4);
  const NodeId cur = at(topo, {1, 1});
  const Message m = adaptiveMsgTo(at(topo, {3, 3}));
  faults.failNode(at(topo, {2, 1}));  // blocks the +x profitable hop
  const RouteDecision d = duato.route(m, cur, faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward) << "the +y hop is still profitable";
  for (const auto& cand : d.candidates) {
    EXPECT_EQ(cand.outPort, portOf(1, Dir::Pos));
  }
}

TEST(Duato, AbsorbsOnlyWhenAllProfitableHopsFaulty) {
  const TorusTopology topo(8, 2);
  FaultSet faults(topo);
  const DuatoRouting duato(topo);
  const VcPartition part(RoutingMode::Adaptive, 4);
  const NodeId cur = at(topo, {1, 1});
  const Message m = adaptiveMsgTo(at(topo, {3, 3}));
  faults.failNode(at(topo, {2, 1}));
  faults.failNode(at(topo, {1, 2}));
  const RouteDecision d = duato.route(m, cur, faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Absorb);
  EXPECT_EQ(d.blockedDim, 0) << "reports the e-cube hop as the blocked channel";
  EXPECT_EQ(d.blockedDirStep, +1);
}

TEST(Duato, LastProfitableDimOnlyEscapeRemains) {
  // One unmatched dim left: profitable hop == escape hop; candidates carry
  // both the adaptive and escape masks for the same port.
  const TorusTopology topo(8, 2);
  const DuatoRouting duato(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Adaptive, 6);
  const Message m = adaptiveMsgTo(at(topo, {1, 5}));
  const RouteDecision d = duato.route(m, at(topo, {1, 3}), faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward);
  ASSERT_EQ(d.candidates.size(), 2u);
  EXPECT_EQ(d.candidates[0].outPort, d.candidates[1].outPort);
  EXPECT_EQ(d.candidates[0].vcs | d.candidates[1].vcs,
            static_cast<VcMask>(part.adaptiveMask() | part.escapeMask(0)));
}

TEST(Duato, MinimalVcCountStillOffersEscape) {
  // V=2: no adaptive VCs; DP degenerates to pure e-cube escape.
  const TorusTopology topo(8, 2);
  const DuatoRouting duato(topo);
  const FaultSet faults(topo);
  const VcPartition part(RoutingMode::Adaptive, 2);
  const Message m = adaptiveMsgTo(at(topo, {3, 3}));
  const RouteDecision d = duato.route(m, at(topo, {1, 1}), faults, part);
  ASSERT_EQ(d.kind, RouteDecision::Kind::Forward);
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].vcs, part.escapeMask(0));
}

}  // namespace
}  // namespace swft
