// swft_sim — command-line front-end for single simulation runs.
//
//   swft_sim k=8 n=3 vcs=10 msg_length=32 rate=0.007 routing=adaptive nf=12
//   swft_sim k=8 n=2 vcs=10 region=U:4x3@2,2 routing=det rate=0.004
//
// Prints a human-readable report; `--csv` emits a one-row CSV instead
// (machine-readable, for scripted sweeps).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/table.hpp"
#include "src/sim/config_parse.hpp"
#include "src/sim/network.hpp"

namespace {

void printUsage() {
  std::puts(
      "usage: swft_sim [--csv] key=value...\n"
      "keys: k n vcs escape_vcs buffer_depth msg_length rate routing traffic\n"
      "      hotspot_fraction delta td nf region warmup measured max_cycles\n"
      "      seed livelock_threshold engine sim_threads phase_timers\n"
      "examples:\n"
      "  swft_sim k=8 n=3 vcs=10 rate=0.007 routing=adaptive nf=12\n"
      "  swft_sim k=8 n=2 region=U:4x3@2,2 routing=det rate=0.004\n"
      "  swft_sim k=8 n=2 traffic=tornado rate=0.005");
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::vector<std::string> assignments;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      printUsage();
      return 0;
    } else {
      assignments.emplace_back(argv[i]);
    }
  }

  swft::SimConfig cfg;
  try {
    cfg = swft::parseConfig(assignments);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    printUsage();
    return 2;
  }

  try {
    // runSimulation (not a bare Network::run) so phase_timers=1 reports its
    // per-slot breakdown on stderr.
    const swft::SimResult r = swft::runSimulation(cfg);

    if (csv) {
      swft::SweepRow row;
      row.point.label = "cli";
      row.point.cfg = cfg;
      row.result = r;
      std::fputs(swft::toCsv({row}).str().c_str(), stdout);
    } else {
      std::printf("config: %s\n", swft::describeConfig(cfg).c_str());
      std::printf("cycles            %llu\n", static_cast<unsigned long long>(r.cycles));
      std::printf("generated         %llu\n",
                  static_cast<unsigned long long>(r.generatedTotal));
      std::printf("delivered         %llu (measured %llu)\n",
                  static_cast<unsigned long long>(r.deliveredTotal),
                  static_cast<unsigned long long>(r.deliveredMeasured));
      std::printf("mean latency      %.2f cycles (stddev %.2f, max %.0f)\n",
                  r.meanLatency, r.latencyStddev, r.maxLatency);
      std::printf("latency quantiles p50=%.0f p95=%.0f p99=%.0f (95%% CI +/- %.2f)\n",
                  r.latencyP50, r.latencyP95, r.latencyP99, r.latencyCi95);
      std::printf("mean hops         %.3f\n", r.meanHops);
      std::printf("throughput        %.6f msgs/node/cycle (offered %.6f)\n",
                  r.throughput, r.offeredLoad);
      std::printf("messages queued   %llu (distinct absorbed %llu)\n",
                  static_cast<unsigned long long>(r.messagesQueued),
                  static_cast<unsigned long long>(r.absorbedMessages));
      std::printf("recovery mix      %llu reversals, %llu detours, %llu escalations\n",
                  static_cast<unsigned long long>(r.reversals),
                  static_cast<unsigned long long>(r.detours),
                  static_cast<unsigned long long>(r.escalations));
      std::printf("flags             completed=%d saturated=%d deadlock=%d\n",
                  r.completed, r.saturated, r.deadlockSuspected);
    }
    return r.deadlockSuspected ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
